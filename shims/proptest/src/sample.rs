//! Sampling helpers (`Index`).

use crate::strategy::Arbitrary;
use crate::test_runner::TestRng;

/// A size-independent index: generated once, projected onto any
/// collection length via [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects this index onto a collection of `size` elements.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on empty collection");
        (self.0 % size as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_in_bounds() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let i = Index::arbitrary(&mut rng);
            for size in [1usize, 2, 7, 1000] {
                assert!(i.index(size) < size);
            }
        }
    }
}
