//! String generation from a regex subset.
//!
//! Supported syntax (everything the workspace's property tests use):
//! top-level alternation (`a|b`), character classes with ranges
//! (`[a-zA-Z0-9 äöüß]`, `[ -~]`, trailing-`-` literal), backslash escapes
//! (`\.`), literal characters, and `{m,n}` / `{m}` repetition after any
//! atom. Unsupported constructs panic, loudly naming the pattern.

use crate::test_runner::TestRng;

enum Atom {
    /// A set of candidate characters.
    Class(Vec<char>),
    /// A single literal character.
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let branches: Vec<&str> = split_alternation(pattern);
    let branch = branches[rng.below(branches.len() as u64) as usize];
    let pieces = parse_sequence(branch, pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.max - piece.min) as u64;
        let n = piece.min + rng.below(span + 1) as u32;
        for _ in 0..n {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

/// Splits on top-level `|` (alternation never nests here: the subset has
/// no groups).
fn split_alternation(pattern: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut escaped = false;
    for (i, c) in pattern.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            '|' if depth == 0 => {
                parts.push(&pattern[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&pattern[start..]);
    parts
}

fn parse_sequence(branch: &str, full: &str) -> Vec<Piece> {
    let mut chars = branch.chars().peekable();
    let mut pieces: Vec<Piece> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut members = Vec::new();
                loop {
                    let m = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {full:?}"));
                    if m == ']' {
                        break;
                    }
                    // `x-y` is a range when y is not the closing bracket.
                    if chars.peek() == Some(&'-') {
                        let mut look = chars.clone();
                        look.next();
                        match look.peek() {
                            Some(&hi) if hi != ']' => {
                                chars.next();
                                chars.next();
                                for v in (m as u32)..=(hi as u32) {
                                    if let Some(ch) = char::from_u32(v) {
                                        members.push(ch);
                                    }
                                }
                                continue;
                            }
                            _ => {}
                        }
                    }
                    members.push(m);
                }
                assert!(!members.is_empty(), "empty class in pattern {full:?}");
                Atom::Class(members)
            }
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {full:?}"));
                Atom::Literal(e)
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '.' | '^' | '$' => {
                panic!("unsupported regex construct {c:?} in pattern {full:?}")
            }
            lit => Atom::Literal(lit),
        };
        // Optional {m,n} / {m} repetition.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                let d = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated repetition in pattern {full:?}"));
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().unwrap_or_else(|_| bad_rep(&spec, full)),
                    hi.parse().unwrap_or_else(|_| bad_rep(&spec, full)),
                ),
                None => {
                    let n = spec.parse().unwrap_or_else(|_| bad_rep(&spec, full));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern {full:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn bad_rep(spec: &str, full: &str) -> u32 {
    panic!("bad repetition {spec:?} in pattern {full:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    fn check(pattern: &str, f: impl Fn(&str) -> bool) {
        let mut r = rng();
        for _ in 0..200 {
            let s = gen_from_pattern(pattern, &mut r);
            assert!(f(&s), "pattern {pattern:?} produced {s:?}");
        }
    }

    #[test]
    fn classes_and_repetition() {
        check("[a-z]{1,8}", |s| {
            (1..=8).contains(&s.chars().count()) && s.chars().all(|c| c.is_ascii_lowercase())
        });
        check("[ -~]{0,40}", |s| {
            s.chars().count() <= 40 && s.chars().all(|c| (' '..='~').contains(&c))
        });
        check("[a-zA-Z0-9 äöüß]{0,20}", |s| {
            s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || "äöüß".contains(c))
        });
    }

    #[test]
    fn escapes_and_literals() {
        check("[a-z]{1,8}\\.f90", |s| s.ends_with(".f90") && s.len() >= 5);
        check("[A-Za-z0-9 ._-]{0,18}", |s| {
            s.chars()
                .all(|c| c.is_ascii_alphanumeric() || " ._-".contains(c))
        });
    }

    #[test]
    fn alternation_picks_both() {
        let mut r = rng();
        let mut short = false;
        let mut long = false;
        for _ in 0..200 {
            let s = gen_from_pattern(
                "[A-Za-z0-9][A-Za-z0-9 ._-]{0,18}[A-Za-z0-9]|[A-Za-z0-9]",
                &mut r,
            );
            assert!(!s.is_empty());
            if s.len() == 1 {
                short = true;
            } else {
                long = true;
            }
        }
        assert!(short && long);
    }
}
