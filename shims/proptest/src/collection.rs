//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive maximum.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of values from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let n = self.size.min + rng.below(span + 1) as usize;
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// A strategy producing `HashSet`s of values from `element`.
#[derive(Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    type Value = std::collections::HashSet<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let n = self.size.min + rng.below(span + 1) as usize;
        let mut set = std::collections::HashSet::with_capacity(n);
        // Collisions regenerate; bail out if the element domain is too
        // small to ever reach the requested cardinality.
        for _ in 0..10_000 {
            if set.len() == n {
                break;
            }
            set.insert(self.element.gen_value(rng));
        }
        assert_eq!(set.len(), n, "hash_set strategy could not fill {n} slots");
        set
    }
}

/// Generates hash sets whose cardinality falls in `size`.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_in_range() {
        let mut rng = TestRng::from_seed(1);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
        let exact = vec(any::<u8>(), 3usize);
        assert_eq!(exact.gen_value(&mut rng).len(), 3);
    }
}
