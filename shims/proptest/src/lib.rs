//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_filter` and `prop_recursive`, `any::<T>()`, `Just`, ranges and
//! tuples as strategies, a regex-subset string strategy, and the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Values are generated from a deterministic SplitMix64 stream seeded by
//! the test's module path and name, so failures reproduce exactly across
//! runs. Shrinking is not implemented: a failing case panics with the
//! generated inputs available via the assertion message.

pub mod array;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The subset of proptest's prelude the workspace relies on.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::sample::Index;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};

/// Runs each `#[test]` body against `ProptestConfig::cases` generated
/// inputs drawn from the named strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..cfg.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Picks uniformly between the listed strategies (all must share a value
/// type). Branches are boxed, so heterogeneous strategy types are fine.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
