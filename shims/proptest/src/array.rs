//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `[T; N]` from one element strategy.
#[derive(Clone)]
pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.0.gen_value(rng))
    }
}

/// 32 values drawn from `element`.
pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
    UniformArray(element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn thirty_two_values() {
        let mut rng = TestRng::from_seed(3);
        let arr: [u8; 32] = uniform32(any::<u8>()).gen_value(&mut rng);
        assert_eq!(arr.len(), 32);
    }
}
