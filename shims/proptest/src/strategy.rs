//! The [`Strategy`] trait and its combinators.

use crate::string::gen_from_pattern;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking and no intermediate value
/// tree: a strategy simply draws a value from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerating).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Derives a second strategy from each generated value and draws from
    /// it — the dependent-generation combinator.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permutes each generated `Vec` (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// substructure and returns a strategy for one more level. `depth`
    /// bounds nesting; the size hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let base = self.boxed();
        Recursive {
            base,
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.gen_value(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn gen_value(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.gen_value(rng);
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Arc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.gen_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of a set of same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen_value(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )+
    };
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies from a regex subset: alternation of sequences of
/// char classes / literals, each with an optional `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )+
    };
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0u8..30).gen_value(&mut r);
            assert!(v < 30);
            let w = (1u64..=5).gen_value(&mut r);
            assert!((1..=5).contains(&w));
            let (a, b) = ((0i64..10), (5usize..6)).gen_value(&mut r);
            assert!((0..10).contains(&a));
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn map_filter_union() {
        let mut r = rng();
        let s = (0u32..10)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        for _ in 0..100 {
            let v = s.gen_value(&mut r);
            assert!(v % 2 == 0 && v != 0 && v < 20);
        }
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(u.gen_value(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn flat_map_and_shuffle() {
        let mut r = rng();
        // Dependent generation: a length, then a vec of that length.
        let s = (1usize..6).prop_flat_map(|n| crate::collection::vec(0u8..10, n));
        for _ in 0..100 {
            let v = s.gen_value(&mut r);
            assert!((1..=5).contains(&v.len()));
        }
        // Shuffle permutes without losing elements.
        let sh = Just((0u8..32).collect::<Vec<u8>>()).prop_shuffle();
        let mut saw_permuted = false;
        for _ in 0..20 {
            let mut v = sh.gen_value(&mut r);
            if v != (0..32).collect::<Vec<u8>>() {
                saw_permuted = true;
            }
            v.sort_unstable();
            assert_eq!(v, (0..32).collect::<Vec<u8>>());
        }
        assert!(saw_permuted, "32 elements never permuted in 20 shuffles");
    }

    #[test]
    fn recursion_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 255, "leaf outside its strategy range");
                    0
                }
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&strat.gen_value(&mut r)) <= 3 + 1);
        }
    }
}
