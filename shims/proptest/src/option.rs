//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Option<T>` (3 in 4 draws are `Some`).
#[derive(Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.gen_value(rng))
        }
    }
}

/// Wraps `element`'s values in `Option`, sometimes generating `None`.
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy(element)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_both_variants() {
        let mut rng = TestRng::from_seed(9);
        let s = of(0u8..10);
        let vals: Vec<_> = (0..100).map(|_| s.gen_value(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}
