//! Deterministic RNG and per-test configuration.

/// Per-test configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A SplitMix64 stream: tiny, fast, and uniform enough for test-input
/// generation. Seeded from the test name so every run is reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an arbitrary label (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// An RNG from a numeric seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling to avoid modulo bias on wide bounds.
        let zone = u64::MAX - (u64::MAX % bound.max(1));
        loop {
            let v = self.next_u64();
            if v < zone || bound.is_power_of_two() {
                return v % bound;
            }
        }
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = (0..4).map(|_| TestRng::from_name("x").next_u64()).collect();
        assert!(a.iter().all(|v| *v == a[0]));
        let mut r1 = TestRng::from_name("t");
        let mut r2 = TestRng::from_name("t");
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::from_seed(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2 + 3] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
