//! Offline stand-in for the `parking_lot` crate, covering the subset this
//! workspace uses (`Mutex`, `RwLock`). Backed by `std::sync`; poisoning is
//! transparently ignored, matching parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquires never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
