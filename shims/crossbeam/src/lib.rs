//! Offline stand-in for the `crossbeam` crate, covering the `channel`
//! subset this workspace uses. Backed by `std::sync::mpsc`.

/// Multi-producer channels with timeout-aware receivers.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        tx.send(42u64).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }
}
