//! Offline stand-in for the `crossbeam` crate, covering the `channel`
//! and `deque` subsets this workspace uses. Backed by `std::sync::mpsc`
//! and `Mutex<VecDeque>` — API-compatible with the real crate for the
//! operations exercised here, without any external dependency.

/// Multi-producer channels with timeout-aware receivers.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Work-stealing deques, mirroring `crossbeam-deque`'s `Worker` /
/// `Stealer` / `Injector` API. The shim trades the real crate's lock-free
/// Chase–Lev algorithm for a mutexed ring buffer: identical semantics
/// (single owner pushes/pops, any number of stealers take from the other
/// end, a shared injector feeds idle workers), same types, no atomics
/// black magic — good enough for the worker counts the simulator runs.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the attempt found the queue empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    enum Flavor {
        Fifo,
        Lifo,
    }

    /// The owner's end of a work-stealing deque.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// A FIFO worker: `pop` takes from the front, the same end
        /// stealers take from.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// A LIFO worker: `pop` takes the most recently pushed task;
        /// stealers still take the oldest.
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Adds a task to the owner's end.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Takes the owner's next task.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.inner.lock().unwrap();
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        /// Whether the deque currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// A handle other threads use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A thief's handle onto some worker's deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the victim's deque.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the victim's deque is empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }

    /// A shared FIFO injector feeding a pool of workers.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector queue.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Adds a task to the back of the queue.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Steals the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_pop_order_matches_push() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn lifo_pops_newest_stealer_takes_oldest() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_feeds_in_order() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal().success(), Some("a"));
        assert_eq!(inj.steal().success(), Some("b"));
        assert!(inj.steal().is_empty());
        assert!(inj.is_empty());
    }

    #[test]
    fn cross_thread_stealing_loses_no_task() {
        // 4 threads drain 1000 injected tasks plus each other's local
        // deques; every task must be executed exactly once.
        const TASKS: usize = 1000;
        let inj = Injector::new();
        for i in 0..TASKS {
            inj.push(i);
        }
        let workers: Vec<Worker<usize>> = (0..4).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = workers.iter().map(|w| w.stealer()).collect();
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in &workers {
                let (inj, stealers, done) = (&inj, &stealers, &done);
                scope.spawn(move || loop {
                    let task = w
                        .pop()
                        .or_else(|| inj.steal().success())
                        .or_else(|| stealers.iter().find_map(|s| s.steal().success()));
                    match task {
                        Some(_) => {
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), TASKS);
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        tx.send(42u64).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }
}
