//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_custom`, `Throughput::Bytes`) with a simple wall-clock harness:
//! a short warm-up sizes the iteration batch, then `sample_size` samples
//! are timed and summarised as min / p50 / p99 / mean per iteration.
//! Each completed benchmark also records a [`BenchStats`] row retrievable
//! via [`take_recorded`], so bench binaries can copy the percentiles into
//! their machine-readable reports.

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the command line (first free argument).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--bench` is ignored; the first
    /// free argument becomes a name filter, as with real criterion).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown flags (e.g. --save-baseline) are accepted and
                    // ignored; skip a value argument if one follows.
                    let _ = args.next();
                }
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        if self.matches(name) {
            run_bench(name, sample_size, None, f);
        }
        self
    }

    /// Prints the closing line (report files are not produced).
    pub fn final_summary(&mut self) {
        println!("\nbenchmarks complete");
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the amount of work per iteration (enables rate reporting).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.matches(&full) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_bench(&full, n, self.throughput, f);
        }
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Anything usable as a benchmark id in `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declared per-iteration work volume.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Times the body of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` repetitions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// Per-iteration timing summary of one completed benchmark, in seconds.
///
/// Percentiles come from the sorted per-iteration sample set (nearest-rank
/// on `sample_size` samples), so with the default 10 samples `p99` is the
/// worst observed sample — still the honest tail estimate a shared machine
/// can give, and it tightens as `--sample-size` grows.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Full benchmark name (`group/id`).
    pub name: String,
    /// Fastest sample.
    pub min: f64,
    /// Median (50th percentile) sample.
    pub p50: f64,
    /// 99th-percentile sample.
    pub p99: f64,
    /// Mean across samples.
    pub mean: f64,
}

fn recorded() -> &'static Mutex<Vec<BenchStats>> {
    static RECORDED: OnceLock<Mutex<Vec<BenchStats>>> = OnceLock::new();
    RECORDED.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains the stats of every benchmark completed so far (in run order).
/// Bench binaries call this after a group finishes to emit percentiles
/// into their JSON reports.
pub fn take_recorded() -> Vec<BenchStats> {
    std::mem::take(&mut recorded().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    // Warm-up: find an iteration count giving samples of ~5 ms each.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        // Grow towards the 5 ms target, at most 8x per step.
        let grow = if b.elapsed.is_zero() {
            8
        } else {
            (Duration::from_millis(5).as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 8) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let p50 = percentile(&per_iter, 0.50);
    let p99 = percentile(&per_iter, 0.99);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let rate = tp.map(|t| match t {
        Throughput::Bytes(n) => format!("  {}/s", scale_bytes(n as f64 / p50)),
        Throughput::Elements(n) => format!("  {:.0} elem/s", n as f64 / p50),
    });
    println!(
        "{name:<50} time: [min {} p50 {} p99 {} mean {}]{}",
        scale_time(min),
        scale_time(p50),
        scale_time(p99),
        scale_time(mean),
        rate.unwrap_or_default()
    );
    recorded()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchStats {
            name: name.to_owned(),
            min,
            p50,
            p99,
            mean,
        });
}

fn scale_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn scale_bytes(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} GiB", bps / (1u64 << 30) as f64)
    } else if bps >= 1e6 {
        format!("{:.2} MiB", bps / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", bps / 1024.0)
    }
}

/// Groups benchmark functions for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emits a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(64));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            ran = true;
            b.iter(|| black_box(2 + 2))
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_custom_records_time() {
        let mut c = Criterion::default();
        c.bench_function("custom", |b| b.iter_custom(Duration::from_nanos));
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        // Small sample sets: p99 degrades to the worst sample.
        let small = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&small, 0.99), 3.0);
        assert_eq!(percentile(&small, 0.50), 2.0);
    }

    #[test]
    fn completed_benches_record_stats() {
        let mut c = Criterion::default();
        c.bench_function("stats/recorded", |b| {
            b.iter_custom(|n| Duration::from_nanos(n * 10))
        });
        let stats = take_recorded();
        let row = stats
            .iter()
            .find(|s| s.name == "stats/recorded")
            .expect("bench recorded");
        assert!(row.min > 0.0);
        assert!(row.min <= row.p50 && row.p50 <= row.p99);
        assert!(row.mean > 0.0);
    }
}
