//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_custom`, `Throughput::Bytes`) with a simple wall-clock harness:
//! a short warm-up sizes the iteration batch, then `sample_size` samples
//! are timed and summarised as min/median/mean per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the command line (first free argument).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (`--bench` is ignored; the first
    /// free argument becomes a name filter, as with real criterion).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown flags (e.g. --save-baseline) are accepted and
                    // ignored; skip a value argument if one follows.
                    let _ = args.next();
                }
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        if self.matches(name) {
            run_bench(name, sample_size, None, f);
        }
        self
    }

    /// Prints the closing line (report files are not produced).
    pub fn final_summary(&mut self) {
        println!("\nbenchmarks complete");
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the amount of work per iteration (enables rate reporting).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.matches(&full) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_bench(&full, n, self.throughput, f);
        }
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Anything usable as a benchmark id in `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declared per-iteration work volume.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Times the body of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` repetitions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    // Warm-up: find an iteration count giving samples of ~5 ms each.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        // Grow towards the 5 ms target, at most 8x per step.
        let grow = if b.elapsed.is_zero() {
            8
        } else {
            (Duration::from_millis(5).as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 8) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let rate = tp.map(|t| match t {
        Throughput::Bytes(n) => format!("  {}/s", scale_bytes(n as f64 / median)),
        Throughput::Elements(n) => format!("  {:.0} elem/s", n as f64 / median),
    });
    println!(
        "{name:<50} time: [{} {} {}]{}",
        scale_time(min),
        scale_time(median),
        scale_time(mean),
        rate.unwrap_or_default()
    );
}

fn scale_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn scale_bytes(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} GiB", bps / (1u64 << 30) as f64)
    } else if bps >= 1e6 {
        format!("{:.2} MiB", bps / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", bps / 1024.0)
    }
}

/// Groups benchmark functions for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emits a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(64));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            ran = true;
            b.iter(|| black_box(2 + 2))
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_custom_records_time() {
        let mut c = Criterion::default();
        c.bench_function("custom", |b| b.iter_custom(Duration::from_nanos));
    }
}
