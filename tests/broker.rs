//! Broker suite: the brokered submission path end-to-end, and the chaos
//! retarget soak of E16 — a campaign of federated jobs keeps completing
//! when its target site is quarantined mid-campaign or already dark at
//! submit, every sub-job reaches a terminal outcome on an admissible
//! site, and the WAL placement journal replays byte-identically for the
//! same seed.

use unicore::ajo::*;
use unicore::protocol::broker_offers_of;
use unicore::{Federation, FederationConfig};
use unicore_client::{render_offers, JobPreparationAgent, PlacementView};
use unicore_codec::DerCodec;
use unicore_resources::ResourceDirectory;
use unicore_sim::{SimTime, HOUR, MINUTE, SEC};
use unicore_simnet::FaultPlan;
use unicore_store::StoreEvent;

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=broker";

/// The soak seeds: the retarget properties must hold for all of them.
const SEEDS: [u64; 3] = [1, 7, 23];

fn attrs() -> UserAttributes {
    UserAttributes::new(DN, "users")
}

fn seeded(seed: u64) -> FederationConfig {
    FederationConfig {
        seed,
        ..FederationConfig::default()
    }
}

fn script_node(id: u64, name: &str, script: &str) -> (ActionId, GraphNode) {
    (
        ActionId(id),
        GraphNode::Task(AbstractTask {
            name: name.into(),
            resources: ResourceRequest::minimal().with_run_time(3_600),
            kind: TaskKind::Execute(ExecuteKind::Script {
                script: script.into(),
            }),
        }),
    )
}

/// §6 flow: ask the broker for a placement of an abstract request, build
/// the job for the offered site with the JPA, submit, and watch it run
/// where the broker said it would.
#[test]
fn brokered_submission_end_to_end() {
    let mut fed = Federation::german_deployment(seeded(11));
    fed.register_user(DN, "alice");

    let request = ResourceRequest::minimal()
        .with_processors(16)
        .with_run_time(3_600);
    let corr = fed.client_broker("FZJ", DN, request);
    fed.run_until(MINUTE);
    let resp = fed.take_client_response(corr).expect("broker answers");
    let offers = broker_offers_of(&resp).expect("a BrokerOffer response");
    assert!(!offers.is_empty(), "the grid has admissible sites");

    // Map the wire offers into the client's view, as the applet would.
    let views: Vec<PlacementView> = offers
        .iter()
        .map(|o| PlacementView {
            vsite: o.vsite.clone(),
            score: o.score,
            immediate: o.immediate,
            queue_length: o.queue_length,
            utilization_milli: o.utilization_milli,
            price_per_node_hour_milli: o.price_per_node_hour_milli,
        })
        .collect();
    let panel = render_offers(&views);
    assert!(panel.contains("#1"), "panel renders the ranking:\n{panel}");

    let jpa = JobPreparationAgent::new(attrs(), ResourceDirectory::new());
    let mut b = jpa.new_brokered_job("brokered", &views).unwrap();
    b.script_task(
        "run",
        "sleep 5\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let job = b.build().unwrap();
    let target = job.vsite.clone();
    assert_eq!(target, views[0].vsite);

    let (_, outcome, _) = fed
        .submit_and_wait(&target.usite.clone(), job, DN, 5 * SEC, HOUR)
        .expect("brokered job completes");
    assert!(outcome.status.is_success(), "{outcome:?}");
}

/// The campaign: three consecutive jobs submitted at FZJ, each fanning a
/// sub-AJO to RUS. Under the fault plans below RUS goes dark, so the
/// broker must retarget the remote parts.
fn campaign_jobs() -> Vec<AbstractJob> {
    (0..3)
        .map(|i| {
            let mut sub = AbstractJob::new(
                format!("remote{i}"),
                VsiteAddress::new("RUS", "VPP"),
                attrs(),
            );
            sub.nodes.push(script_node(1, "r", "sleep 5\n"));
            let mut job =
                AbstractJob::new(format!("job{i}"), VsiteAddress::new("FZJ", "T3E"), attrs());
            job.nodes.push((ActionId(1), GraphNode::SubJob(sub)));
            job.nodes.push(script_node(2, "local", "sleep 5\n"));
            job
        })
        .collect()
}

/// Runs the campaign under `plan`, asserting every job — and every
/// sub-job — reaches a successful terminal outcome. Returns the DER
/// encodings of FZJ's journaled placement decisions (oldest first) and
/// the finished federation.
fn run_campaign(seed: u64, plan: &FaultPlan) -> (Vec<Vec<u8>>, Federation) {
    let mut fed = Federation::german_deployment(seeded(seed));
    fed.enable_telemetry(seed);
    fed.register_user(DN, "alice");
    fed.attach_stores();
    fed.apply_fault_plan(plan);

    for (i, job) in campaign_jobs().into_iter().enumerate() {
        let (_, outcome, _) = fed
            .submit_and_wait("FZJ", job, DN, 5 * SEC, HOUR)
            .unwrap_or_else(|| panic!("seed {seed}: job {i} never terminated"));
        assert!(
            outcome.status.is_success(),
            "seed {seed}: job {i} failed: {outcome:?}"
        );
        // The remote part reached a terminal outcome on *some* site.
        assert!(
            matches!(
                outcome.child(ActionId(1)),
                Some(OutcomeNode::Job(j)) if j.status.is_success()
            ),
            "seed {seed}: job {i} sub-job not successful"
        );
        assert!(
            outcome.child(ActionId(2)).unwrap().status().is_success(),
            "seed {seed}: job {i} local task failed"
        );
    }

    let placements: Vec<Vec<u8>> = fed
        .server_mut("FZJ")
        .unwrap()
        .njs_mut()
        .store_mut()
        .expect("FZJ has a store")
        .replay()
        .expect("journal replays")
        .events
        .into_iter()
        .filter(|e| matches!(e, StoreEvent::PlacementDecided { .. }))
        .map(|e| e.to_der())
        .collect();
    (placements, fed)
}

/// One scenario across all soak seeds: run twice per seed and demand the
/// placement journals match byte for byte, retargets actually happened,
/// and no retarget landed back on the dead site.
fn soak(scenario: &str, plan_for: impl Fn(u64) -> FaultPlan) {
    for seed in SEEDS {
        let (a, fed_a) = run_campaign(seed, &plan_for(seed));
        let (b, _) = run_campaign(seed, &plan_for(seed));
        assert_eq!(
            a, b,
            "{scenario}: placement journals diverged across replays at seed {seed}"
        );
        assert!(!a.is_empty(), "{scenario}: no placements journaled");

        // Decode the journal back and check the retarget trail: at least
        // one attempt > 0, every retarget excludes RUS and lands off it.
        let decoded: Vec<StoreEvent> = a
            .iter()
            .map(|der| StoreEvent::from_der(der).expect("journal entry decodes"))
            .collect();
        let mut retargets = 0;
        for ev in &decoded {
            let StoreEvent::PlacementDecided {
                chosen,
                excluded,
                attempt,
                ..
            } = ev
            else {
                unreachable!("filtered to placements");
            };
            if *attempt > 0 {
                retargets += 1;
                assert!(
                    !chosen.starts_with("RUS/"),
                    "{scenario}: seed {seed} retargeted back to the dead site"
                );
                assert!(
                    excluded.iter().any(|u| u == "RUS"),
                    "{scenario}: seed {seed} retarget does not exclude RUS"
                );
            }
        }
        assert!(
            retargets >= 1,
            "{scenario}: seed {seed} journal shows no retarget"
        );
        assert!(
            fed_a
                .server("FZJ")
                .unwrap()
                .telemetry()
                .metrics_snapshot()
                .counter("broker.retargets")
                >= 1,
            "{scenario}: seed {seed} retarget counter never moved"
        );
    }
}

#[test]
fn soak_quarantine_mid_campaign_retargets_deterministically() {
    // RUS vanishes 30 s in — after the campaign has started, so later
    // sub-consigns burn the retry budget, open the circuit, and every
    // subsequent placement is answered from quarantine instantly.
    soak("quarantine-mid-campaign", |seed| {
        FaultPlan::new(seed ^ 0xB1).partition("RUS", 30 * SEC, SimTime::MAX)
    });
}

#[test]
fn soak_site_dark_at_submit_retargets_deterministically() {
    // RUS is dark before the first consign ever leaves.
    soak("dark-at-submit", |seed| {
        FaultPlan::new(seed ^ 0xB2).partition("RUS", 0, SimTime::MAX)
    });
}
