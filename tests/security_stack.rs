//! Cross-crate integration of the security stack: PKI → transport →
//! gateway, i.e. the complete §4/§5.2 path with real cryptography.

use std::sync::Arc;
use std::time::Duration;
use unicore_certs::{
    CertificateAuthority, DistinguishedName, Identity, KeyUsage, RequiredUsage, SignedSoftware,
    TrustStore, Validity,
};
use unicore_codec::DerCodec;
use unicore_crypto::CryptoRng;
use unicore_gateway::{AuthDecision, Gateway, UserEntry, Uudb};
use unicore_simnet::wire_pair;
use unicore_transport::{client_handshake, server_handshake, Endpoint, SessionCache};

struct Pki {
    ca: CertificateAuthority,
    trust: Arc<TrustStore>,
    rng: CryptoRng,
}

fn pki(seed: u64) -> Pki {
    let mut rng = CryptoRng::from_u64(seed);
    let ca = CertificateAuthority::new_root(
        DistinguishedName::new("DE", "DFN", "PCA", "Root"),
        Validity::starting_at(0, 1_000_000),
        512,
        &mut rng,
    );
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone()).unwrap();
    Pki {
        ca,
        trust: Arc::new(trust),
        rng,
    }
}

fn issue(p: &mut Pki, cn: &str, usage: KeyUsage) -> Identity {
    p.ca.issue_identity(
        DistinguishedName::new("DE", "FZJ", "ZAM", cn),
        usage,
        Validity::starting_at(0, 100_000),
        &mut p.rng,
    )
    .unwrap()
}

/// Full flow: a user authenticates over the real transport, and the DN the
/// *transport* certifies is the DN the *gateway* maps — no self-asserted
/// identity anywhere.
#[test]
fn transport_certified_dn_drives_gateway_mapping() {
    let mut p = pki(1);
    let user = issue(&mut p, "romberg", KeyUsage::user());
    let server = issue(&mut p, "gateway-host", KeyUsage::server());
    let user_dn_expected = user.cert.tbs.subject.to_string();

    let user_ep = Endpoint::new(user, p.trust.clone(), 10);
    let server_ep = Endpoint::new(server, p.trust.clone(), 10);
    let cc = SessionCache::new(4);
    let sc = SessionCache::new(4);
    let (cw, sw) = wire_pair();

    let (client, srv) = std::thread::scope(|s| {
        let h = s.spawn(|| {
            let mut rng = CryptoRng::from_u64(2).fork("s");
            server_handshake(sw, &server_ep, &sc, &mut rng)
        });
        let mut rng = CryptoRng::from_u64(2).fork("c");
        (
            client_handshake(cw, &user_ep, "FZJ", &cc, &mut rng),
            h.join().unwrap(),
        )
    });
    let mut client = client.unwrap();
    let mut srv = srv.unwrap();

    // The server-side authenticated DN comes from the validated peer cert.
    let authenticated_dn = srv.peer().tbs.subject.to_string();
    assert_eq!(authenticated_dn, user_dn_expected);

    // Gateway maps that DN.
    let mut uudb = Uudb::new();
    uudb.add(&authenticated_dn, UserEntry::new("romberg", "zam"));
    let mut gw = Gateway::new("FZJ", uudb);
    let decision = gw.authorize(srv.peer(), "T3E", Some("zam"), None, 10);
    let AuthDecision::Accepted(mapped) = decision else {
        panic!("{decision:?}")
    };
    assert_eq!(mapped.login, "romberg");

    // And application data flows over the encrypted channel.
    client.send(b"consign").unwrap();
    assert_eq!(srv.recv(Duration::from_secs(1)).unwrap(), b"consign");
}

/// The applet trust chain: software certs sign applets, user certs cannot,
/// and revoking the developer kills the applet's validity.
#[test]
fn applet_signing_lifecycle() {
    let mut p = pki(3);
    let dev = issue(&mut p, "developer", KeyUsage::software());
    let applet = SignedSoftware::sign(
        "JMC",
        "4.0",
        b"monitor code".to_vec(),
        dev.cert.clone(),
        &dev.keypair.private,
    )
    .unwrap();
    applet.verify(&p.trust, 100).unwrap();

    // Serialise/deserialise (the applet travels from server to browser).
    let wire = applet.to_der();
    let loaded = SignedSoftware::from_der(&wire).unwrap();
    loaded.verify(&p.trust, 100).unwrap();

    // Revoke the developer: the applet no longer validates.
    p.ca.revoke(dev.cert.tbs.serial);
    let crl = p.ca.publish_crl(200);
    let mut trust2 = TrustStore::new();
    trust2.add_anchor(p.ca.certificate().clone()).unwrap();
    trust2.install_crl(crl).unwrap();
    assert!(loaded.verify(&trust2, 250).is_err());
}

/// Intermediate CAs work through the whole stack: a site CA under the root
/// issues the user; the server (trusting only the root) accepts the
/// two-element chain over the live transport.
#[test]
fn intermediate_ca_chain_over_transport() {
    let mut p = pki(4);
    let mut site_ca =
        p.ca.issue_intermediate(
            DistinguishedName::new("DE", "FZJ", "ZAM", "FZJ Site CA"),
            Validity::starting_at(0, 500_000),
            512,
            &mut p.rng,
        )
        .unwrap();
    let user = site_ca
        .issue_identity(
            DistinguishedName::new("DE", "FZJ", "ZAM", "site-user"),
            KeyUsage::user(),
            Validity::starting_at(0, 100_000),
            &mut p.rng,
        )
        .unwrap();
    let server = issue(&mut p, "gw", KeyUsage::server());

    let mut user_ep = Endpoint::new(user, p.trust.clone(), 10);
    user_ep.intermediates = vec![site_ca.certificate().clone()];
    let server_ep = Endpoint::new(server, p.trust.clone(), 10);
    let cc = SessionCache::new(4);
    let sc = SessionCache::new(4);
    let (cw, sw) = wire_pair();
    let (client, srv) = std::thread::scope(|s| {
        let h = s.spawn(|| {
            let mut rng = CryptoRng::from_u64(5).fork("s");
            server_handshake(sw, &server_ep, &sc, &mut rng)
        });
        let mut rng = CryptoRng::from_u64(5).fork("c");
        (
            client_handshake(cw, &user_ep, "FZJ", &cc, &mut rng),
            h.join().unwrap(),
        )
    });
    client.unwrap();
    let srv = srv.unwrap();
    assert_eq!(srv.peer().tbs.subject.common_name, "site-user");
}

/// The trust store itself enforces chain order, usage and windows when
/// driven with certificates that crossed a DER round trip (as they do in
/// handshake messages).
#[test]
fn trust_decisions_survive_serialisation() {
    let mut p = pki(6);
    let user = issue(&mut p, "alice", KeyUsage::user());
    let round_tripped = unicore_certs::Certificate::from_der(&user.cert.to_der()).unwrap();
    p.trust
        .validate(
            std::slice::from_ref(&round_tripped),
            50,
            RequiredUsage::ClientAuth,
        )
        .unwrap();
    assert!(p
        .trust
        .validate(
            std::slice::from_ref(&round_tripped),
            50,
            RequiredUsage::CodeSign
        )
        .is_err());
    assert!(p
        .trust
        .validate(&[round_tripped], 999_999_999, RequiredUsage::ClientAuth)
        .is_err());
}

/// Session resumption still enforces the original authentication: the
/// resumed channel reports the same peer identity.
#[test]
fn resumption_preserves_identity() {
    let mut p = pki(7);
    let user = issue(&mut p, "resumer", KeyUsage::user());
    let server = issue(&mut p, "gw", KeyUsage::server());
    let user_ep = Endpoint::new(user, p.trust.clone(), 10);
    let server_ep = Endpoint::new(server, p.trust.clone(), 10);
    let cc = SessionCache::new(4);
    let sc = SessionCache::new(4);

    let mut peer_names = Vec::new();
    for seed in [10u64, 11] {
        let (cw, sw) = wire_pair();
        let (client, srv) = std::thread::scope(|s| {
            let h = s.spawn(|| {
                let mut rng = CryptoRng::from_u64(seed).fork("s");
                server_handshake(sw, &server_ep, &sc, &mut rng)
            });
            let mut rng = CryptoRng::from_u64(seed).fork("c");
            (
                client_handshake(cw, &user_ep, "FZJ", &cc, &mut rng),
                h.join().unwrap(),
            )
        });
        let client = client.unwrap();
        let srv = srv.unwrap();
        peer_names.push((client.resumed(), srv.peer().tbs.subject.common_name.clone()));
    }
    assert_eq!(peer_names[0], (false, "resumer".to_string()));
    assert_eq!(peer_names[1], (true, "resumer".to_string()));
}
