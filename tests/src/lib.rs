//! Test-only package: integration tests spanning the workspace crates.
