//! The seamlessness property itself — the paper's central claim: "users
//! then can use different systems at different sites for their
//! computations without modifying the application for the different
//! environments; this is all done by UNICORE" (§6).
//!
//! One abstract job, every architecture: the incarnations differ per
//! machine (correct dialect, correct compiler, correct library names) but
//! the user-visible behaviour is identical.

use unicore_ajo::{
    AbstractJob, AbstractTask, ActionId, ActionStatus, Dependency, ExecuteKind, GraphNode, JobId,
    ResourceRequest, TaskKind, UserAttributes, VsiteAddress,
};
use unicore_batch::script_matches_dialect;
use unicore_gateway::MappedUser;
use unicore_njs::{Njs, TranslationTable};
use unicore_resources::{deployment_page, Architecture};
use unicore_sim::{SimTime, HOUR, SEC};

const DN: &str = "C=DE, O=Grid, OU=Test, CN=seamless";

fn user(login: &str) -> MappedUser {
    MappedUser {
        dn: DN.into(),
        login: login.into(),
        account_group: "users".into(),
    }
}

/// The same abstract compile-link-execute job, parameterised only by
/// destination — exactly what a JPA user changes when re-targeting.
fn abstract_job(usite: &str, vsite: &str) -> AbstractJob {
    let mut job = AbstractJob::new(
        "portable",
        VsiteAddress::new(usite, vsite),
        UserAttributes::new(DN, "users"),
    );
    job.portfolio.push(unicore_ajo::PortfolioFile {
        name: "solver.f90".into(),
        data: b"program solver\nend\n".to_vec().into(),
    });
    job.nodes.push((
        ActionId(1),
        GraphNode::Task(AbstractTask {
            name: "import".into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::File(unicore_ajo::FileKind::Import {
                source: unicore_ajo::DataLocation::Workstation {
                    path: "solver.f90".into(),
                },
                uspace_name: "solver.f90".into(),
            }),
        }),
    ));
    job.nodes.push((
        ActionId(2),
        GraphNode::Task(AbstractTask {
            name: "compile".into(),
            resources: ResourceRequest::minimal().with_run_time(600),
            kind: TaskKind::Execute(ExecuteKind::Compile {
                sources: vec!["solver.f90".into()],
                options: vec!["O3".into()],
                output: "solver.o".into(),
            }),
        }),
    ));
    job.nodes.push((
        ActionId(3),
        GraphNode::Task(AbstractTask {
            name: "link".into(),
            resources: ResourceRequest::minimal().with_run_time(600),
            kind: TaskKind::Execute(ExecuteKind::Link {
                objects: vec!["solver.o".into()],
                libraries: vec!["blas".into()],
                output: "solver".into(),
            }),
        }),
    ));
    job.nodes.push((
        ActionId(4),
        GraphNode::Task(AbstractTask {
            name: "run".into(),
            resources: ResourceRequest::minimal()
                .with_processors(8)
                .with_run_time(1_200),
            kind: TaskKind::Execute(ExecuteKind::User {
                executable: "solver".into(),
                arguments: vec![],
                environment: vec![],
            }),
        }),
    ));
    for (a, b) in [(1u64, 2u64), (2, 3), (3, 4)] {
        job.dependencies.push(Dependency {
            from: ActionId(a),
            to: ActionId(b),
            files: vec![],
        });
    }
    job
}

fn run_to_done(njs: &mut Njs, job: JobId) -> SimTime {
    let mut now = 0;
    njs.step(now);
    while !njs.is_done(job) && now < HOUR {
        now = njs.next_event_time().unwrap_or(now + SEC).max(now + 1);
        njs.step(now);
    }
    now
}

#[test]
fn one_abstract_job_runs_on_every_architecture() {
    let cases = [
        ("T3E", Architecture::CrayT3e),
        ("VPP", Architecture::FujitsuVpp700),
        ("SP2", Architecture::IbmSp2),
        ("SX4", Architecture::NecSx4),
        ("GEN", Architecture::Generic),
    ];
    for (vsite, arch) in cases {
        let mut njs = Njs::new("SITE");
        njs.add_vsite(
            deployment_page("SITE", vsite, arch),
            TranslationTable::for_architecture(arch),
        );
        let job = abstract_job("SITE", vsite);
        let id = njs.consign(job, user("local"), 0).unwrap();
        run_to_done(&mut njs, id);
        let outcome = njs.outcome(id).unwrap();
        assert_eq!(
            outcome.status,
            ActionStatus::Successful,
            "job failed on {arch:?}: {outcome:?}"
        );
        // The linked binary exists in the Uspace regardless of machine.
        let v = njs.vsite(vsite).unwrap();
        assert!(v.vspace.uspace(id).unwrap().exists("solver"));
    }
}

#[test]
fn incarnations_differ_but_match_each_dialect() {
    use unicore_njs::incarnate_execute;
    let kind = ExecuteKind::Compile {
        sources: vec!["solver.f90".into()],
        options: vec!["O3".into()],
        output: "solver.o".into(),
    };
    let resources = ResourceRequest::minimal()
        .with_processors(8)
        .with_run_time(600);
    let mut scripts = Vec::new();
    for arch in Architecture::ALL {
        let script = incarnate_execute(
            &TranslationTable::for_architecture(arch),
            &kind,
            &resources,
            "login",
            "J1",
        );
        assert!(
            script_matches_dialect(&script, arch),
            "{arch:?} script does not match its own dialect:\n{script}"
        );
        // ...and does NOT match any other dialect.
        for other in Architecture::ALL {
            if other != arch {
                assert!(
                    !script_matches_dialect(&script, other),
                    "{arch:?} script wrongly matches {other:?}"
                );
            }
        }
        scripts.push(script);
    }
    // All five incarnations are distinct text.
    for i in 0..scripts.len() {
        for j in i + 1..scripts.len() {
            assert_ne!(scripts[i], scripts[j]);
        }
    }
}

#[test]
fn same_user_different_logins_per_site_no_uniform_uid() {
    // Two sites, two UUDBs, one DN — the site-autonomy property (§4).
    let mut fzj = Njs::new("FZJ");
    fzj.add_vsite(
        deployment_page("FZJ", "T3E", Architecture::CrayT3e),
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    let mut rus = Njs::new("RUS");
    rus.add_vsite(
        deployment_page("RUS", "VPP", Architecture::FujitsuVpp700),
        TranslationTable::for_architecture(Architecture::FujitsuVpp700),
    );

    let job_fzj = {
        let mut j = abstract_job("FZJ", "T3E");
        j.name = "at-fzj".into();
        j
    };
    let job_rus = {
        let mut j = abstract_job("RUS", "VPP");
        j.name = "at-rus".into();
        j
    };
    let id1 = fzj.consign(job_fzj, user("romberg"), 0).unwrap();
    let id2 = rus.consign(job_rus, user("mr042"), 0).unwrap();
    run_to_done(&mut fzj, id1);
    run_to_done(&mut rus, id2);
    assert!(fzj.outcome(id1).unwrap().status.is_success());
    assert!(rus.outcome(id2).unwrap().status.is_success());
    // Files at each site belong to the *local* login.
    let f1 = fzj.vsite("T3E").unwrap().vspace.uspace(id1).unwrap();
    assert!(f1.read("solver", "romberg").is_ok());
    assert!(f1.read("solver", "mr042").is_err());
    let f2 = rus.vsite("VPP").unwrap().vspace.uspace(id2).unwrap();
    assert!(f2.read("solver", "mr042").is_ok());
    assert!(f2.read("solver", "romberg").is_err());
}

#[test]
fn admission_limits_differ_per_machine() {
    // 100 processors fit the T3E (512 PEs) but not the SX-4 (32 PEs):
    // the same abstract request is admissible at one site and not another,
    // and the NJS tells the user *before* anything runs.
    let mut big = abstract_job("SITE", "T3E");
    if let GraphNode::Task(t) = &mut big.nodes[3].1 {
        t.resources.processors = 100;
    }
    let mut t3e = Njs::new("SITE");
    t3e.add_vsite(
        deployment_page("SITE", "T3E", Architecture::CrayT3e),
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    assert!(t3e.consign(big.clone(), user("u"), 0).is_ok());

    let mut sx4 = Njs::new("SITE");
    sx4.add_vsite(
        deployment_page("SITE", "SX4", Architecture::NecSx4),
        TranslationTable::for_architecture(Architecture::NecSx4),
    );
    let mut for_sx4 = big;
    for_sx4.vsite = VsiteAddress::new("SITE", "SX4");
    assert!(matches!(
        sx4.consign(for_sx4, user("u"), 0),
        Err(unicore_njs::NjsError::Admission { .. })
    ));
}
