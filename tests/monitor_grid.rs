//! The federated monitoring plane (§ E12 / E17): one `Monitor { grid:
//! true }` query at any Usite climbs the aggregation tree and returns
//! one pre-merged [`GridView`] of the whole grid — per-site status rows
//! with health banners, the grid-merged metrics, and any firing SLO
//! alerts — and a failed task's `Outcome` carries the NJS
//! flight-recorder trace home for the JMC to render next to the red
//! icon.

use unicore::protocol::{grid_view_of, monitor_reports_of};
use unicore::{Federation, FederationConfig, Response, SiteSpec};
use unicore_ajo::{GridView, ResourceRequest, SiteHealth, UserAttributes, VsiteAddress};
use unicore_client::{first_failure, render_flight, render_grid, JobPreparationAgent};
use unicore_resources::{Architecture, ResourceDirectory};
use unicore_sim::{HOUR, MINUTE, SEC};

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=operator";

fn jpa() -> JobPreparationAgent {
    JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new())
}

fn simple_job(usite: &str, vsite: &str, script: &str) -> unicore_ajo::AbstractJob {
    let mut job = jpa().new_job("probe", VsiteAddress::new(usite, vsite));
    job.script_task(
        "step",
        script,
        ResourceRequest::minimal().with_run_time(600),
    );
    job.build().unwrap()
}

fn two_site_federation() -> Federation {
    let specs = vec![
        SiteSpec::simple("FZJ", "T3E", Architecture::CrayT3e),
        SiteSpec::simple("RUS", "VPP", Architecture::FujitsuVpp700),
    ];
    let mut fed = Federation::new(FederationConfig::default(), &specs);
    fed.enable_telemetry(0xE12);
    fed.register_user(DN, "op");
    fed
}

/// Runs the federation until the response to `corr` arrives (or panics
/// after `limit`).
fn await_response(fed: &mut Federation, corr: u64, limit: u64) -> Response {
    let deadline = fed.now() + limit;
    loop {
        fed.run_until((fed.now() + SEC).min(deadline));
        if let Some(resp) = fed.take_client_response(corr) {
            return resp;
        }
        assert!(fed.now() < deadline, "no response to corr {corr}");
    }
}

/// One grid query, answered as a [`GridView`].
fn grid_view(fed: &mut Federation, usite: &str, limit: u64) -> GridView {
    let corr = fed.client_monitor(usite, DN, true);
    let resp = await_response(fed, corr, limit);
    grid_view_of(&resp)
        .unwrap_or_else(|| panic!("expected a grid view, got {resp:?}"))
        .clone()
}

#[test]
fn grid_monitor_merges_reports_from_all_sites() {
    let mut fed = two_site_federation();

    // Real work at both sites so the registries have something to say.
    let (_, o1, _) = fed
        .submit_and_wait(
            "FZJ",
            simple_job("FZJ", "T3E", "sleep 30\n"),
            DN,
            5 * SEC,
            HOUR,
        )
        .expect("FZJ job completes");
    assert!(o1.status.is_success());
    let (_, o2, _) = fed
        .submit_and_wait(
            "RUS",
            simple_job("RUS", "VPP", "sleep 30\n"),
            DN,
            5 * SEC,
            HOUR,
        )
        .expect("RUS job completes");
    assert!(o2.status.is_success());

    // A couple of heartbeat rounds so both rows reach the tree root.
    fed.run_until(fed.now() + 2 * MINUTE);

    // One query at one Usite covers the whole grid.
    let view = grid_view(&mut fed, "FZJ", 10 * MINUTE);

    assert_eq!(view.sites.len(), 2, "expected both Usites: {view:?}");
    // Namespaced per site, merged in sorted order.
    assert_eq!(view.sites[0].usite, "FZJ");
    assert_eq!(view.sites[1].usite, "RUS");
    assert_eq!(view.unreachable_count(), 0);
    for site in &view.sites {
        assert!(
            matches!(site.health, SiteHealth::Live),
            "{} not live: {:?}",
            site.usite,
            site.health
        );
        assert!(
            site.headline("njs.consigned") >= 1,
            "{} consigned nothing: {:?}",
            site.usite,
            site.headline
        );
        assert_eq!(site.vsites.len(), 1);
        assert!(site.vsites[0].free_nodes > 0);
        assert_eq!(site.vsites[0].stuck_jobs, 0);
    }
    // The merged snapshot sums the whole grid.
    assert!(view.merged.counter("njs.consigned") >= 2, "{view:?}");
    assert!(view.merged.counters.contains_key("gateway.audit.dropped"));
    assert!(view.merged.counters.contains_key("store.wal.repairs"));

    // The JMC renders the aggregated view as one namespaced panel.
    let panel = render_grid(&view);
    assert!(panel.contains("Usite FZJ"));
    assert!(panel.contains("Usite RUS"));
    assert!(panel.contains("njs.consigned = "));
    assert!(panel.contains("grid totals"));
}

#[test]
fn grid_monitor_marks_unreachable_site() {
    let mut fed = two_site_federation();
    fed.set_partitioned("RUS", true);

    // The dark site never stalls the view: the answer still covers the
    // whole grid, with the partitioned Usite as a marked row instead of
    // a hole.
    let view = grid_view(&mut fed, "FZJ", 10 * MINUTE);

    assert_eq!(view.sites.len(), 2, "view must stay complete: {view:?}");
    assert_eq!(view.sites[0].usite, "FZJ");
    assert_eq!(view.sites[1].usite, "RUS");
    assert!(
        view.sites[1].health.is_unreachable(),
        "partitioned site must be flagged: {:?}",
        view.sites[1].health
    );
    assert!(!view.sites[0].health.is_unreachable());
    assert_eq!(view.unreachable_count(), 1);
    assert!(render_grid(&view).contains("UNREACHABLE (network partition)"));
}

#[test]
fn rejoined_site_sheds_unreachable_row() {
    let mut fed = two_site_federation();
    fed.set_partitioned("RUS", true);
    fed.run_until(fed.now() + 5 * MINUTE);
    let view = grid_view(&mut fed, "FZJ", 10 * MINUTE);
    assert!(view.site("RUS").expect("row").health.is_unreachable());

    // Healing the partition lets RUS's own heartbeats through again; the
    // stale tombstone must drop out of the very next settled view rather
    // than lingering (the E17 regression: a rejoined site stayed
    // UNREACHABLE until an operator poked it).
    fed.set_partitioned("RUS", false);
    fed.run_until(fed.now() + 3 * MINUTE);
    let view = grid_view(&mut fed, "FZJ", 10 * MINUTE);
    let row = view.site("RUS").expect("row");
    assert!(
        !row.health.is_unreachable(),
        "rejoined site still tombstoned: {:?}",
        row.health
    );
    assert!(
        matches!(row.health, SiteHealth::Live),
        "rejoined site should be live again: {:?}",
        row.health
    );
    assert!(!row.vsites.is_empty(), "live row carries Vsite gauges");
}

#[test]
fn non_grid_monitor_answers_for_entry_site_only() {
    let mut fed = two_site_federation();
    let corr = fed.client_monitor("RUS", DN, false);
    let resp = await_response(&mut fed, corr, MINUTE);
    let sites = monitor_reports_of(&resp).expect("monitor outcome");
    assert_eq!(sites.len(), 1);
    assert_eq!(sites[0].usite, "RUS");
}

#[test]
fn failed_task_outcome_carries_flight_trace() {
    let mut fed = two_site_federation();

    let job = simple_job("FZJ", "T3E", "sleep 10\nexit 3\n");
    let (_, outcome, _) = fed
        .submit_and_wait("FZJ", job.clone(), DN, 5 * SEC, HOUR)
        .expect("job reaches a terminal state");
    assert!(!outcome.status.is_success(), "{outcome:?}");

    let (name, task) = first_failure(&job, &outcome).expect("a failed task");
    assert_eq!(name, "step");
    assert_eq!(task.exit_code, Some(3));
    assert!(
        !task.flight.is_empty(),
        "failed outcome carries no flight trace: {task:?}"
    );
    // The recorder saw the job's whole life, not just the crash.
    let whats: Vec<&str> = task.flight.iter().map(|e| e.what.as_str()).collect();
    assert!(whats.contains(&"njs.consign"), "{whats:?}");
    assert!(whats.contains(&"batch.exit"), "{whats:?}");

    // And the JMC renders it.
    let text = render_flight(name, task);
    assert!(text.contains("flight trace for step"));
    assert!(text.contains("batch.exit"));
}

#[test]
fn successful_task_outcome_stays_trace_free() {
    let mut fed = two_site_federation();
    let job = simple_job("FZJ", "T3E", "sleep 10\n");
    let (_, outcome, _) = fed
        .submit_and_wait("FZJ", job.clone(), DN, 5 * SEC, HOUR)
        .expect("job completes");
    assert!(outcome.status.is_success());
    for output in unicore_client::collect_outputs(&job, &outcome) {
        assert_eq!(output.exit_code, Some(0));
    }
    // Success pays zero wire bytes for the recorder.
    for (_, node) in &outcome.children {
        if let unicore_ajo::OutcomeNode::Task(t) = node {
            assert!(t.flight.is_empty(), "{t:?}");
        }
    }
}
