//! E18 — sharded multi-core NJS determinism suite.
//!
//! The contract under test: splitting one Usite's NJS into N shards
//! stepped by W work-stealing workers changes *nothing observable*. For
//! every (shards, workers) combination — and across crash-restart with
//! per-shard WAL segments, and under federated chaos — the terminal job
//! outcomes must be DER-byte-identical to the plain single-threaded
//! [`Njs`] run.

use proptest::prelude::*;
use unicore::protocol::{outcome_of, Response};
use unicore::{Federation, FederationConfig};
use unicore_ajo::*;
use unicore_codec::DerCodec;
use unicore_gateway::MappedUser;
use unicore_njs::{Njs, ShardedNjs, TranslationTable};
use unicore_resources::{deployment_page, Architecture};
use unicore_sim::{SimTime, HOUR, MINUTE, SEC};
use unicore_simnet::FaultPlan;
use unicore_store::{EventStore, MemoryBackend};

const USITE: &str = "HUB";
const DN: &str = "C=DE, O=HUB, OU=ZAM, CN=shard";

/// Four Vsites on one Usite; with 2 shards they split 2+2, with 4 every
/// Vsite gets its own shard.
const VSITES: [(&str, Architecture); 4] = [
    ("V0", Architecture::CrayT3e),
    ("V1", Architecture::FujitsuVpp700),
    ("V2", Architecture::IbmSp2),
    ("V3", Architecture::NecSx4),
];

fn user() -> MappedUser {
    MappedUser {
        dn: DN.into(),
        login: "alice".into(),
        account_group: "users".into(),
    }
}

fn attrs() -> UserAttributes {
    UserAttributes::new(DN, "users")
}

fn addr(vsite: &str) -> VsiteAddress {
    VsiteAddress::new(USITE, vsite)
}

fn script_node(id: u64, name: &str, script: &str) -> (ActionId, GraphNode) {
    (
        ActionId(id),
        GraphNode::Task(AbstractTask {
            name: name.into(),
            resources: ResourceRequest::minimal().with_run_time(3_600),
            kind: TaskKind::Execute(ExecuteKind::Script {
                script: script.into(),
            }),
        }),
    )
}

fn file_node(id: u64, name: &str, kind: FileKind) -> (ActionId, GraphNode) {
    (
        ActionId(id),
        GraphNode::Task(AbstractTask {
            name: name.into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::File(kind),
        }),
    )
}

/// The workload: every cross-shard code path plus plain local work.
///
/// 1. A two-task pipeline on V0 (purely in-shard).
/// 2. A fan-out job on V0 with sub-jobs at V1 and V3 and files flowing
///    across both edges (cross-shard consign + return files).
/// 3. An Xspace import on V1 reading V2's Xspace (cross-shard read).
/// 4. An export on V2 writing V3's Xspace (cross-shard write).
/// 5. A same-Usite transfer V3 → V1 (cross-shard incoming delivery).
/// 6. A job whose sub-job names an unknown Vsite (deterministic failure).
fn workload() -> Vec<AbstractJob> {
    let mut pipeline = AbstractJob::new("pipeline", addr("V0"), attrs());
    pipeline
        .nodes
        .push(script_node(1, "make", "sleep 90\nproduce out.bin 4096\n"));
    pipeline.nodes.push(script_node(2, "check", "sleep 10\n"));
    pipeline.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["out.bin".into()],
    });

    let mut prep = AbstractJob::new("prep@V1", addr("V1"), attrs());
    prep.nodes
        .push(script_node(1, "pre", "sleep 10\nproduce grid.dat 2048\n"));
    let mut post = AbstractJob::new("post@V3", addr("V3"), attrs());
    post.nodes.push(script_node(1, "vis", "sleep 5\n"));
    let mut fan = AbstractJob::new("fanout", addr("V0"), attrs());
    fan.nodes.push((ActionId(1), GraphNode::SubJob(prep)));
    fan.nodes.push(script_node(
        2,
        "main",
        "sleep 60\nproduce fields.dat 4096\n",
    ));
    fan.nodes.push((ActionId(3), GraphNode::SubJob(post)));
    fan.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["grid.dat".into()],
    });
    fan.dependencies.push(Dependency {
        from: ActionId(2),
        to: ActionId(3),
        files: vec!["fields.dat".into()],
    });

    let mut import = AbstractJob::new("import", addr("V1"), attrs());
    import.nodes.push(file_node(
        1,
        "fetch",
        FileKind::Import {
            source: DataLocation::Xspace {
                vsite: addr("V2"),
                path: "/data/input.dat".into(),
            },
            uspace_name: "input.dat".into(),
        },
    ));
    import.nodes.push(script_node(2, "use", "sleep 15\n"));
    import.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec![],
    });

    let mut export = AbstractJob::new("export", addr("V2"), attrs());
    export
        .nodes
        .push(script_node(1, "calc", "sleep 25\nproduce res.dat 1024\n"));
    export.nodes.push(file_node(
        2,
        "archive",
        FileKind::Export {
            uspace_name: "res.dat".into(),
            destination: DataLocation::Xspace {
                vsite: addr("V3"),
                path: "/archive/res.dat".into(),
            },
        },
    ));
    export.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["res.dat".into()],
    });

    let mut ship = AbstractJob::new("ship", addr("V3"), attrs());
    ship.nodes
        .push(script_node(1, "make", "sleep 20\nproduce pack.bin 2048\n"));
    ship.nodes.push(file_node(
        2,
        "send",
        FileKind::Transfer {
            uspace_name: "pack.bin".into(),
            to_vsite: addr("V1"),
            dest_name: "pack.bin".into(),
        },
    ));
    ship.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["pack.bin".into()],
    });

    let mut nowhere = AbstractJob::new("lost@NOPE", addr("NOPE"), attrs());
    nowhere.nodes.push(script_node(1, "x", "sleep 5\n"));
    let mut doomed = AbstractJob::new("doomed", addr("V0"), attrs());
    doomed.nodes.push((ActionId(1), GraphNode::SubJob(nowhere)));
    doomed.nodes.push(script_node(2, "ok", "sleep 5\n"));

    vec![pipeline, fan, import, export, ship, doomed]
}

/// Builds a sharded NJS with the four Vsites and V2's Xspace seeded.
fn build(shards: usize, workers: usize) -> ShardedNjs {
    let mut njs = ShardedNjs::new(USITE, shards, workers);
    for (vsite, arch) in VSITES {
        njs.add_vsite(
            deployment_page(USITE, vsite, arch),
            TranslationTable::for_architecture(arch),
        );
    }
    njs.vsite_mut("V2")
        .unwrap()
        .vspace
        .xspace()
        .write("/data/input.dat", vec![7u8; 1536], "alice")
        .unwrap();
    njs
}

/// Steps until every job is done; panics on a stall.
fn drive(njs: &mut ShardedNjs, jobs: &[JobId], mut now: SimTime) -> SimTime {
    let deadline = now + 10 * HOUR;
    loop {
        njs.step(now);
        if jobs.iter().all(|&j| njs.is_done(j)) {
            return now;
        }
        assert!(now < deadline, "jobs stalled at t={now}");
        now = njs.next_event_time().unwrap_or(now + SEC).max(now + SEC);
    }
}

/// Consigns the workload and runs it to completion; returns every job's
/// terminal outcome DER, in submission order.
fn run(njs: &mut ShardedNjs) -> Vec<Vec<u8>> {
    let ids: Vec<JobId> = workload()
        .into_iter()
        .map(|ajo| njs.consign(ajo, user(), 0).expect("consign"))
        .collect();
    drive(njs, &ids, 0);
    ids.iter()
        .map(|&id| njs.outcome(id).expect("terminal").to_der())
        .collect()
}

/// The single-threaded reference run on a plain [`Njs`].
fn baseline() -> Vec<Vec<u8>> {
    let mut njs = Njs::new(USITE);
    for (vsite, arch) in VSITES {
        njs.add_vsite(
            deployment_page(USITE, vsite, arch),
            TranslationTable::for_architecture(arch),
        );
    }
    njs.vsite_mut("V2")
        .unwrap()
        .vspace
        .xspace()
        .write("/data/input.dat", vec![7u8; 1536], "alice")
        .unwrap();
    let mut facade = ShardedNjs::from(njs);
    run(&mut facade)
}

#[test]
fn outcomes_byte_identical_across_shard_and_worker_counts() {
    let reference = baseline();
    // The doomed job must fail, the rest succeed — in every variant.
    let statuses: Vec<bool> = reference
        .iter()
        .map(|der| JobOutcome::from_der(der).unwrap().status.is_success())
        .collect();
    assert_eq!(statuses, [true, true, true, true, true, false]);
    for (shards, workers) in [(1, 1), (2, 1), (2, 2), (3, 2), (4, 1), (4, 4), (4, 8)] {
        let mut njs = build(shards, workers);
        let outcomes = run(&mut njs);
        assert_eq!(
            reference, outcomes,
            "outcomes diverged with {shards} shards / {workers} workers"
        );
    }
}

#[test]
fn cross_shard_files_really_land() {
    let mut njs = build(4, 4);
    let ids: Vec<JobId> = workload()
        .into_iter()
        .map(|ajo| njs.consign(ajo, user(), 0).expect("consign"))
        .collect();
    drive(&mut njs, &ids, 0);
    // Export wrote into V3's Xspace across the shard boundary.
    let archived = njs
        .vsite("V3")
        .unwrap()
        .vspace
        .xspace_ref()
        .read_raw("/archive/res.dat")
        .expect("export landed");
    assert_eq!(archived.data.len(), 1024);
    // Transfer landed in V1's incoming area across the shard boundary.
    let incoming = njs
        .vsite("V1")
        .unwrap()
        .vspace
        .xspace_ref()
        .read_raw(&format!("{}pack.bin", unicore_njs::INCOMING_PREFIX))
        .expect("transfer landed");
    assert_eq!(incoming.data.len(), 2048);
    // The fan-out's return file flowed back from V1's child into the
    // parent's Uspace on V0 (visible via the parent's file list).
    let files = njs.list_uspace_files(ids[1], DN).expect("parent uspace");
    assert!(
        files.iter().any(|f| f == "grid.dat"),
        "cross-shard return file missing: {files:?}"
    );
}

#[test]
fn wal_replay_is_byte_identical_per_segment() {
    let reference = baseline();
    let shards = 2;
    let mems: Vec<MemoryBackend> = (0..shards).map(|_| MemoryBackend::new()).collect();
    let mut njs = build(shards, 2);
    njs.attach_stores(
        mems.iter()
            .map(|m| EventStore::open(Box::new(m.clone())).expect("open"))
            .collect(),
    );
    let ids: Vec<JobId> = workload()
        .into_iter()
        .map(|ajo| njs.consign(ajo, user(), 0).expect("consign"))
        .collect();
    drive(&mut njs, &ids, 0);
    let outcomes: Vec<Vec<u8>> = ids
        .iter()
        .map(|&id| njs.outcome(id).expect("terminal").to_der())
        .collect();
    assert_eq!(reference, outcomes, "sharded run with WAL diverged");
    drop(njs);

    // Reboot on the same two segments: every job must come back
    // terminal with the exact same outcome bytes.
    for mem in &mems {
        mem.reboot();
    }
    let mut njs = build(shards, 2);
    njs.attach_stores(
        mems.iter()
            .map(|m| EventStore::open(Box::new(m.clone())).expect("reopen"))
            .collect(),
    );
    let report = njs.recover(2 * HOUR).expect("recovery");
    assert_eq!(report.jobs.len(), ids.len() + 2, "roots + 2 live children");
    let replayed: Vec<Vec<u8>> = ids
        .iter()
        .map(|&id| {
            assert!(njs.is_done(id), "job {id} not terminal after replay");
            njs.outcome(id).unwrap().to_der()
        })
        .collect();
    assert_eq!(reference, replayed, "replayed outcomes diverged");
}

#[test]
fn crash_restart_mid_step_converges_to_identical_outcomes() {
    let reference = baseline();
    // Crash at several points inside the run — including mid-pipeline,
    // with cross-shard children alive — and finish after reboot.
    for crash_at in [10 * SEC, 40 * SEC, 90 * SEC, 3 * MINUTE] {
        let shards = 4;
        let mems: Vec<MemoryBackend> = (0..shards).map(|_| MemoryBackend::new()).collect();
        let mut njs = build(shards, 4);
        njs.attach_stores(
            mems.iter()
                .map(|m| EventStore::open(Box::new(m.clone())).expect("open"))
                .collect(),
        );
        let ids: Vec<JobId> = workload()
            .into_iter()
            .map(|ajo| njs.consign(ajo, user(), 0).expect("consign"))
            .collect();
        let mut now = 0;
        while now < crash_at && !ids.iter().all(|&j| njs.is_done(j)) {
            njs.step(now);
            now = njs.next_event_time().unwrap_or(now + SEC).max(now + SEC);
        }
        drop(njs); // the crash: all RAM state gone, only the WAL survives

        for mem in &mems {
            mem.reboot();
        }
        let mut njs = build(shards, 4);
        njs.attach_stores(
            mems.iter()
                .map(|m| EventStore::open(Box::new(m.clone())).expect("reopen"))
                .collect(),
        );
        njs.recover(now).expect("recovery");
        drive(&mut njs, &ids, now);
        let outcomes: Vec<Vec<u8>> = ids
            .iter()
            .map(|&id| njs.outcome(id).expect("terminal").to_der())
            .collect();
        assert_eq!(
            reference, outcomes,
            "crash at t={crash_at}: outcomes diverged after restart"
        );
    }
}

// --------------------------------------------------------------------
// Property: arbitrary small workloads behave identically sharded.

/// One randomly-shaped job: a Vsite, a couple of tasks, optionally a
/// sub-job on another Vsite with a file edge.
fn arb_job() -> impl Strategy<Value = AbstractJob> {
    (0usize..4, 1u64..60, 0usize..5, any::<bool>()).prop_map(|(v, sleep, sub_v, with_sub)| {
        let mut job = AbstractJob::new(format!("p{v}-{sleep}"), addr(VSITES[v].0), attrs());
        job.nodes.push(script_node(
            1,
            "work",
            &format!("sleep {sleep}\nproduce a.dat 256\n"),
        ));
        if with_sub {
            // sub_v == 4 targets an unknown Vsite (the failure path).
            let target = if sub_v < 4 { VSITES[sub_v].0 } else { "NOPE" };
            let mut sub = AbstractJob::new(format!("s{sub_v}"), addr(target), attrs());
            sub.nodes.push(script_node(1, "sub", "sleep 7\n"));
            job.nodes.push((ActionId(2), GraphNode::SubJob(sub)));
            job.dependencies.push(Dependency {
                from: ActionId(1),
                to: ActionId(2),
                files: vec!["a.dat".into()],
            });
        }
        job
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_sharded_outcomes_match_single_threaded(
        jobs in proptest::collection::vec(arb_job(), 1..6),
        shards in 1usize..5,
        workers in 1usize..5,
    ) {
        let run_with = |njs: &mut ShardedNjs| -> Vec<Vec<u8>> {
            let ids: Vec<JobId> = jobs
                .iter()
                .map(|ajo| njs.consign(ajo.clone(), user(), 0).expect("consign"))
                .collect();
            drive(njs, &ids, 0);
            ids.iter().map(|&id| njs.outcome(id).unwrap().to_der()).collect()
        };
        let mut single = build(1, 1);
        let reference = run_with(&mut single);
        let mut sharded = build(shards, workers);
        let outcomes = run_with(&mut sharded);
        prop_assert_eq!(reference, outcomes);
    }
}

// --------------------------------------------------------------------
// Federated chaos soak: every site's NJS runs 2 shards / 2 workers, the
// fault plan kills and reboots a site mid-workload, and the terminal
// outcomes must still match the single-shard fault-free run bytes.

const SEEDS: [u64; 3] = [1, 7, 23];
const FED_DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=shard-chaos";

fn fed_workload() -> Vec<(&'static str, AbstractJob)> {
    let a = UserAttributes::new(FED_DN, "users");
    let mut pipeline = AbstractJob::new("pipeline", VsiteAddress::new("FZJ", "T3E"), a.clone());
    pipeline
        .nodes
        .push(script_node(1, "make", "sleep 90\nproduce out.bin 4096\n"));
    pipeline.nodes.push(script_node(2, "check", "sleep 10\n"));
    pipeline.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["out.bin".into()],
    });
    let mut sub = AbstractJob::new("prep@RUS", VsiteAddress::new("RUS", "VPP"), a.clone());
    sub.nodes
        .push(script_node(1, "pre", "sleep 10\nproduce grid.dat 2048\n"));
    let mut multi = AbstractJob::new("2site", VsiteAddress::new("FZJ", "T3E"), a.clone());
    multi.nodes.push((ActionId(1), GraphNode::SubJob(sub)));
    multi.nodes.push(script_node(2, "main", "sleep 60\n"));
    multi.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["grid.dat".into()],
    });
    let mut solo = AbstractJob::new("solo", VsiteAddress::new("ZIB", "T3E"), a);
    solo.nodes
        .push(script_node(1, "t", "sleep 20\nproduce r.nc 512\n"));
    vec![("FZJ", pipeline), ("FZJ", multi), ("ZIB", solo)]
}

fn run_fed(seed: u64, shards: usize, plan: Option<&FaultPlan>) -> Vec<Vec<u8>> {
    let mut fed = Federation::german_deployment(FederationConfig {
        seed,
        njs_shards: shards,
        njs_workers: shards,
        ..FederationConfig::default()
    });
    fed.register_user(FED_DN, "alice");
    fed.attach_stores();
    if let Some(plan) = plan {
        fed.apply_fault_plan(plan);
    }
    let corrs: Vec<(String, u64)> = fed_workload()
        .into_iter()
        .map(|(via, job)| (via.to_string(), fed.client_submit(via, job, FED_DN)))
        .collect();
    let deadline = 4 * HOUR;
    let mut ids: Vec<Option<JobId>> = vec![None; corrs.len()];
    while ids.iter().any(Option::is_none) {
        fed.run_until(fed.now() + 5 * SEC);
        for (i, (_, corr)) in corrs.iter().enumerate() {
            if ids[i].is_none() {
                match fed.take_client_response(*corr) {
                    Some(Response::Consigned { job }) => ids[i] = Some(job),
                    Some(other) => panic!("consign {i} failed: {other:?}"),
                    None => {}
                }
            }
        }
        assert!(fed.now() < deadline, "consign acks never arrived");
    }
    let mut outcomes = Vec::new();
    for (i, (via, _)) in corrs.iter().enumerate() {
        let id = ids[i].expect("consigned");
        let outcome = loop {
            let poll = fed.client_poll(via, FED_DN, id, DetailLevel::Tasks);
            fed.run_until(fed.now() + 10 * SEC);
            if let Some(resp) = fed.take_client_response(poll) {
                if let Some(o) = outcome_of(&resp) {
                    if o.status.is_terminal() {
                        break o.clone();
                    }
                }
            }
            assert!(fed.now() < deadline, "job {i} never terminated");
        };
        assert!(outcome.status.is_success(), "job {i}: {outcome:?}");
        outcomes.push(outcome.to_der());
    }
    outcomes
}

#[test]
fn chaos_soak_sharded_sites_byte_identical_across_seeds() {
    for seed in SEEDS {
        let reference = run_fed(seed, 1, None);
        // Sharding alone must not change the bytes...
        let sharded = run_fed(seed, 2, None);
        assert_eq!(reference, sharded, "seed {seed}: sharding changed bytes");
        // ...nor sharding plus a crash-restart landing mid-workload on
        // the site holding the multi-site parent (per-shard WAL replay).
        let plan = FaultPlan::new(seed ^ 0x55).crash_restart("FZJ", 40 * SEC, 2 * MINUTE);
        let faulted = run_fed(seed, 2, Some(&plan));
        assert_eq!(
            reference, faulted,
            "seed {seed}: crash-restart under sharding diverged"
        );
    }
}
