//! E16/E17 at grid scale: a 100-Usite synthetic deployment running the
//! hierarchical aggregation plane. One query returns the complete view
//! in O(log n) hops; steady-state heartbeats ship small deltas, not full
//! snapshots; a partitioned interior site degrades its subtree to marked
//! stale rows instead of stalling or shrinking the view; and a
//! crash-restarted site resyncs with one full snapshot and rejoins.

use unicore::protocol::grid_view_of;
use unicore::{Federation, FederationConfig};
use unicore_ajo::{GridView, SiteHealth};
use unicore_sim::{MINUTE, SEC};

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=gridscale";
const N: usize = 100;

fn grid(seed: u64) -> Federation {
    let mut fed = Federation::grid_deployment(
        FederationConfig {
            seed,
            ..FederationConfig::default()
        },
        N,
    );
    fed.enable_telemetry(seed);
    fed.register_user(DN, "op");
    fed
}

fn grid_view(fed: &mut Federation, usite: &str) -> GridView {
    let corr = fed.client_monitor(usite, DN, true);
    let deadline = fed.now() + 10 * MINUTE;
    loop {
        fed.run_until(fed.now() + 5 * SEC);
        if let Some(resp) = fed.take_client_response(corr) {
            return grid_view_of(&resp)
                .unwrap_or_else(|| panic!("expected a grid view, got {resp:?}"))
                .clone();
        }
        assert!(fed.now() < deadline, "no grid view from {usite}");
    }
}

#[test]
fn hundred_sites_converge_to_a_complete_live_view_in_log_hops() {
    let mut fed = grid(0xE16);
    assert_eq!(fed.grid_tree().sites().len(), N);
    let depth = fed.grid_tree().depth();
    assert!(
        depth <= 4,
        "100 sites at fanout 4 must stay shallow: {depth}"
    );

    // Let rows propagate leaf → root: depth × push_interval plus slack.
    fed.run_until(6 * MINUTE);

    // Query at the *deepest* site: the answer climbs to the root and
    // must cost O(log n) relay hops, not a fan-out.
    let deepest = fed.grid_tree().sites().last().unwrap().clone();
    let hops_before = fed.grid_query_hops;
    let view = grid_view(&mut fed, &deepest);
    let hops = fed.grid_query_hops - hops_before;
    assert!(
        hops as usize <= depth,
        "one query cost {hops} hops (depth {depth})"
    );

    assert_eq!(view.sites.len(), N, "view must cover every Usite");
    assert_eq!(view.unreachable_count(), 0);
    for row in &view.sites {
        assert!(
            matches!(row.health, SiteHealth::Live),
            "{} not live after convergence: {:?}",
            row.usite,
            row.health
        );
    }
    // The merged snapshot folded every site's registry overlay.
    assert!(view.merged.counters.contains_key("njs.consigned"));
    assert!(view.merged.counters.contains_key("gateway.audit.dropped"));
}

#[test]
fn steady_state_heartbeats_ship_deltas_not_full_snapshots() {
    let mut fed = grid(0xDE17A);
    fed.run_until(6 * MINUTE);

    let full0 = fed.grid_push_bytes_full;
    let delta0 = fed.grid_push_bytes_delta;
    assert!(full0 > 0, "initial round must resync with full snapshots");

    // Ten idle minutes: every non-root site heartbeats ~20 more times.
    fed.run_until(fed.now() + 10 * MINUTE);
    let full_window = fed.grid_push_bytes_full - full0;
    let delta_window = fed.grid_push_bytes_delta - delta0;
    let rounds = 20u64;

    // No site should need another full resync on a healthy grid…
    let avg_full = full0 / (N as u64 - 1);
    assert!(
        full_window <= 2 * avg_full,
        "unexpected resyncs in steady state: {full_window} full bytes"
    );
    // …and the delta traffic must stay ≤20% of what shipping full
    // snapshots every round would have cost.
    assert!(
        delta_window <= full0 * rounds / 5,
        "delta window {delta_window} vs full-rate budget {}",
        full0 * rounds / 5
    );
}

#[test]
fn partitioned_interior_site_degrades_its_subtree_to_stale_rows() {
    let mut fed = grid(0xE16);
    fed.run_until(6 * MINUTE);

    // Cut off an interior node (a direct child of the root): its whole
    // subtree stops reaching the root.
    let victim = fed.grid_tree().sites()[1].clone();
    let subtree: Vec<String> = fed
        .grid_tree()
        .subtree(&victim)
        .into_iter()
        .map(str::to_owned)
        .collect();
    assert!(subtree.len() > 1, "victim must be interior");
    fed.set_partitioned(&victim, true);
    fed.run_until(fed.now() + 3 * MINUTE);

    let root = fed.grid_tree().root().to_owned();
    let view = grid_view(&mut fed, &root);
    assert_eq!(
        view.sites.len(),
        N,
        "the dark subtree must not shrink the view"
    );
    assert!(
        view.site(&victim).unwrap().health.is_unreachable(),
        "partitioned site must be flagged"
    );
    for name in &subtree {
        if name == &victim {
            continue;
        }
        let row = view.site(name).unwrap();
        assert!(
            matches!(row.health, SiteHealth::Stale),
            "{name} behind the partition should be stale: {:?}",
            row.health
        );
        // The stale row keeps its last known content rather than
        // blanking out.
        assert!(row.epoch > 0, "{name} lost its cached row");
    }
    let live = view
        .sites
        .iter()
        .filter(|r| matches!(r.health, SiteHealth::Live))
        .count();
    assert_eq!(live, N - subtree.len(), "everyone else stays live");
}

#[test]
fn crash_restarted_leaf_resyncs_with_one_full_snapshot_and_rejoins() {
    let mut fed = grid(0xC4A5);
    fed.attach_stores();
    fed.run_until(6 * MINUTE);

    let leaf = fed.grid_tree().sites().last().unwrap().clone();
    fed.crash_site(&leaf);
    fed.run_until(fed.now() + 2 * MINUTE);
    let full_before = fed.grid_push_bytes_full;
    fed.restart_site(&leaf);
    fed.run_until(fed.now() + 3 * MINUTE);

    // The reborn node lost its uplink state, so its first heartbeat is
    // a full resync…
    assert!(
        fed.grid_push_bytes_full > full_before,
        "restart must force a full resync"
    );
    // …after which the row is live again at the root.
    let root = fed.grid_tree().root().to_owned();
    let view = grid_view(&mut fed, &root);
    let row = view.site(&leaf).unwrap();
    assert!(
        matches!(row.health, SiteHealth::Live),
        "restarted leaf should rejoin live: {:?}",
        row.health
    );
}
