//! Chaos soak suite: deterministic federated workloads replayed under
//! every fault class the seeded [`FaultPlan`] knows — message drop,
//! duplication, reordering, transient site partition, and server
//! crash-restart — asserting the terminal job outcomes are *byte-for-byte
//! identical* to the fault-free run. Faults may delay the grid; they must
//! never change what it computes.
//!
//! Plus the two targeted robustness scenarios of the issue: a permanently
//! partitioned peer yields a failed outcome and a quarantine flag within
//! the timeout bound (no hang), and an NJS killed mid-retry resumes its
//! pending peer work from the write-ahead journal after restart.

use unicore::ajo::*;
use unicore::protocol::{grid_view_of, outcome_of, Response};
use unicore::{Federation, FederationConfig};
use unicore_client::render_grid;
use unicore_codec::DerCodec;
use unicore_sim::{SimTime, HOUR, MINUTE, SEC};
use unicore_simnet::FaultPlan;

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=chaos";

/// The soak seeds: every fault class must hold for all of them.
const SEEDS: [u64; 3] = [1, 7, 23];

fn attrs() -> UserAttributes {
    UserAttributes::new(DN, "users")
}

fn script_node(id: u64, name: &str, script: &str) -> (ActionId, GraphNode) {
    (
        ActionId(id),
        GraphNode::Task(AbstractTask {
            name: name.into(),
            resources: ResourceRequest::minimal().with_run_time(3_600),
            kind: TaskKind::Execute(ExecuteKind::Script {
                script: script.into(),
            }),
        }),
    )
}

/// The federated workload: a local two-task pipeline at FZJ, a three-site
/// job fanning sub-AJOs to RUS and DWD with files on the edges, and an
/// independent single-task job at ZIB.
fn workload() -> Vec<(&'static str, AbstractJob)> {
    let mut pipeline = AbstractJob::new("pipeline", VsiteAddress::new("FZJ", "T3E"), attrs());
    pipeline
        .nodes
        .push(script_node(1, "make", "sleep 90\nproduce out.bin 4096\n"));
    pipeline.nodes.push(script_node(2, "check", "sleep 10\n"));
    pipeline.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["out.bin".into()],
    });

    let mut prep = AbstractJob::new("prep@RUS", VsiteAddress::new("RUS", "VPP"), attrs());
    prep.nodes
        .push(script_node(1, "pre", "sleep 10\nproduce grid.dat 2048\n"));
    let mut post = AbstractJob::new("post@DWD", VsiteAddress::new("DWD", "SX4"), attrs());
    post.nodes.push(script_node(1, "vis", "sleep 5\n"));
    let mut multi = AbstractJob::new("3site", VsiteAddress::new("FZJ", "T3E"), attrs());
    multi.nodes.push((ActionId(1), GraphNode::SubJob(prep)));
    multi.nodes.push(script_node(
        2,
        "main",
        "sleep 60\nproduce fields.dat 4096\n",
    ));
    multi.nodes.push((ActionId(3), GraphNode::SubJob(post)));
    multi.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["grid.dat".into()],
    });
    multi.dependencies.push(Dependency {
        from: ActionId(2),
        to: ActionId(3),
        files: vec!["fields.dat".into()],
    });

    let mut solo = AbstractJob::new("solo", VsiteAddress::new("ZIB", "T3E"), attrs());
    solo.nodes
        .push(script_node(1, "t", "sleep 20\nproduce r.nc 512\n"));

    vec![("FZJ", pipeline), ("FZJ", multi), ("ZIB", solo)]
}

/// Runs the workload under `plan` (or fault-free when `None`) and returns
/// the DER encodings of every job's terminal outcome, in submission
/// order, plus the finished federation for metric assertions.
fn run_workload(seed: u64, plan: Option<&FaultPlan>) -> (Vec<Vec<u8>>, Federation) {
    let mut fed = Federation::german_deployment(FederationConfig {
        seed,
        ..FederationConfig::default()
    });
    fed.register_user(DN, "alice");
    fed.attach_stores();
    if let Some(plan) = plan {
        fed.apply_fault_plan(plan);
    }

    let submissions = workload();
    let corrs: Vec<(String, u64)> = submissions
        .into_iter()
        .map(|(via, job)| (via.to_string(), fed.client_submit(via, job, DN)))
        .collect();

    // Collect consign acks (retried through whatever the plan throws).
    let deadline = 4 * HOUR;
    let mut ids: Vec<Option<JobId>> = vec![None; corrs.len()];
    while ids.iter().any(Option::is_none) {
        fed.run_until(fed.now() + 5 * SEC);
        for (i, (_, corr)) in corrs.iter().enumerate() {
            if ids[i].is_none() {
                match fed.take_client_response(*corr) {
                    Some(Response::Consigned { job }) => ids[i] = Some(job),
                    Some(other) => panic!("consign {i} failed: {other:?}"),
                    None => {}
                }
            }
        }
        assert!(fed.now() < deadline, "consign acks never arrived");
    }

    // Poll every job to its terminal outcome.
    let mut outcomes = Vec::new();
    for (i, (via, _)) in corrs.iter().enumerate() {
        let id = ids[i].expect("consigned");
        let outcome = loop {
            let poll = fed.client_poll(via, DN, id, DetailLevel::Tasks);
            fed.run_until(fed.now() + 10 * SEC);
            if let Some(resp) = fed.take_client_response(poll) {
                if let Some(o) = outcome_of(&resp) {
                    if o.status.is_terminal() {
                        break o.clone();
                    }
                }
            }
            assert!(fed.now() < deadline, "job {i} never terminated");
        };
        assert!(
            outcome.status.is_success(),
            "job {i} failed under faults: {outcome:?}"
        );
        outcomes.push(outcome.to_der());
    }
    (outcomes, fed)
}

fn assert_identical_to_baseline(class: &str, plan_for: impl Fn(u64) -> FaultPlan) {
    for seed in SEEDS {
        let (baseline, _) = run_workload(seed, None);
        let plan = plan_for(seed);
        let (faulted, fed) = run_workload(seed, Some(&plan));
        assert_eq!(
            baseline, faulted,
            "{class}: outcomes diverged from fault-free run at seed {seed}"
        );
        drop(fed);
    }
}

#[test]
fn soak_drop_outcomes_byte_identical() {
    for seed in SEEDS {
        let (baseline, _) = run_workload(seed, None);
        let plan = FaultPlan::new(seed ^ 0xD0).drop_everywhere(0.25, 0, SimTime::MAX);
        let (faulted, fed) = run_workload(seed, Some(&plan));
        assert_eq!(baseline, faulted, "drop: diverged at seed {seed}");
        assert!(fed.retries > 0, "drops must force retries");
        assert!(
            fed.client_telemetry()
                .metrics_snapshot()
                .counter("federation.retries")
                > 0
        );
    }
}

#[test]
fn soak_duplicate_outcomes_byte_identical() {
    for seed in SEEDS {
        let (baseline, _) = run_workload(seed, None);
        let plan = FaultPlan::new(seed ^ 0xD7).duplicate_everywhere(0.35, 0, SimTime::MAX);
        let (faulted, fed) = run_workload(seed, Some(&plan));
        assert_eq!(baseline, faulted, "duplicate: diverged at seed {seed}");
        let (dups, _) = fed.seq_stats();
        assert!(dups > 0, "duplicates must be observed (and absorbed)");
    }
}

#[test]
fn soak_reorder_outcomes_byte_identical() {
    assert_identical_to_baseline("reorder", |seed| {
        FaultPlan::new(seed ^ 0x12).reorder_everywhere(0.35, 2 * SEC, 0, SimTime::MAX)
    });
}

#[test]
fn soak_transient_partition_outcomes_byte_identical() {
    // RUS drops off the grid from t=30s to t=2min — squarely across the
    // multi-site job's sub-consign and outcome-delivery window.
    assert_identical_to_baseline("partition", |seed| {
        FaultPlan::new(seed ^ 0x3A).partition("RUS", 30 * SEC, 2 * MINUTE)
    });
}

#[test]
fn soak_crash_restart_outcomes_byte_identical() {
    // FZJ's server dies mid-workload and reboots from its journal; the
    // recovered NJS re-dispatches, peers deduplicate, outcomes match.
    assert_identical_to_baseline("crash-restart", |seed| {
        FaultPlan::new(seed ^ 0x55).crash_restart("FZJ", 40 * SEC, 2 * MINUTE)
    });
}

#[test]
fn soak_replays_are_deterministic() {
    // The same seed and plan replay to the same bytes — the property the
    // whole suite rests on.
    let plan = FaultPlan::new(99)
        .drop_everywhere(0.2, 0, SimTime::MAX)
        .duplicate_everywhere(0.2, 0, SimTime::MAX)
        .reorder_everywhere(0.2, SEC, 0, SimTime::MAX);
    let (a, _) = run_workload(5, Some(&plan));
    let (b, _) = run_workload(5, Some(&plan));
    assert_eq!(a, b);
}

#[test]
fn permanent_partition_retargets_bounded_and_flags_dead_site() {
    let mut fed = Federation::german_deployment(seeded(3));
    fed.register_user(DN, "alice");
    fed.enable_telemetry(3);
    fed.apply_fault_plan(&FaultPlan::new(3).partition("RUS", 0, SimTime::MAX));

    // A job whose sub-AJO targets the dead site reaches a terminal
    // outcome within the retry envelope — it must not hang. The broker
    // retargets the RUS part to the next admissible site once the retry
    // budget declares RUS dark, so the job even succeeds.
    let mut sub = AbstractJob::new("never", VsiteAddress::new("RUS", "VPP"), attrs());
    sub.nodes.push(script_node(1, "x", "sleep 5\n"));
    let mut job = AbstractJob::new("doomed", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((ActionId(1), GraphNode::SubJob(sub)));
    job.nodes.push(script_node(2, "local", "sleep 5\n"));
    let (_, outcome, done_at) = fed
        .submit_and_wait("FZJ", job, DN, 5 * SEC, HOUR)
        .expect("terminal outcome within the hour");
    assert!(outcome.status.is_success(), "{outcome:?}");
    assert!(outcome.child(ActionId(1)).unwrap().status().is_success());
    assert!(outcome.child(ActionId(2)).unwrap().status().is_success());
    assert!(done_at < HOUR, "the verdict must be bounded");

    // Drive further retry exhaustions to open the circuit, then confirm
    // the aggregated grid view stays complete — every Usite present —
    // with the dead site as a flagged row the JMC renders as a banner.
    for _ in 0..2 {
        let poll = fed.client_poll("RUS", DN, JobId(1), DetailLevel::JobOnly);
        fed.run_until(fed.now() + 10 * MINUTE);
        assert!(matches!(
            fed.take_client_response(poll),
            Some(Response::Error(ref m)) if m.contains("unreachable")
        ));
    }
    assert_eq!(fed.quarantined_sites(), vec!["RUS".to_string()]);

    let corr = fed.client_monitor("FZJ", DN, true);
    fed.run_until(fed.now() + 10 * MINUTE);
    let resp = fed.take_client_response(corr).expect("grid view answered");
    let view = grid_view_of(&resp).expect("grid view").clone();
    assert_eq!(view.sites.len(), 6, "dead site must not shrink the view");
    let rus = view.site("RUS").expect("RUS row");
    assert!(rus.health.is_unreachable(), "{:?}", rus.health);
    assert!(render_grid(&view).contains("UNREACHABLE"));
}

#[test]
fn chaos_replays_alert_log_byte_identical() {
    // The SLO engine is a pure function of sim time and the merged
    // snapshot: replaying the same seed and fault plan must reproduce
    // the alert log byte for byte, fires and clears included.
    fn run(seed: u64) -> (Vec<u8>, usize) {
        let mut fed = Federation::german_deployment(seeded(seed));
        fed.register_user(DN, "alice");
        fed.attach_stores();
        fed.enable_telemetry(seed);
        // Half the grid goes dark mid-run (>25% unreachable fires the
        // burn-rate rule whichever site is the tree root), with message
        // drops layered on top, then heals so the alert clears too.
        let plan = FaultPlan::new(seed ^ 0xA1)
            .drop_everywhere(0.15, 0, SimTime::MAX)
            .partition("RUS", 2 * MINUTE, 25 * MINUTE)
            .partition("DWD", 2 * MINUTE, 25 * MINUTE)
            .partition("ZIB", 2 * MINUTE, 25 * MINUTE);
        fed.apply_fault_plan(&plan);

        let mut job = AbstractJob::new("soak", VsiteAddress::new("FZJ", "T3E"), attrs());
        job.nodes.push(script_node(1, "t", "sleep 30\n"));
        let corr = fed.client_submit("FZJ", job, DN);
        fed.run_until(45 * MINUTE);
        let _ = fed.take_client_response(corr);
        (fed.alert_log_der(), fed.alert_log().len())
    }
    for seed in SEEDS {
        let (a, fired) = run(seed);
        let (b, _) = run(seed);
        assert_eq!(a, b, "alert log diverged on replay at seed {seed}");
        assert!(
            fired >= 2,
            "seed {seed}: expected at least a fire and a clear, got {fired}"
        );
    }
}

#[test]
fn njs_killed_mid_retry_resumes_peer_work_from_journal() {
    let mut fed = Federation::german_deployment(seeded(17));
    fed.register_user(DN, "alice");
    fed.attach_stores();

    // RUS is unreachable, so FZJ's sub-consign sits in its retry loop.
    fed.set_partitioned("RUS", true);
    let mut sub = AbstractJob::new("remote", VsiteAddress::new("RUS", "VPP"), attrs());
    sub.nodes.push(script_node(1, "r", "sleep 10\n"));
    let mut job = AbstractJob::new("resumed", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((ActionId(1), GraphNode::SubJob(sub)));
    let corr = fed.client_submit("FZJ", job, DN);
    fed.run_until(30 * SEC);
    let Some(Response::Consigned { job: id }) = fed.take_client_response(corr) else {
        panic!("no consign ack");
    };

    // Kill FZJ while the retry is pending, heal the partition, reboot.
    fed.crash_site("FZJ");
    fed.set_partitioned("RUS", false);
    fed.run_until(fed.now() + MINUTE);
    fed.restart_site("FZJ");

    // The recovered NJS re-dispatches the remote node from its journal;
    // RUS deduplicates by sub-job identity; the job completes.
    let deadline = 2 * HOUR;
    let outcome = loop {
        let poll = fed.client_poll("FZJ", DN, id, DetailLevel::Tasks);
        fed.run_until(fed.now() + 15 * SEC);
        if let Some(resp) = fed.take_client_response(poll) {
            if let Some(o) = outcome_of(&resp) {
                if o.status.is_terminal() {
                    break o.clone();
                }
            }
        }
        assert!(fed.now() < deadline, "resumed job never terminated");
    };
    assert!(outcome.status.is_success(), "{outcome:?}");
    assert!(matches!(
        outcome.child(ActionId(1)),
        Some(OutcomeNode::Job(j)) if j.status.is_success()
    ));
}

/// A config with just the seed set.
fn seeded(seed: u64) -> FederationConfig {
    FederationConfig {
        seed,
        ..FederationConfig::default()
    }
}

// --------------------------------------------------------------------
// E15: the chunked data plane under chaos. A multi-chunk file streams
// FZJ → DWD while faults hit the stream itself; the delivered bytes
// must be identical to the fault-free run, and recovery must *resume*
// from the receiver's journaled watermark, not restart from chunk zero.

/// Multi-chunk payload: 64 chunks at the default 64 KiB chunk size.
const TRANSFER_BYTES: u64 = 64 * unicore_dataplane::DEFAULT_CHUNK_SIZE as u64;

/// Produce a big file at FZJ, then stream it to DWD's incoming area.
fn transfer_job() -> AbstractJob {
    let mut job = AbstractJob::new("streamer", VsiteAddress::new("FZJ", "T3E"), attrs());
    let script = format!("sleep 10\nproduce big.dat {TRANSFER_BYTES}\n");
    job.nodes.push(script_node(1, "make", &script));
    job.nodes.push((
        ActionId(2),
        GraphNode::Task(AbstractTask {
            name: "ship".into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::File(FileKind::Transfer {
                uspace_name: "big.dat".into(),
                to_vsite: VsiteAddress::new("DWD", "SX4"),
                dest_name: "big.dat".into(),
            }),
        }),
    ));
    job.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["big.dat".into()],
    });
    job
}

/// Runs the streaming workload under `plan` (fault-free when `None`),
/// asserts terminal success, and returns the bytes that landed at DWD
/// plus the finished federation for counter assertions.
fn run_transfer(seed: u64, plan: Option<&FaultPlan>) -> (Vec<u8>, Federation) {
    let mut fed = Federation::german_deployment(FederationConfig {
        seed,
        ..FederationConfig::default()
    });
    fed.enable_telemetry(seed);
    fed.register_user(DN, "alice");
    fed.attach_stores();
    if let Some(plan) = plan {
        fed.apply_fault_plan(plan);
    }
    let corr = fed.client_submit("FZJ", transfer_job(), DN);
    let deadline = 4 * HOUR;
    let id = loop {
        fed.run_until(fed.now() + 5 * SEC);
        match fed.take_client_response(corr) {
            Some(Response::Consigned { job }) => break job,
            Some(other) => panic!("consign failed: {other:?}"),
            None => {}
        }
        assert!(fed.now() < deadline, "consign ack never arrived");
    };
    let outcome = loop {
        let poll = fed.client_poll("FZJ", DN, id, DetailLevel::Tasks);
        fed.run_until(fed.now() + 10 * SEC);
        if let Some(resp) = fed.take_client_response(poll) {
            if let Some(o) = outcome_of(&resp) {
                if o.status.is_terminal() {
                    break o.clone();
                }
            }
        }
        assert!(fed.now() < deadline, "transfer job never terminated");
    };
    assert!(outcome.status.is_success(), "transfer failed: {outcome:?}");
    let delivered = fed
        .server("DWD")
        .expect("DWD alive at the end")
        .njs()
        .vsite("SX4")
        .unwrap()
        .vspace
        .xspace_ref()
        .read_raw(&format!("{}big.dat", unicore_njs::INCOMING_PREFIX))
        .expect("file at destination")
        .data
        .clone();
    (delivered, fed)
}

/// First instant (on a fault-free run) at which DWD has the incoming
/// transfer open — the anchor for injecting faults mid-stream. The run
/// up to this point is deterministic per seed, so the faulted replay
/// reaches the same moment in the same state.
fn probe_stream_start(seed: u64) -> SimTime {
    let mut fed = Federation::german_deployment(FederationConfig {
        seed,
        ..FederationConfig::default()
    });
    fed.register_user(DN, "alice");
    fed.attach_stores();
    let corr = fed.client_submit("FZJ", transfer_job(), DN);
    let mut id = None;
    loop {
        fed.run_until(fed.now() + SEC / 10);
        if id.is_none() {
            if let Some(Response::Consigned { job }) = fed.take_client_response(corr) {
                id = Some(job);
            }
        }
        if let Some(job) = id {
            let dwd = fed.server("DWD").expect("DWD never crashes here");
            if dwd
                .njs()
                .incoming_progress("FZJ", job, ActionId(2))
                .is_some()
            {
                return fed.now();
            }
        }
        assert!(fed.now() < HOUR, "stream never started");
    }
}

#[test]
fn dataplane_drop_delivers_byte_identical() {
    for seed in SEEDS {
        let (baseline, _) = run_transfer(seed, None);
        assert_eq!(baseline.len() as u64, TRANSFER_BYTES);
        let plan = FaultPlan::new(seed ^ 0xE5).drop_everywhere(0.25, 0, SimTime::MAX);
        let (faulted, fed) = run_transfer(seed, Some(&plan));
        assert_eq!(
            unicore_crypto::sha256(&baseline),
            unicore_crypto::sha256(&faulted),
            "drop: checksum diverged at seed {seed}"
        );
        assert_eq!(baseline, faulted, "drop: bytes diverged at seed {seed}");
        assert!(fed.retries > 0, "drops must force retries");
    }
}

#[test]
fn dataplane_partition_mid_stream_resumes_byte_identical() {
    for seed in SEEDS {
        let t0 = probe_stream_start(seed);
        let (baseline, _) = run_transfer(seed, None);
        // DWD vanishes 200 ms into the stream (a 4 MiB file needs >1 s
        // of link time, so chunks are mid-flight) and stays gone for a
        // minute — well inside the per-chunk retry budget.
        let from = t0 + SEC / 5;
        let plan = FaultPlan::new(seed ^ 0xE6).partition("DWD", from, from + MINUTE);
        let (faulted, _) = run_transfer(seed, Some(&plan));
        assert_eq!(
            baseline, faulted,
            "partition: bytes diverged at seed {seed}"
        );
    }
}

#[test]
fn dataplane_receiver_crash_restart_resumes_byte_identical() {
    for seed in SEEDS {
        let t0 = probe_stream_start(seed);
        let (baseline, _) = run_transfer(seed, None);
        // The receiver dies half a second into the stream and reboots
        // from its journal 90 s later.
        let crash_at = t0 + SEC / 2;
        let plan = FaultPlan::new(seed ^ 0xE7).crash_restart("DWD", crash_at, crash_at + 90 * SEC);
        let (faulted, fed) = run_transfer(seed, Some(&plan));
        assert_eq!(
            baseline, faulted,
            "receiver crash: bytes diverged at seed {seed}"
        );
        // Resume, not restart: the sender never re-pushed the whole
        // file. A from-scratch restart would need at least 2× the chunk
        // count; a watermark resume re-pushes only the unacked tail.
        let sent = fed
            .server("FZJ")
            .unwrap()
            .telemetry()
            .metrics_snapshot()
            .counter("dataplane.chunks.sent");
        let chunks = TRANSFER_BYTES / unicore_dataplane::DEFAULT_CHUNK_SIZE as u64;
        assert!(
            sent >= chunks && sent < 2 * chunks,
            "seed {seed}: {sent} chunks sent for a {chunks}-chunk file"
        );
    }
}

#[test]
fn dataplane_sender_crash_restart_resumes_from_watermark() {
    for seed in SEEDS {
        let t0 = probe_stream_start(seed);
        let (baseline, _) = run_transfer(seed, None);
        // The *sender* dies mid-stream. Its in-memory sender state is
        // gone; recovery re-dispatches the transfer node, the fresh
        // offer reaches DWD, and DWD answers with its journaled
        // watermark — so the stream continues instead of starting over.
        let crash_at = t0 + SEC / 2;
        let plan = FaultPlan::new(seed ^ 0xE8).crash_restart("FZJ", crash_at, crash_at + 90 * SEC);
        let (faulted, fed) = run_transfer(seed, Some(&plan));
        assert_eq!(
            baseline, faulted,
            "sender crash: bytes diverged at seed {seed}"
        );
        let resumes = fed.server("DWD").unwrap().njs().transfer_resumes();
        assert!(
            resumes > 0,
            "seed {seed}: receiver never answered a resume offer"
        );
    }
}
