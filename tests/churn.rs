//! Churn/abuse soak suite for the gateway front door (E19): deterministic
//! federated workloads replayed while the front door is hammered —
//! reconnect storms over resumable sessions, ticket-expiry boundaries,
//! revocation mid-poll, and rate-limit bursts — asserting the terminal
//! job outcomes are *byte-for-byte identical* to the churn-free run and
//! that every rejected request is audited exactly once. Abuse may slow
//! the grid down or turn abusers away; it must never change what the
//! grid computes for everyone else.

use std::sync::Arc;
use std::time::Duration;
use unicore::ajo::*;
use unicore::protocol::{outcome_of, Request, Response};
use unicore::{Federation, FederationConfig};
use unicore_certs::{
    CertificateAuthority, DistinguishedName, Identity, KeyUsage, TrustStore, Validity,
};
use unicore_codec::DerCodec;
use unicore_crypto::CryptoRng;
use unicore_gateway::{FrontDoor, FrontDoorError, RateLimitConfig};
use unicore_sim::{HOUR, SEC};
use unicore_simnet::wire_pair;
use unicore_telemetry::Telemetry;
use unicore_transport::{client_handshake, SecureChannel, SessionCache, TransportError};

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=churn";
const ABUSER: &str = "C=DE, O=FZJ, OU=ZAM, CN=abuser";

/// The soak seeds: every churn shape must hold for all of them.
const SEEDS: [u64; 3] = [1, 7, 23];

fn attrs() -> UserAttributes {
    UserAttributes::new(DN, "users")
}

fn script_node(id: u64, name: &str, script: &str) -> (ActionId, GraphNode) {
    (
        ActionId(id),
        GraphNode::Task(AbstractTask {
            name: name.into(),
            resources: ResourceRequest::minimal().with_run_time(3_600),
            kind: TaskKind::Execute(ExecuteKind::Script {
                script: script.into(),
            }),
        }),
    )
}

/// The workload whose outcomes must be churn-immune: a two-task pipeline
/// at FZJ and an independent job at ZIB.
fn workload() -> Vec<(&'static str, AbstractJob)> {
    let mut pipeline = AbstractJob::new("pipeline", VsiteAddress::new("FZJ", "T3E"), attrs());
    pipeline
        .nodes
        .push(script_node(1, "make", "sleep 30\nproduce out.bin 2048\n"));
    pipeline.nodes.push(script_node(2, "check", "sleep 10\n"));
    pipeline.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["out.bin".into()],
    });
    let mut solo = AbstractJob::new("solo", VsiteAddress::new("ZIB", "T3E"), attrs());
    solo.nodes.push(script_node(1, "t", "sleep 20\n"));
    vec![("FZJ", pipeline), ("ZIB", solo)]
}

/// Runs the workload to terminal outcomes, invoking `churn` once per
/// poll round so abuse traffic interleaves with real polling. Returns
/// the outcome DERs in submission order plus the finished federation.
fn run_workload(
    seed: u64,
    mut churn: impl FnMut(&mut Federation, usize),
) -> (Vec<Vec<u8>>, Federation) {
    let mut fed = Federation::german_deployment(FederationConfig {
        seed,
        ..FederationConfig::default()
    });
    fed.register_user(DN, "alice");
    fed.register_user(ABUSER, "mallory");
    fed.attach_stores();

    let submissions = workload();
    let corrs: Vec<(String, u64)> = submissions
        .into_iter()
        .map(|(via, job)| (via.to_string(), fed.client_submit(via, job, DN)))
        .collect();

    let deadline = 4 * HOUR;
    let mut ids: Vec<Option<JobId>> = vec![None; corrs.len()];
    while ids.iter().any(Option::is_none) {
        fed.run_until(fed.now() + 5 * SEC);
        for (i, (_, corr)) in corrs.iter().enumerate() {
            if ids[i].is_none() {
                match fed.take_client_response(*corr) {
                    Some(Response::Consigned { job }) => ids[i] = Some(job),
                    Some(other) => panic!("consign {i} failed: {other:?}"),
                    None => {}
                }
            }
        }
        assert!(fed.now() < deadline, "consign acks never arrived");
    }

    let mut outcomes = Vec::new();
    let mut round = 0usize;
    for (i, (via, _)) in corrs.iter().enumerate() {
        let id = ids[i].expect("consigned");
        let outcome = loop {
            churn(&mut fed, round);
            round += 1;
            let poll = fed.client_poll(via, DN, id, DetailLevel::Tasks);
            fed.run_until(fed.now() + 10 * SEC);
            if let Some(resp) = fed.take_client_response(poll) {
                if let Some(o) = outcome_of(&resp) {
                    if o.status.is_terminal() {
                        break o.clone();
                    }
                }
            }
            assert!(fed.now() < deadline, "job {i} never terminated");
        };
        assert!(outcome.status.is_success(), "job {i} failed: {outcome:?}");
        outcomes.push(outcome.to_der());
    }
    (outcomes, fed)
}

/// Drains `corrs` to responses, counting refused (Error) vs served.
fn drain(fed: &mut Federation, corrs: &[u64], reason: &str) -> (usize, usize) {
    let mut refused = 0;
    let mut served = 0;
    let deadline = fed.now() + HOUR;
    let mut open: Vec<u64> = corrs.to_vec();
    while !open.is_empty() {
        fed.run_until(fed.now() + 5 * SEC);
        open.retain(|&corr| match fed.take_client_response(corr) {
            Some(Response::Error(m)) => {
                assert!(m.contains(reason), "unexpected refusal: {m}");
                refused += 1;
                false
            }
            Some(_) => {
                served += 1;
                false
            }
            None => true,
        });
        assert!(fed.now() < deadline, "abuse responses never drained");
    }
    (refused, served)
}

/// Audit lines for `dn` at `usite` that record a refusal with `reason`.
fn audit_refusals(fed: &Federation, usite: &str, dn: &str, reason: &str) -> usize {
    fed.server(usite)
        .unwrap()
        .gateway()
        .audit()
        .iter()
        .filter(|r| r.dn == dn && !r.accepted && r.detail.contains(reason))
        .count()
}

// --------------------------------------------------------------------
// Transport-level churn rig: a FrontDoor hammered with real handshakes.

struct Rig {
    door: FrontDoor,
    trust: Arc<TrustStore>,
    users: Vec<Arc<Identity>>,
    caches: Vec<SessionCache>,
    telemetry: Telemetry,
}

fn rig(seed: u64, users: usize, ticket_ttl: u64) -> Rig {
    let mut rng = CryptoRng::from_u64(seed ^ 0xF00D);
    let mut ca = CertificateAuthority::new_root(
        DistinguishedName::new("DE", "FZJ", "ZAM", "UNICORE CA"),
        Validity::starting_at(0, 1_000_000),
        512,
        &mut rng,
    );
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone()).unwrap();
    let trust = Arc::new(trust);
    let mk = |ca: &mut CertificateAuthority, rng: &mut CryptoRng, cn: &str, usage: KeyUsage| {
        ca.issue_identity(
            DistinguishedName::new("DE", "FZJ", "ZAM", cn),
            usage,
            Validity::starting_at(0, 500_000),
            rng,
        )
        .unwrap()
    };
    let gw = mk(&mut ca, &mut rng, "fzj-gw", KeyUsage::server());
    let users: Vec<Arc<Identity>> = (0..users)
        .map(|i| {
            Arc::new(mk(
                &mut ca,
                &mut rng,
                &format!("user-{i}"),
                KeyUsage::user(),
            ))
        })
        .collect();
    let caches = (0..users.len()).map(|_| SessionCache::new(8)).collect();
    let mut door = FrontDoor::new(gw, trust.clone(), 64);
    door.set_ticket_ttl(ticket_ttl);
    let telemetry = Telemetry::collecting(seed);
    door.set_telemetry(telemetry.clone());
    Rig {
        door,
        trust,
        users,
        caches,
        telemetry,
    }
}

impl Rig {
    /// One connect/disconnect cycle for user `u` at sim-second `now`.
    fn connect(
        &mut self,
        u: usize,
        now: u64,
        seed: u64,
    ) -> (
        Result<SecureChannel, TransportError>,
        Result<unicore_gateway::FrontDoorConn, FrontDoorError>,
    ) {
        let (cw, sw) = wire_pair();
        let cep = unicore_transport::Endpoint {
            identity: self.users[u].clone(),
            intermediates: Vec::new(),
            trust: self.trust.clone(),
            now,
            timeout: Duration::from_secs(5),
            ticket_ttl: unicore_transport::DEFAULT_TICKET_TTL,
            telemetry: Telemetry::disabled(),
        };
        let door = &mut self.door;
        let cache = &self.caches[u];
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                let mut rng = CryptoRng::from_u64(seed).fork("server");
                door.accept(sw, now, &mut rng)
            });
            let mut rng = CryptoRng::from_u64(seed).fork("client");
            let client = client_handshake(cw, &cep, "FZJ", cache, &mut rng);
            (client, server.join().unwrap())
        })
    }

    fn counter(&self, name: &str) -> u64 {
        self.telemetry.metrics_snapshot().counter(name)
    }
}

// --------------------------------------------------------------------
// Shape 1: reconnect storm.

#[test]
fn soak_reconnect_storm_outcomes_byte_identical() {
    for seed in SEEDS {
        let (baseline, _) = run_workload(seed, |_, _| {});

        // The storm: 4 identities, 40 connect/disconnect cycles, while
        // an abuser floods the federation with List requests each round.
        let mut r = rig(seed, 4, 3_600);
        let mut storm_seed = seed * 1000;
        let mut cycles = 0u64;
        let mut abuse = Vec::new();
        let (churned, mut fed) = run_workload(seed, |fed, round| {
            for _ in 0..3 {
                abuse.push(fed.client_request("FZJ", ABUSER, Request::List));
            }
            for u in 0..4 {
                storm_seed += 1;
                cycles += 1;
                let now = 100 + round as u64;
                let (c, s) = r.connect(u, now, storm_seed);
                let conn = s.expect("storm handshake refused");
                assert!(c.is_ok());
                r.door.disconnect(conn);
            }
        });
        assert_eq!(
            baseline, churned,
            "reconnect storm: outcomes diverged at seed {seed}"
        );

        // The storm ran mostly on the abbreviated path: one full
        // handshake per identity, everything else resumed.
        let full = r.counter("gateway.sessions.full");
        let resumed = r.counter("gateway.sessions.resumed");
        assert!(cycles >= 16, "storm too short to prove anything: {cycles}");
        assert_eq!(full, 4, "seed {seed}: one full handshake per identity");
        assert_eq!(
            resumed,
            cycles - 4,
            "seed {seed}: every reconnect after the first must resume"
        );
        assert_eq!(r.counter("gateway.sessions.failed"), 0);

        // The abuser was served (no limiter installed), never refused.
        let (refused, served) = drain(&mut fed, &abuse, "");
        assert_eq!(refused, 0);
        assert_eq!(served, abuse.len());
    }
}

// --------------------------------------------------------------------
// Shape 2: ticket-expiry boundary.

#[test]
fn soak_ticket_expiry_boundary_falls_back_then_recovers() {
    for seed in SEEDS {
        let (baseline, _) = run_workload(seed, |_, _| {});

        // Tickets live 50 sim-seconds. Reconnects ride the resumed path
        // up to (exclusive) the boundary, fall back to full exactly at
        // it, and resume again on the rotated ticket.
        let mut r = rig(seed, 1, 50);
        let (c, s) = r.connect(0, 100, seed * 7 + 1); // full; ticket@100
        assert!(!c.unwrap().resumed());
        r.door.disconnect(s.unwrap());
        let (c, s) = r.connect(0, 149, seed * 7 + 2); // last valid instant
        assert!(c.unwrap().resumed(), "seed {seed}: in-window resume");
        r.door.disconnect(s.unwrap());
        let (c, s) = r.connect(0, 199, seed * 7 + 3); // 149+50: expired
        assert!(
            !c.unwrap().resumed(),
            "seed {seed}: boundary must fall back to full"
        );
        r.door.disconnect(s.unwrap());
        let (c, s) = r.connect(0, 200, seed * 7 + 4); // rotated ticket
        assert!(c.unwrap().resumed(), "seed {seed}: recovery after fallback");
        r.door.disconnect(s.unwrap());
        assert_eq!(r.counter("gateway.sessions.full"), 2);
        assert_eq!(r.counter("gateway.sessions.resumed"), 2);

        // The boundary dance changes nothing for the workload.
        let (churned, _) = run_workload(seed, |_, _| {});
        assert_eq!(
            baseline, churned,
            "ticket expiry: outcomes diverged at seed {seed}"
        );
    }
}

// --------------------------------------------------------------------
// Shape 3: revocation mid-poll.

#[test]
fn soak_revocation_mid_poll_outcomes_byte_identical_and_audited() {
    for seed in SEEDS {
        let (baseline, _) = run_workload(seed, |_, _| {});

        let mut abuse = Vec::new();
        let (churned, mut fed) = run_workload(seed, |fed, round| {
            if round == 2 {
                // The CA pulls the abuser's credential while their
                // polls are in flight.
                fed.revoke_user(ABUSER);
            }
            for _ in 0..2 {
                abuse.push(fed.client_request("FZJ", ABUSER, Request::List));
            }
        });
        assert_eq!(
            baseline, churned,
            "revocation: outcomes diverged at seed {seed}"
        );

        // Requests sent before the revocation were served; everything
        // after is refused — and each refusal is audited exactly once.
        let (refused, served) = drain(&mut fed, &abuse, "certificate revoked");
        assert!(served >= 2, "pre-revocation polls must have been served");
        assert!(refused > 0, "post-revocation polls must be refused");
        assert_eq!(
            audit_refusals(&fed, "FZJ", ABUSER, "certificate revoked"),
            refused,
            "seed {seed}: every refused request audited exactly once"
        );

        // Reinstatement restores service.
        fed.reinstate_user(ABUSER);
        let corr = fed.client_request("FZJ", ABUSER, Request::List);
        let (refused, served) = drain(&mut fed, &[corr], "certificate revoked");
        assert_eq!((refused, served), (0, 1), "seed {seed}: reinstated");
    }
}

// --------------------------------------------------------------------
// Shape 4: rate-limit burst, then recovery.

#[test]
fn soak_rate_limit_burst_then_recovery() {
    for seed in SEEDS {
        let (baseline, _) = run_workload(seed, |_, _| {});

        let mut abuse = Vec::new();
        let (churned, mut fed) = run_workload(seed, |fed, round| {
            if round == 0 {
                // Generous default so the real user never notices;
                // the abuser's tenant budget is 3 requests.
                fed.set_rate_limit(RateLimitConfig::new(1, 100_000).with_tenant_burst(ABUSER, 3));
            }
            if round == 1 {
                // The burst: 20 requests in one round.
                for _ in 0..20 {
                    abuse.push(fed.client_request("FZJ", ABUSER, Request::List));
                }
            }
        });
        assert_eq!(
            baseline, churned,
            "rate limit: outcomes diverged at seed {seed}"
        );

        let (refused, served) = drain(&mut fed, &abuse, "rate limit exceeded");
        assert!(served >= 3, "the burst budget must be honoured");
        assert!(
            refused >= 10,
            "the burst must overrun, got {refused} refusals"
        );
        assert_eq!(refused + served, 20);
        assert_eq!(
            audit_refusals(&fed, "FZJ", ABUSER, "rate limit exceeded"),
            refused,
            "seed {seed}: every refused request audited exactly once"
        );

        // Recovery: the bucket refills while the grid idles.
        fed.run_until(fed.now() + 30 * SEC);
        let corr = fed.client_request("FZJ", ABUSER, Request::List);
        let (refused, served) = drain(&mut fed, &[corr], "rate limit exceeded");
        assert_eq!((refused, served), (0, 1), "seed {seed}: recovered");
    }
}

// --------------------------------------------------------------------
// Determinism anchor: the same seed replays the same abuse decisions.

#[test]
fn soak_abuse_replays_are_deterministic() {
    fn run(seed: u64) -> (Vec<Vec<u8>>, usize) {
        let mut abuse = Vec::new();
        let (outcomes, mut fed) = run_workload(seed, |fed, round| {
            if round == 0 {
                fed.set_rate_limit(RateLimitConfig::new(1, 100_000).with_tenant_burst(ABUSER, 2));
            }
            abuse.push(fed.client_request("FZJ", ABUSER, Request::List));
        });
        let (refused, _) = drain(&mut fed, &abuse, "rate limit exceeded");
        (outcomes, refused)
    }
    let (a, ra) = run(5);
    let (b, rb) = run(5);
    assert_eq!(a, b, "outcomes diverged on replay");
    assert_eq!(ra, rb, "rate-limit decisions diverged on replay");
}
