//! Cross-tier trace propagation: one client request driving a
//! multi-site job must yield a single connected trace whose spans live
//! in three different collectors — the client (JPA/JMC tier), the entry
//! Usite's server, and the remote Usite the sub-job is forwarded to.
//!
//! The trace context travels only on the wire (the tagged trailing
//! element of every [`unicore::Envelope`]); the collectors never share
//! state, so connectedness here proves the NJS–NJS forwarding carries
//! the context end to end.

use std::collections::{HashMap, HashSet};
use unicore::{Federation, FederationConfig};
use unicore_ajo::{ResourceRequest, UserAttributes, VsiteAddress};
use unicore_client::JobPreparationAgent;
use unicore_resources::ResourceDirectory;
use unicore_sim::{HOUR, SEC};
use unicore_telemetry::{SpanId, SpanRecord, TraceId};

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=tracer";

/// A parent job at FZJ whose sub-job runs at ZIB, submitted through FZJ.
fn multi_site_job() -> unicore_ajo::AbstractJob {
    let jpa = JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new());
    let mut inner = jpa.new_job("remote part", VsiteAddress::new("ZIB", "T3E"));
    inner.script_task(
        "crunch",
        "sleep 30\nproduce out.bin 1024\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let mut outer = jpa.new_job("multi-site", VsiteAddress::new("FZJ", "T3E"));
    let prep = outer.script_task(
        "prep",
        "sleep 10\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let sub = outer.sub_job(inner);
    outer.after(prep, sub);
    outer.build().unwrap()
}

#[test]
fn federated_job_produces_one_connected_trace() {
    let mut fed = Federation::german_deployment(FederationConfig::default());
    fed.enable_telemetry(0xace);
    fed.register_user(DN, "tracer");

    let (_, outcome, _) = fed
        .submit_and_wait("FZJ", multi_site_job(), DN, 5 * SEC, HOUR)
        .expect("multi-site job completes");
    assert!(outcome.status.is_success(), "{outcome:?}");

    let client = fed.client_telemetry().finished_spans();
    let fzj = fed.server("FZJ").unwrap().telemetry().finished_spans();
    let zib = fed.server("ZIB").unwrap().telemetry().finished_spans();
    assert!(!client.is_empty(), "client recorded no spans");
    assert!(!fzj.is_empty(), "entry server recorded no spans");
    assert!(!zib.is_empty(), "remote server recorded no spans");

    // Every span at the remote Usite belongs to one single trace: the
    // only traffic ZIB ever saw was on the consign's behalf.
    let remote_traces: HashSet<TraceId> = zib.iter().map(|s| s.trace).collect();
    assert_eq!(
        remote_traces.len(),
        1,
        "remote site spans split across traces: {remote_traces:?}"
    );
    let trace = *remote_traces.iter().next().unwrap();

    // That trace is rooted at the client: exactly one client.request
    // span (the consign — polls and fetches are separate interactions).
    let roots: Vec<&SpanRecord> = client
        .iter()
        .filter(|s| s.trace == trace && s.parent.is_none())
        .collect();
    assert_eq!(roots.len(), 1, "expected one root: {roots:?}");
    assert_eq!(roots[0].name, "client.request");

    // The entry server worked inside the same trace (its own authn,
    // consign handling and job span), carried over the wire.
    let fzj_in_trace: Vec<&str> = fzj
        .iter()
        .filter(|s| s.trace == trace)
        .map(|s| s.name)
        .collect();
    for expected in ["server.request", "gateway.authorize", "njs.job"] {
        assert!(
            fzj_in_trace.contains(&expected),
            "entry server missing {expected} in trace: {fzj_in_trace:?}"
        );
    }

    // The remote site's whole pipeline ran under the forwarded context.
    let zib_names: Vec<&str> = zib.iter().map(|s| s.name).collect();
    for expected in [
        "server.request",
        "njs.job",
        "njs.incarnate",
        "batch.queue",
        "batch.run",
    ] {
        assert!(
            zib_names.contains(&expected),
            "remote server missing {expected}: {zib_names:?}"
        );
    }

    // Parent links all resolve inside the trace: walking up from any
    // span reaches the client root, across collector boundaries.
    let by_id: HashMap<SpanId, &SpanRecord> = client
        .iter()
        .chain(fzj.iter())
        .chain(zib.iter())
        .filter(|s| s.trace == trace)
        .map(|s| (s.span, s))
        .collect();
    for span in by_id.values() {
        let mut cur = *span;
        let mut hops = 0;
        while let Some(parent) = cur.parent {
            cur = by_id
                .get(&parent)
                .unwrap_or_else(|| panic!("span {} has dangling parent {parent}", cur.name));
            hops += 1;
            assert!(hops < 64, "parent cycle at {}", cur.name);
        }
        assert_eq!(
            cur.span, roots[0].span,
            "span {} does not chain to the client root",
            span.name
        );
    }

    // The sub-job's remote spans hang below the entry server's job span,
    // not beside it: ZIB's server.request parent is a span minted at FZJ.
    let zib_request = zib
        .iter()
        .find(|s| s.name == "server.request")
        .expect("checked above");
    let parent = zib_request.parent.expect("forwarded request has parent");
    assert!(
        fzj.iter().any(|s| s.span == parent),
        "remote request's parent span not found at the entry server"
    );
}

#[test]
fn monitoring_polls_stay_untraced() {
    // Head sampling: only the consign roots a trace. The dozens of
    // status polls the JMC sends while waiting must record nothing on
    // either side — watching a job is free — and every server span must
    // belong to the consign's single trace.
    let mut fed = Federation::german_deployment(FederationConfig::default());
    fed.enable_telemetry(7);
    fed.register_user(DN, "tracer");

    let jpa = JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new());
    let mut b = jpa.new_job("solo", VsiteAddress::new("FZJ", "T3E"));
    b.script_task(
        "t",
        "sleep 10\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let (_, outcome, _) = fed
        .submit_and_wait("FZJ", b.build().unwrap(), DN, 5 * SEC, HOUR)
        .expect("completes");
    assert!(outcome.status.is_success());

    let client = fed.client_telemetry().finished_spans();
    assert_eq!(
        client.len(),
        1,
        "only the consign should span: {:?}",
        client.iter().map(|s| s.name).collect::<Vec<_>>()
    );
    assert_eq!(client[0].name, "client.request");

    let fzj = fed.server("FZJ").unwrap().telemetry().finished_spans();
    let traces: HashSet<TraceId> = fzj.iter().map(|s| s.trace).collect();
    assert_eq!(
        traces,
        HashSet::from([client[0].trace]),
        "server spans leaked outside the consign trace"
    );
    let polls = fzj.iter().filter(|s| s.name == "server.request").count();
    assert_eq!(polls, 1, "poll requests must not be spanned");
}
