//! Cross-crate integration: JPA → federation → NJS → batch → JMC, the
//! complete life of a UNICORE job.

use unicore::protocol::{outcome_of, Response};
use unicore::{Federation, FederationConfig};
use unicore_ajo::{
    ControlOp, DetailLevel, OutcomeNode, ResourceRequest, UserAttributes, VsiteAddress,
};
use unicore_client::{collect_outputs, render, status_rows, JobPreparationAgent};
use unicore_resources::ResourceDirectory;
use unicore_sim::{HOUR, MINUTE, SEC};

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=endtoend";

fn fed() -> Federation {
    let mut fed = Federation::german_deployment(FederationConfig::default());
    fed.register_user(DN, "e2e");
    fed
}

fn jpa() -> JobPreparationAgent {
    JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new())
}

#[test]
fn jpa_built_job_runs_and_jmc_renders() {
    let mut fed = fed();
    let jpa = jpa();
    let mut b = jpa.new_job("rendered", VsiteAddress::new("FZJ", "T3E"));
    let make = b.script_task(
        "make data",
        "sleep 30\nproduce out.bin 4096\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let check = b.script_task(
        "check data",
        "echo checking\nsleep 10\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    b.after_with_files(make, check, vec!["out.bin".into()]);
    let ajo = b.build().unwrap();

    let (_, outcome, _) = fed
        .submit_and_wait("FZJ", ajo.clone(), DN, 5 * SEC, HOUR)
        .expect("completes");
    assert!(outcome.status.is_success());

    let tree = render(&status_rows(&ajo, &outcome));
    assert!(tree.contains("[+] rendered"));
    assert!(tree.contains("[+] make data"));
    assert!(tree.contains("[+] check data"));

    let outputs = collect_outputs(&ajo, &outcome);
    assert_eq!(outputs.len(), 2);
    assert_eq!(outputs[1].stdout, b"checking\n");
}

#[test]
fn resubmission_after_modification() {
    let mut fed = fed();
    let jpa = jpa();
    let mut b = jpa.new_job("v1", VsiteAddress::new("ZIB", "T3E"));
    b.script_task(
        "step1",
        "sleep 5\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let v1 = b.build().unwrap();
    let (_, o1, _) = fed
        .submit_and_wait("ZIB", v1.clone(), DN, 5 * SEC, HOUR)
        .unwrap();
    assert!(o1.status.is_success());

    // Load the old job, add a step, resubmit (§5.7's JPA functions).
    let mut b2 = jpa.load_job(v1);
    let extra = b2.script_task(
        "step2",
        "sleep 5\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    b2.after(unicore_ajo::ActionId(1), extra);
    let v2 = b2.build().unwrap();
    let (_, o2, _) = fed.submit_and_wait("ZIB", v2, DN, 5 * SEC, HOUR).unwrap();
    assert!(o2.status.is_success());
    assert_eq!(o2.children.len(), 2);
}

#[test]
fn users_cannot_see_each_others_jobs() {
    let mut fed = Federation::german_deployment(FederationConfig::default());
    let alice = "C=DE, O=A, OU=A, CN=alice";
    let bob = "C=DE, O=B, OU=B, CN=bob";
    fed.register_user(alice, "alice");
    fed.register_user(bob, "bob");

    let mk = |dn: &str| {
        let jpa =
            JobPreparationAgent::new(UserAttributes::new(dn, "users"), ResourceDirectory::new());
        let mut b = jpa.new_job("private", VsiteAddress::new("FZJ", "T3E"));
        b.script_task(
            "t",
            "sleep 1000\n",
            ResourceRequest::minimal().with_run_time(3_600),
        );
        b.build().unwrap()
    };
    let ca = fed.client_submit("FZJ", mk(alice), alice);
    let cb = fed.client_submit("FZJ", mk(bob), bob);
    fed.run_until(2 * MINUTE);
    let Some(Response::Consigned { job: job_a }) = fed.take_client_response(ca) else {
        panic!()
    };
    let Some(Response::Consigned { job: job_b }) = fed.take_client_response(cb) else {
        panic!()
    };

    // Bob polls Alice's job: refused.
    let poll = fed.client_poll("FZJ", bob, job_a, DetailLevel::Tasks);
    fed.run_until(fed.now() + MINUTE);
    assert!(matches!(
        fed.take_client_response(poll),
        Some(Response::Error(_))
    ));
    // Bob cannot abort Alice's job either.
    let ctl = fed.client_control("FZJ", bob, job_a, ControlOp::Abort);
    fed.run_until(fed.now() + MINUTE);
    assert!(matches!(
        fed.take_client_response(ctl),
        Some(Response::Error(_))
    ));
    // Each List shows only the owner's job.
    let list = fed.client_request("FZJ", alice, unicore::Request::List);
    fed.run_until(fed.now() + MINUTE);
    let resp = fed.take_client_response(list).unwrap();
    let jobs = unicore::list_jobs_of(&resp).unwrap();
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].job, job_a);
    let _ = job_b;
}

#[test]
fn hold_then_resume_through_protocol() {
    let mut fed = fed();
    let jpa = jpa();
    let mut b = jpa.new_job("held", VsiteAddress::new("LRZ", "SP2"));
    b.script_task(
        "t",
        "sleep 20\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let ajo = b.build().unwrap();
    let corr = fed.client_submit("LRZ", ajo, DN);
    fed.run_until(MINUTE);
    let Some(Response::Consigned { job }) = fed.take_client_response(corr) else {
        panic!()
    };
    // Hold immediately (race with dispatch is fine either way; the NJS
    // hold only blocks *new* dispatches, so check it reports applied).
    let hold = fed.client_control("LRZ", DN, job, ControlOp::Hold);
    fed.run_until(fed.now() + MINUTE);
    let resp = fed.take_client_response(hold).unwrap();
    assert!(matches!(
        resp,
        Response::Service(unicore_ajo::ServiceOutcome::Control { .. })
    ));
    let resume = fed.client_control("LRZ", DN, job, ControlOp::Resume);
    fed.run_until(fed.now() + MINUTE);
    fed.take_client_response(resume).unwrap();
    // The job still completes.
    let deadline = fed.now() + HOUR;
    loop {
        let poll = fed.client_poll("LRZ", DN, job, DetailLevel::JobOnly);
        fed.run_until((fed.now() + MINUTE).min(deadline));
        if let Some(resp) = fed.take_client_response(poll) {
            if let Some(o) = outcome_of(&resp) {
                if o.status.is_terminal() {
                    assert!(o.status.is_success());
                    break;
                }
            }
        }
        assert!(fed.now() < deadline, "job stuck");
    }
}

#[test]
fn deterministic_replay_from_seed() {
    let run = || {
        let mut fed = Federation::german_deployment(FederationConfig {
            seed: 42,
            wan_loss: 0.1,
            ..FederationConfig::default()
        });
        fed.register_user(DN, "e2e");
        let jpa = jpa();
        let mut b = jpa.new_job("replay", VsiteAddress::new("RUKA", "SP2"));
        b.script_task(
            "t",
            "sleep 100\n",
            ResourceRequest::minimal().with_run_time(600),
        );
        let ajo = b.build().unwrap();
        let (_, outcome, t) = fed
            .submit_and_wait("RUKA", ajo, DN, 5 * SEC, HOUR)
            .expect("completes");
        (outcome.status, t, fed.messages_sent, fed.retries)
    };
    assert_eq!(run(), run());
}

#[test]
fn wrong_account_group_rejected_end_to_end() {
    let mut fed = fed();
    let jpa = JobPreparationAgent::new(
        UserAttributes::new(DN, "not-my-group"),
        ResourceDirectory::new(),
    );
    let mut b = jpa.new_job("bad-group", VsiteAddress::new("FZJ", "T3E"));
    b.script_task(
        "t",
        "sleep 1\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let ajo = b.build().unwrap();
    let corr = fed.client_submit("FZJ", ajo, DN);
    fed.run_until(MINUTE);
    assert!(matches!(
        fed.take_client_response(corr),
        Some(Response::Error(msg)) if msg.contains("group")
    ));
}

#[test]
fn broker_routes_around_load() {
    // Saturate DWD's SX-4 with a long full-machine job; the broker must
    // then send a new 16-PE request elsewhere, and the brokered job runs.
    let mut fed = fed();
    let jpa = jpa();
    let mut hog = jpa.new_job("hog", VsiteAddress::new("DWD", "SX4"));
    hog.script_task(
        "occupy",
        "sleep 50000\n",
        ResourceRequest::minimal()
            .with_processors(32)
            .with_run_time(86_400),
    );
    let corr = fed.client_submit("DWD", hog.build().unwrap(), DN);
    fed.run_until(MINUTE);
    assert!(matches!(
        fed.take_client_response(corr),
        Some(Response::Consigned { .. })
    ));

    let request = ResourceRequest::minimal()
        .with_processors(16)
        .with_run_time(3_600);
    let choice = fed.broker_choose(&request).expect("some site admissible");
    assert_ne!(choice.vsite.usite, "DWD", "broker chose the saturated site");
    assert!(choice.immediate);

    // Submit where the broker pointed; it completes quickly.
    let mut b = jpa.new_job("brokered", choice.vsite.clone());
    b.script_task("work", "sleep 30\n", request);
    let (_, outcome, _) = fed
        .submit_and_wait(
            &choice.vsite.usite.clone(),
            b.build().unwrap(),
            DN,
            5 * SEC,
            HOUR,
        )
        .expect("brokered job completes");
    assert!(outcome.status.is_success());
}

#[test]
fn broker_rejects_impossible_requests() {
    let fed = fed();
    // No machine in the deployment has 10^6 processors.
    let request = ResourceRequest::minimal().with_processors(1_000_000);
    assert!(fed.broker_choose(&request).is_none());
}

#[test]
fn list_files_then_fetch_workflow() {
    // The JMC's save-output flow: list the Uspace, pick files, fetch them.
    let mut fed = fed();
    let jpa = jpa();
    let mut b = jpa.new_job("outputs", VsiteAddress::new("FZJ", "T3E"));
    b.script_task(
        "make",
        "produce run.log 200\nproduce result.nc 5000\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let (id, outcome, _) = fed
        .submit_and_wait("FZJ", b.build().unwrap(), DN, 5 * SEC, HOUR)
        .unwrap();
    assert!(outcome.status.is_success());

    let list = fed.client_request("FZJ", DN, unicore::Request::ListFiles { job: id });
    fed.run_until(fed.now() + MINUTE);
    let Some(Response::FileNames(names)) = fed.take_client_response(list) else {
        panic!("no file listing");
    };
    assert!(names.contains(&"run.log".to_string()));
    assert!(names.contains(&"result.nc".to_string()));

    // Fetch each listed file.
    for name in &names {
        let corr = fed.client_fetch("FZJ", DN, id, name);
        fed.run_until(fed.now() + MINUTE);
        assert!(matches!(
            fed.take_client_response(corr),
            Some(Response::FileData(_))
        ));
    }
}

#[test]
fn standalone_transfer_task_crosses_sites() {
    // A TransferTask to a *remote* Vsite rides the NJS–NJS PushFile path
    // and lands in the destination's incoming Xspace area.
    let mut fed = fed();
    let jpa = jpa();
    let mut b = jpa.new_job("pusher", VsiteAddress::new("FZJ", "T3E"));
    let make = b.script_task(
        "make",
        "produce fields.grb 32768\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let push = b.transfer("fields.grb", VsiteAddress::new("DWD", "SX4"), "fields.grb");
    b.after(make, push);
    let (_, outcome, _) = fed
        .submit_and_wait("FZJ", b.build().unwrap(), DN, 5 * SEC, HOUR)
        .expect("transfer job completes");
    assert!(outcome.status.is_success(), "{outcome:?}");
    // The file arrived at DWD.
    let dwd = fed.server("DWD").unwrap();
    let incoming = dwd
        .njs()
        .vsite("SX4")
        .unwrap()
        .vspace
        .xspace_ref()
        .read_raw(&format!("{}fields.grb", unicore_njs::INCOMING_PREFIX))
        .expect("file at destination");
    assert_eq!(incoming.data.len(), 32_768);
}

#[test]
fn subjob_to_unknown_usite_fails_cleanly() {
    let mut fed = fed();
    let jpa = jpa();
    let mut inner = jpa.new_job("nowhere", VsiteAddress::new("ATLANTIS", "X"));
    inner.script_task(
        "x",
        "sleep 1\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let mut outer = jpa.new_job("outer", VsiteAddress::new("FZJ", "T3E"));
    outer.sub_job(inner);
    let (_, outcome, _) = fed
        .submit_and_wait("FZJ", outer.build().unwrap(), DN, 5 * SEC, HOUR)
        .expect("terminates");
    assert!(outcome.status.is_terminal());
    assert!(!outcome.status.is_success());
}

#[test]
fn jpa_uses_protocol_delivered_resource_pages() {
    // The full §4.2 flow: the JPA fetches the Usite's resource pages over
    // the protocol, checks its job against them *before* submission, and
    // the same check rejects an oversized job locally.
    let mut fed = fed();
    let corr = fed.client_request("FZJ", DN, unicore::Request::GetResources);
    fed.run_until(MINUTE);
    let Some(Response::Resources(pages)) = fed.take_client_response(corr) else {
        panic!("no resource pages");
    };
    assert_eq!(pages.len(), 1); // FZJ publishes its T3E
    let jpa = JobPreparationAgent::new(UserAttributes::new(DN, "users"), pages);

    // A job that fits passes the local check and runs.
    let mut ok = jpa.new_job("fits", VsiteAddress::new("FZJ", "T3E"));
    ok.script_task(
        "t",
        "sleep 10\n",
        ResourceRequest::minimal()
            .with_processors(256)
            .with_run_time(600),
    );
    let ajo = ok.build_checked(&jpa).expect("fits the T3E");
    let (_, outcome, _) = fed.submit_and_wait("FZJ", ajo, DN, 5 * SEC, HOUR).unwrap();
    assert!(outcome.status.is_success());

    // An oversized job is rejected by the JPA before any network traffic.
    let mut too_big = jpa.new_job("too big", VsiteAddress::new("FZJ", "T3E"));
    too_big.script_task(
        "t",
        "sleep 10\n",
        ResourceRequest::minimal().with_processors(100_000),
    );
    assert!(matches!(
        too_big.build_checked(&jpa),
        Err(unicore_client::JpaError::ResourceViolation { .. })
    ));
}

#[test]
fn deeply_nested_multi_site_job() {
    // Three levels: FZJ root → RUS group → DWD inner group, with files
    // flowing down both hops.
    let mut fed = fed();
    let jpa = jpa();

    let mut innermost = jpa.new_job("level3@DWD", VsiteAddress::new("DWD", "SX4"));
    innermost.script_task(
        "deep",
        "sleep 5\nproduce deep.out 256\n",
        ResourceRequest::minimal().with_run_time(600),
    );

    let mut middle = jpa.new_job("level2@RUS", VsiteAddress::new("RUS", "VPP"));
    let mid_task = middle.script_task(
        "mid",
        "sleep 5\nproduce mid.out 256\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let inner_id = middle.sub_job(innermost);
    middle.after(mid_task, inner_id);

    let mut root = jpa.new_job("level1@FZJ", VsiteAddress::new("FZJ", "T3E"));
    let root_task = root.script_task(
        "root",
        "sleep 5\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let middle_id = root.sub_job(middle);
    root.after(root_task, middle_id);

    let ajo = root.build().unwrap();
    assert_eq!(ajo.depth(), 3);
    let (_, outcome, _) = fed
        .submit_and_wait("FZJ", ajo, DN, 5 * SEC, HOUR)
        .expect("nested job completes");
    assert!(outcome.status.is_success(), "{outcome:?}");
    // The outcome tree mirrors the nesting.
    let OutcomeNode::Job(level2) = outcome.child(middle_id).unwrap() else {
        panic!()
    };
    assert!(level2
        .children
        .iter()
        .any(|(_, n)| matches!(n, OutcomeNode::Job(j) if j.status.is_success())));
}

#[test]
fn concurrent_users_across_all_sites() {
    // Twelve users × one job each, scattered across all six sites through
    // different entry points, all in flight simultaneously.
    let mut fed = Federation::german_deployment(FederationConfig::default());
    let sites = ["FZJ", "RUS", "RUKA", "LRZ", "ZIB", "DWD"];
    let vsites = ["T3E", "VPP", "SP2", "SP2", "T3E", "SX4"];
    let mut corrs = Vec::new();
    for i in 0..12 {
        let dn = format!("C=DE, O=Load, OU=U, CN=load{i}");
        fed.register_user(&dn, &format!("load{i}"));
        let jpa = JobPreparationAgent::new(
            UserAttributes::new(dn.clone(), "users"),
            ResourceDirectory::new(),
        );
        let site = i % 6;
        let mut b = jpa.new_job(
            format!("load-{i}"),
            VsiteAddress::new(sites[site], vsites[site]),
        );
        b.script_task(
            "work",
            format!("sleep {}\n", 30 + i * 7),
            ResourceRequest::minimal().with_run_time(3_600),
        );
        // Enter via a *different* site than the destination (any-server).
        let via = sites[(site + 3) % 6];
        corrs.push((
            fed.client_submit(via, b.build().unwrap(), &dn),
            dn,
            via.to_owned(),
        ));
    }
    fed.run_until(5 * MINUTE);
    let mut jobs = Vec::new();
    for (corr, dn, via) in corrs {
        let Some(Response::Consigned { job }) = fed.take_client_response(corr) else {
            panic!("consign failed for {dn}");
        };
        jobs.push((job, dn, via));
    }
    fed.run_until_idle(2 * HOUR);
    for (job, dn, via) in jobs {
        let outcome = fed
            .server(&via)
            .unwrap()
            .query(job, &dn, DetailLevel::JobOnly)
            .unwrap();
        assert!(outcome.status.is_success(), "{dn} via {via}: {outcome:?}");
    }
}
