//! Crash recovery: the write-ahead job spool brings a restarted server
//! back to exactly the jobs it had accepted, at every possible crash
//! point in the consign → incarnate → dispatch → outcome pipeline.
//!
//! The `MemoryBackend` plays the disk: it survives dropping the server
//! (the "machine" dying) and can be armed to fail at the Nth journal
//! append, leaving a torn final record for the CRC framing to catch.

use unicore::list_jobs_of;
use unicore::protocol::{outcome_of, Request, Response};
use unicore::server::UnicoreServer;
use unicore_ajo::{AbstractJob, DetailLevel, JobId, ResourceRequest, UserAttributes, VsiteAddress};
use unicore_client::JobPreparationAgent;
use unicore_crypto::CryptoRng;
use unicore_gateway::{Gateway, UserEntry, Uudb};
use unicore_njs::{Njs, TranslationTable};
use unicore_resources::{deployment_page, Architecture, ResourceDirectory};
use unicore_sim::{SimTime, HOUR, SEC};
use unicore_store::{EventStore, MemoryBackend};
use unicore_telemetry::Telemetry;

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=phoenix";

/// A fresh FZJ server journaling to (a clone of) `mem`. Rebuilding a
/// server on the same backend models rebooting the machine with its
/// disk intact.
fn build_server(mem: &MemoryBackend) -> UnicoreServer {
    let mut njs = Njs::new("FZJ");
    njs.add_vsite(
        deployment_page("FZJ", "T3E", Architecture::CrayT3e),
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    njs.attach_store(EventStore::open(Box::new(mem.clone())).expect("open journal"));
    let mut uudb = Uudb::new();
    uudb.add(DN, UserEntry::new("phoenix", "users"));
    UnicoreServer::new(Gateway::new("FZJ", uudb), njs)
}

/// The scenario's jobs: a two-task pipeline with a file dependency
/// (exercising staging, dispatch order and output deposit) and an
/// independent single-task job.
fn scenario_jobs() -> Vec<AbstractJob> {
    let jpa = JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new());
    let mut a = jpa.new_job("pipeline", VsiteAddress::new("FZJ", "T3E"));
    let make = a.script_task(
        "make",
        "sleep 30\nproduce out.bin 4096\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let check = a.script_task(
        "check",
        "sleep 10\necho ok\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    a.after_with_files(make, check, vec!["out.bin".into()]);
    let mut b = jpa.new_job("single", VsiteAddress::new("FZJ", "T3E"));
    b.script_task(
        "solo",
        "sleep 20\nproduce result.nc 512\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    vec![a.build().unwrap(), b.build().unwrap()]
}

fn consign(server: &mut UnicoreServer, ajo: &AbstractJob, now: SimTime) -> Option<JobId> {
    match server.handle_request(DN, Request::Consign { ajo: ajo.clone() }, now) {
        Response::Consigned { job } => Some(job),
        Response::Error(_) => None,
        other => panic!("unexpected consign response: {other:?}"),
    }
}

fn fetch(server: &mut UnicoreServer, job: JobId, name: &str, now: SimTime) -> Vec<u8> {
    match server.handle_request(
        DN,
        Request::FetchFile {
            job,
            name: name.into(),
        },
        now,
    ) {
        Response::FileData(data) => data,
        other => panic!("fetch {name}: {other:?}"),
    }
}

/// Steps the server until every listed job is done or the backend
/// crashes; returns the sim time reached.
fn drive(
    server: &mut UnicoreServer,
    mem: &MemoryBackend,
    jobs: &[JobId],
    mut now: SimTime,
) -> SimTime {
    let deadline = now + 10 * HOUR;
    loop {
        server.step(now);
        if mem.is_crashed() || jobs.iter().all(|&j| server.is_done(j)) {
            return now;
        }
        assert!(now < deadline, "jobs stalled at t={now}");
        now = server.next_event_time().unwrap_or(now + SEC).max(now + SEC);
    }
}

/// Fault injection at *every* pipeline stage: the baseline run counts
/// the journal appends of the whole scenario, then the scenario is
/// re-run once per append with the machine dying exactly there (with a
/// deterministically chosen torn tail). After every crash the rebuilt
/// server must recover all consigned jobs, deduplicate the clients'
/// consign retries, finish everything, and serve correct outputs.
#[test]
fn kill_at_every_append_recovers_every_consigned_job() {
    let ajos = scenario_jobs();

    // Baseline: uncrashed, to learn the total append count.
    let mem = MemoryBackend::new();
    let mut server = build_server(&mem);
    let ids: Vec<JobId> = ajos
        .iter()
        .map(|a| consign(&mut server, a, 0).expect("baseline consign"))
        .collect();
    drive(&mut server, &mem, &ids, 0);
    assert!(ids.iter().all(|&j| server.is_done(j)), "baseline completes");
    let total = mem.append_count();
    // Group commit batches every event a step produces into one durable
    // write, so each append is now a durability *boundary* rather than a
    // single event: two strict consigns plus one group commit per
    // event-producing step. The floor checks the scenario still spans
    // consign, dispatch and outcome stages.
    assert!(
        total >= 5,
        "scenario too small to probe the pipeline: {total} appends"
    );
    drop(server);

    let mut rng = CryptoRng::from_u64(0xe9_5eed);
    for k in 0..total {
        let torn = rng.next_below(10) as usize;
        let mem = MemoryBackend::new();
        mem.crash_after_appends(k, torn);

        // Life before the crash: consign everything, run until death.
        let mut server = build_server(&mem);
        let live: Vec<Option<JobId>> = ajos.iter().map(|a| consign(&mut server, a, 0)).collect();
        let accepted: Vec<JobId> = live.iter().flatten().copied().collect();
        let now = drive(&mut server, &mem, &accepted, 0);
        assert!(mem.is_crashed(), "crash point {k} never fired");
        drop(server);

        // Reboot: same disk, fresh everything else.
        mem.reboot();
        let mut server = build_server(&mem);
        let report = server.recover(now).expect("recovery");
        if torn > 0 {
            assert!(
                report.torn_tail,
                "crash point {k}: torn record not detected"
            );
        }
        // Every job the client saw accepted was journaled first
        // (write-ahead), so it must be alive again.
        for &id in &accepted {
            assert!(
                report.jobs.contains(&id),
                "crash point {k}: job {id} accepted then lost"
            );
        }

        // The clients retry every consign whose completion they never
        // saw. Journaled ones must map to the same job (idempotency);
        // refused ones are created now, exactly once.
        let final_ids: Vec<JobId> = ajos
            .iter()
            .enumerate()
            .map(|(i, ajo)| {
                let id = consign(&mut server, ajo, now).expect("post-recovery consign");
                if let Some(pre) = live[i] {
                    assert_eq!(id, pre, "crash point {k}: consign retry not deduplicated");
                }
                id
            })
            .collect();

        let end = drive(&mut server, &mem, &final_ids, now);
        for (i, &id) in final_ids.iter().enumerate() {
            assert!(
                server.is_done(id),
                "crash point {k}: job {i} stuck after recovery"
            );
            let resp = server.handle_request(
                DN,
                Request::Poll {
                    job: id,
                    detail: DetailLevel::Tasks,
                },
                end,
            );
            let outcome = outcome_of(&resp).expect("poll returns outcome");
            assert!(
                outcome.status.is_success(),
                "crash point {k} job {i}: {outcome:?}"
            );
        }
        // The outputs really exist and have the right content.
        assert_eq!(fetch(&mut server, final_ids[0], "out.bin", end).len(), 4096);
        assert_eq!(
            fetch(&mut server, final_ids[1], "result.nc", end).len(),
            512
        );

        // No duplicates: the user sees exactly one job per AJO.
        let resp = server.handle_request(DN, Request::List, end);
        let listed = list_jobs_of(&resp).expect("list");
        assert_eq!(
            listed.len(),
            ajos.len(),
            "crash point {k}: duplicated or lost jobs: {listed:?}"
        );
    }
}

/// A job that finished before the crash is restored terminal from its
/// `OutcomeStored` record: polling works, outputs are intact, and
/// nothing is handed to the batch subsystem a second time — even when
/// the client re-delivers the original Consign.
#[test]
fn finished_job_survives_restart_without_resubmission() {
    let ajos = scenario_jobs();
    let mem = MemoryBackend::new();
    let mut server = build_server(&mem);
    let id = consign(&mut server, &ajos[0], 0).expect("consign");
    let now = drive(&mut server, &mem, &[id], 0);
    assert!(server.is_done(id));
    let pre_crash = fetch(&mut server, id, "out.bin", now);
    drop(server);

    let mut server = build_server(&mem);
    let report = server.recover(now).expect("recovery");
    assert_eq!(report.jobs, vec![id]);
    assert!(!report.torn_tail);
    assert!(server.is_done(id), "outcome restored from the journal");

    // The client's re-delivered Consign maps to the same job...
    assert_eq!(consign(&mut server, &ajos[0], now), Some(id));
    // ...and repeated stepping never re-incarnates the terminal work.
    let mut t = now;
    for _ in 0..5 {
        server.step(t);
        t += SEC;
    }
    assert_eq!(
        server.njs().incarnation_count(),
        0,
        "terminal work re-submitted to batch"
    );
    assert_eq!(fetch(&mut server, id, "out.bin", t), pre_crash);
}

/// The write-ahead contract: when the journal cannot record a consign,
/// the consign is refused — the client sees the error, nothing
/// half-created survives, and the retry after reboot succeeds.
#[test]
fn journal_failure_refuses_consignment() {
    let ajos = scenario_jobs();
    let mem = MemoryBackend::new();
    mem.crash_after_appends(0, 0);
    let mut server = build_server(&mem);
    assert!(
        consign(&mut server, &ajos[1], 0).is_none(),
        "consign must be refused while the journal is down"
    );
    drop(server);

    mem.reboot();
    let mut server = build_server(&mem);
    let report = server.recover(0).expect("recovery");
    assert!(
        report.jobs.is_empty(),
        "refused consign left residue: {report:?}"
    );
    let resp = server.handle_request(DN, Request::List, 0);
    assert_eq!(list_jobs_of(&resp).expect("list").len(), 0);

    let id = consign(&mut server, &ajos[1], 0).expect("retry succeeds");
    let end = drive(&mut server, &mem, &[id], 0);
    assert!(server.is_done(id));
    assert_eq!(fetch(&mut server, id, "result.nc", end).len(), 512);
}

/// WAL health surfaces in the metrics registry: a reboot from a torn
/// journal reports the repair through `store.wal.repairs` exactly once,
/// and subsequent appends show up in the append/byte counters.
#[test]
fn repaired_open_increments_repair_counter() {
    let ajos = scenario_jobs();
    let mem = MemoryBackend::new();
    // Die on the 4th append, leaving 7 torn bytes for the framing to
    // find on reboot (crash point 3 is past both initial consigns).
    mem.crash_after_appends(3, 7);
    let mut server = build_server(&mem);
    let accepted: Vec<JobId> = ajos
        .iter()
        .filter_map(|a| consign(&mut server, a, 0))
        .collect();
    let now = drive(&mut server, &mem, &accepted, 0);
    assert!(mem.is_crashed(), "crash point never fired");
    drop(server);

    mem.reboot();
    let mut server = build_server(&mem);
    let report = server.recover(now).expect("recovery");
    assert!(report.torn_tail, "torn record not detected");

    // Wiring telemetry after the repaired open reports it exactly once;
    // re-wiring must not count the same repair again.
    let telemetry = Telemetry::collecting(7);
    server.set_telemetry(telemetry.clone());
    assert_eq!(telemetry.metrics_snapshot().counter("store.wal.repairs"), 1);
    server.set_telemetry(telemetry.clone());
    assert_eq!(
        telemetry.metrics_snapshot().counter("store.wal.repairs"),
        1,
        "repair double-counted on re-attach"
    );

    // The journal keeps appending after recovery, and the health
    // counters see it.
    let before = telemetry.metrics_snapshot().counter("store.wal.appends");
    let id = consign(&mut server, &ajos[0], now).expect("post-recovery consign");
    drive(&mut server, &mem, &[id], now);
    assert!(server.is_done(id));
    let snap = telemetry.metrics_snapshot();
    assert!(
        snap.counter("store.wal.appends") > before,
        "appends counter stuck at {before}"
    );
    assert!(snap.counter("store.wal.bytes") > 0);
}

/// Live-path duplicate suppression (no crash involved): the same AJO
/// from the same DN re-consigned before, during or after execution maps
/// to the job it already created.
#[test]
fn duplicate_consign_is_deduplicated_live() {
    let ajos = scenario_jobs();
    let mem = MemoryBackend::new();
    let mut server = build_server(&mem);
    let first = consign(&mut server, &ajos[0], 0).expect("consign");
    // Retry straight away (client timeout re-send, §5.3).
    assert_eq!(consign(&mut server, &ajos[0], 0), Some(first));
    let now = drive(&mut server, &mem, &[first], 0);
    // Retry after completion.
    assert_eq!(consign(&mut server, &ajos[0], now), Some(first));
    let resp = server.handle_request(DN, Request::List, now);
    assert_eq!(list_jobs_of(&resp).expect("list").len(), 1);
}
