//! The security architecture, live: every cryptographic step of §4/§5.2
//! runs for real — CA issuance, signed applets, the mutual-authentication
//! handshake over an in-process wire, session resumption, DN mapping, and
//! revocation.
//!
//! Run with: `cargo run -p unicore-examples --bin secure_access`

use std::sync::Arc;
use std::time::{Duration, Instant};
use unicore_certs::{
    CertificateAuthority, DistinguishedName, KeyUsage, SignedSoftware, TrustStore, Validity,
};
use unicore_crypto::CryptoRng;
use unicore_gateway::{AuthDecision, Gateway, UserEntry, Uudb};
use unicore_simnet::wire_pair;
use unicore_transport::{client_handshake, server_handshake, Endpoint, SessionCache};

fn main() {
    let mut rng = CryptoRng::from_u64(0x1999);

    // ---- 1. The Certificate Authority (DFN-PCA's role) -------------------
    println!("== 1. certificate authority ==");
    let mut ca = CertificateAuthority::new_root(
        DistinguishedName::new("DE", "DFN", "PCA", "UNICORE Root CA"),
        Validity::starting_at(0, 10_000_000),
        512,
        &mut rng,
    );
    println!("root CA: {}", ca.certificate().tbs.subject);
    assert!(ca.certificate().is_self_signed());

    let user = ca
        .issue_identity(
            DistinguishedName::new("DE", "FZJ", "ZAM", "Mathilde Romberg")
                .with_email("m.romberg@fz-juelich.de"),
            KeyUsage::user(),
            Validity::starting_at(0, 1_000_000),
            &mut rng,
        )
        .unwrap();
    let gateway_id = ca
        .issue_identity(
            DistinguishedName::new("DE", "FZJ", "ZAM", "unicore.fz-juelich.de"),
            KeyUsage::server(),
            Validity::starting_at(0, 1_000_000),
            &mut rng,
        )
        .unwrap();
    let developer = ca
        .issue_identity(
            DistinguishedName::new("DE", "Pallas", "Development", "applet-signing"),
            KeyUsage::software(),
            Validity::starting_at(0, 1_000_000),
            &mut rng,
        )
        .unwrap();
    println!("issued: user, gateway, software-signing certificates\n");

    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone()).unwrap();
    let trust = Arc::new(trust);

    // ---- 2. Signed applets ------------------------------------------------
    println!("== 2. signed applets ==");
    let jpa_applet = SignedSoftware::sign(
        "JPA",
        "4.0",
        b"job preparation agent code".to_vec(),
        developer.cert.clone(),
        &developer.keypair.private,
    )
    .unwrap();
    jpa_applet.verify(&trust, 100).unwrap();
    println!("JPA applet signature verifies — software untampered");
    let mut tampered = jpa_applet.clone();
    tampered.payload[0] ^= 0xff;
    println!(
        "tampered applet rejected: {}\n",
        tampered.verify(&trust, 100).unwrap_err()
    );

    // ---- 3. Mutual-authentication handshake (the https of §4.1) ----------
    println!("== 3. mutual-auth handshake ==");
    let user_ep = Endpoint::new(user, trust.clone(), 100);
    let server_ep = Endpoint::new(gateway_id, trust.clone(), 100);
    let client_cache = SessionCache::new(8);
    let server_cache = SessionCache::new(8);

    let run = |label: &str,
               user_ep: &Endpoint,
               server_ep: &Endpoint,
               cc: &SessionCache,
               sc: &SessionCache,
               seed: u64| {
        let (cw, sw) = wire_pair();
        let started = Instant::now();
        let (client, server) = std::thread::scope(|s| {
            let srv = s.spawn(move || {
                let mut rng = CryptoRng::from_u64(seed).fork("s");
                server_handshake(sw, server_ep, sc, &mut rng)
            });
            let mut rng = CryptoRng::from_u64(seed).fork("c");
            let client = client_handshake(cw, user_ep, "FZJ", cc, &mut rng);
            (client, srv.join().unwrap())
        });
        let elapsed = started.elapsed();
        let mut client = client.unwrap();
        let mut server = server.unwrap();
        println!(
            "{label}: {} in {elapsed:?}",
            if client.resumed() {
                "resumed session"
            } else {
                "full handshake"
            },
        );
        println!(
            "  server authenticated the user as: {}",
            server.peer().tbs.subject
        );
        println!(
            "  user authenticated the server as: {}",
            client.peer().tbs.subject
        );
        client.send(b"AJO bytes would flow here").unwrap();
        let received = server.recv(Duration::from_secs(1)).unwrap();
        assert_eq!(received, b"AJO bytes would flow here");
        server.peer().tbs.subject.to_string()
    };

    let peer_dn = run(
        "first connection",
        &user_ep,
        &server_ep,
        &client_cache,
        &server_cache,
        7,
    );
    run(
        "second connection",
        &user_ep,
        &server_ep,
        &client_cache,
        &server_cache,
        8,
    );
    println!();

    // ---- 4. The gateway maps the DN to the local login --------------------
    println!("== 4. gateway DN mapping ==");
    let mut uudb = Uudb::new();
    uudb.add(
        peer_dn.clone(),
        UserEntry::new("romberg", "zam").with_vsite_login("SP2", "mrom01"),
    );
    let mut gateway = Gateway::new("FZJ", uudb);
    // The transport already validated the certificate; authorize_dn runs
    // the UNICORE-level mapping.
    for vsite in ["T3E", "SP2"] {
        match gateway.authorize_dn(&peer_dn, vsite, Some("zam"), 100) {
            AuthDecision::Accepted(m) => {
                println!(
                    "{} @ {vsite} -> login '{}' (group {})",
                    m.dn, m.login, m.account_group
                )
            }
            AuthDecision::Refused(r) => println!("refused: {r}"),
        }
    }
    println!();

    // ---- 5. Revocation ----------------------------------------------------
    println!("== 5. revocation ==");
    let victim = ca
        .issue_identity(
            DistinguishedName::new("DE", "FZJ", "ZAM", "departed-user"),
            KeyUsage::user(),
            Validity::starting_at(0, 1_000_000),
            &mut rng,
        )
        .unwrap();
    ca.revoke(victim.cert.tbs.serial);
    let crl = ca.publish_crl(200);
    let mut trust2 = TrustStore::new();
    trust2.add_anchor(ca.certificate().clone()).unwrap();
    trust2.install_crl(crl).unwrap();
    let err = trust2
        .validate(
            std::slice::from_ref(&victim.cert),
            250,
            unicore_certs::RequiredUsage::ClientAuth,
        )
        .unwrap_err();
    println!("revoked user rejected: {err}");
}
