//! Quickstart: the whole UNICORE story at one site, in one file.
//!
//! A user prepares a Fortran compile–link–execute job with the JPA,
//! consigns it to the FZJ UNICORE server (gateway maps their certificate
//! DN to the local login, the NJS incarnates abstract tasks into Cray T3E
//! batch scripts), and monitors it with the JMC until the results come
//! back.
//!
//! Run with: `cargo run -p unicore-examples --bin quickstart`

use unicore::protocol::{outcome_of, Request, Response};
use unicore::server::UnicoreServer;
use unicore_ajo::{DetailLevel, UserAttributes, VsiteAddress};
use unicore_client::{collect_outputs, render, status_rows, JobPreparationAgent};
use unicore_gateway::{Gateway, UserEntry, Uudb};
use unicore_njs::{Njs, TranslationTable};
use unicore_resources::{deployment_page, Architecture, ResourceDirectory};
use unicore_sim::format_time;
use unicore_telemetry::Telemetry;

fn main() {
    let dn = "C=DE, O=Forschungszentrum Juelich, OU=ZAM, CN=Alice Example";

    // ---- Site administration (once per Usite) --------------------------
    // The FZJ site runs a 512-PE Cray T3E; the administrator publishes its
    // resource page and translation table and adds Alice to the UUDB.
    let mut njs = Njs::new("FZJ");
    njs.add_vsite(
        deployment_page("FZJ", "T3E", Architecture::CrayT3e),
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    let mut uudb = Uudb::new();
    uudb.add(dn, UserEntry::new("alice1", "zam"));
    let gateway = Gateway::new("FZJ", uudb);
    let mut server = UnicoreServer::new(gateway, njs);

    // Collect spans and metrics across every tier the request touches.
    let telemetry = Telemetry::collecting(0x51);
    server.set_telemetry(telemetry.clone());

    // ---- Job preparation (the JPA) --------------------------------------
    // The user receives the resource pages with the applet and builds a
    // job; the JPA checks it against the T3E's limits before submission.
    let mut pages = ResourceDirectory::new();
    for page in server.resource_directory().pages() {
        pages.publish(page.clone());
    }
    let jpa = JobPreparationAgent::new(UserAttributes::new(dn, "zam"), pages);

    let mut builder = jpa.new_job("quickstart", VsiteAddress::new("FZJ", "T3E"));
    let source = b"program fields\n  print *, 'hello from the T3E'\nend program\n";
    let import = builder.import_from_workstation("fields.f90", source.to_vec(), "fields.f90");
    let compile = builder.compile_task(
        "compile fields.f90",
        vec!["fields.f90".into()],
        vec!["O3".into()],
        "fields.o",
        unicore_ajo::ResourceRequest::minimal().with_run_time(600),
    );
    let link = builder.link_task(
        "link model",
        vec!["fields.o".into()],
        vec!["blas".into(), "mpi".into()],
        "model",
        unicore_ajo::ResourceRequest::minimal().with_run_time(600),
    );
    let run = builder.user_task(
        "run model",
        "model",
        vec!["--steps".into(), "100".into()],
        vec![("OMP_NUM_THREADS".into(), "4".into())],
        unicore_ajo::ResourceRequest::minimal()
            .with_processors(64)
            .with_run_time(1_800)
            .with_memory(2_048),
    );
    builder
        .after(import, compile)
        .after(compile, link)
        .after(link, run);
    let job = builder.build_checked(&jpa).expect("job fits the T3E");
    let ajo_bytes = {
        use unicore_codec::DerCodec;
        job.to_der().len()
    };
    println!(
        "prepared AJO: {} actions, {} bytes on the wire\n",
        job.action_count(),
        ajo_bytes
    );

    // ---- Consignment (gateway + NJS) ------------------------------------
    // The client opens the root span; its context rides the envelope so
    // every tier below hangs off the same trace.
    let mut consign_span = telemetry.span("client.request", None, 0);
    consign_span.attr("kind", "consign");
    let trace = consign_span.ctx();
    let response =
        server.handle_request_traced(dn, Request::Consign { ajo: job.clone() }, 0, trace);
    telemetry.end(consign_span, 0);
    let Response::Consigned { job: job_id } = response else {
        panic!("consign failed: {response:?}");
    };
    println!("consigned as {job_id} — the gateway mapped\n  {dn}\n  to local login 'alice1'\n");

    // ---- Execution: drive simulated time forward ------------------------
    let mut now = 0;
    server.step(now);
    while !server.is_done(job_id) {
        now = server.next_event_time().unwrap_or(now + 1_000_000);
        server.step(now);
    }
    println!("job finished at t = {}\n", format_time(now));

    // ---- Monitoring (the JMC) -------------------------------------------
    let poll = server.handle_request(
        dn,
        Request::Poll {
            job: job_id,
            detail: DetailLevel::Tasks,
        },
        now,
    );
    let outcome = outcome_of(&poll).expect("poll returns outcome").clone();
    println!("JMC status display:");
    print!("{}", render(&status_rows(&job, &outcome)));

    println!("\ntask outputs:");
    for out in collect_outputs(&job, &outcome) {
        if !out.stdout.is_empty() {
            print!(
                "  {} (exit {:?}): {}",
                out.name,
                out.exit_code,
                String::from_utf8_lossy(&out.stdout)
            );
        }
    }

    // ---- Telemetry: where did the time go? ------------------------------
    // Every row aggregates the finished spans of one instrumentation
    // point; the simulated-clock totals show the per-tier latency split
    // (batch wait + run dominate, as on a real T3E).
    println!("\nper-tier latency breakdown (from spans):");
    println!(
        "  {:<8} {:<16} {:>5}  {:>14}",
        "tier", "span", "count", "sim time"
    );
    for s in telemetry.breakdown() {
        let tier = match s.name.split('.').next().unwrap_or("") {
            "client" => "client",
            "server" | "gateway" => "gateway",
            "njs" => "NJS",
            "batch" => "batch",
            "store" | "transport" => "site",
            _ => "other",
        };
        println!(
            "  {:<8} {:<16} {:>5}  {:>14}",
            tier,
            s.name,
            s.count,
            format_time(s.clock_total)
        );
    }

    println!("\nmetrics registry (excerpt):");
    for line in telemetry
        .metrics()
        .render_text()
        .lines()
        .filter(|l| !l.starts_with('#') && !l.contains("bucket"))
        .take(10)
    {
        println!("  {line}");
    }
}
