//! The federated monitoring plane (DESIGN.md E12/E17): a two-Usite grid,
//! real work flowing, then one `Monitor { grid: true }` query at FZJ that
//! climbs the aggregation tree and comes back as one pre-merged
//! [`GridView`](unicore_ajo::GridView) of the whole grid — plus the
//! flight-recorder trace a failed task carries home in its `Outcome`.
//!
//! Run with: `cargo run -p unicore-examples --bin monitor_grid --release`

use unicore::protocol::grid_view_of;
use unicore::{Federation, FederationConfig, SiteSpec};
use unicore_ajo::{ResourceRequest, UserAttributes, VsiteAddress};
use unicore_client::{first_failure, render_flight, render_grid, JobPreparationAgent};
use unicore_resources::{Architecture, ResourceDirectory};
use unicore_sim::{format_time, HOUR, MINUTE, SEC};

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=operator";

fn job(
    jpa: &JobPreparationAgent,
    usite: &str,
    vsite: &str,
    script: &str,
) -> unicore_ajo::AbstractJob {
    let mut job = jpa.new_job("probe", VsiteAddress::new(usite, vsite));
    job.script_task(
        "step",
        script,
        ResourceRequest::minimal().with_run_time(600),
    );
    job.build().unwrap()
}

fn main() {
    // ---- A two-Usite grid: FZJ (Cray T3E) and RUS (Fujitsu VPP) --------
    let specs = vec![
        SiteSpec::simple("FZJ", "T3E", Architecture::CrayT3e),
        SiteSpec::simple("RUS", "VPP", Architecture::FujitsuVpp700),
    ];
    let mut fed = Federation::new(FederationConfig::default(), &specs);
    fed.enable_telemetry(0xE12);
    fed.register_user(DN, "op");
    let jpa = JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new());

    // ---- Real work at both sites, including one job that fails ---------
    for (usite, vsite, script) in [
        ("FZJ", "T3E", "sleep 30\n"),
        ("RUS", "VPP", "sleep 45\n"),
        ("FZJ", "T3E", "sleep 10\nexit 3\n"),
    ] {
        let ajo = job(&jpa, usite, vsite, script);
        let (_, outcome, at) = fed
            .submit_and_wait(usite, ajo.clone(), DN, 5 * SEC, HOUR)
            .expect("job reaches a terminal state");
        println!(
            "[{}] {usite} job finished: {:?}",
            format_time(at),
            outcome.status
        );
        if let Some((name, task)) = first_failure(&ajo, &outcome) {
            println!();
            print!("{}", render_flight(name, task));
            println!();
        }
    }

    // ---- Let the aggregation plane heartbeat a couple of rounds --------
    fed.run_until(fed.now() + 2 * MINUTE);

    // ---- One query at one Usite covers the whole grid -------------------
    let corr = fed.client_monitor("FZJ", DN, true);
    let deadline = fed.now() + 10 * MINUTE;
    let resp = loop {
        fed.run_until(fed.now() + SEC);
        if let Some(resp) = fed.take_client_response(corr) {
            break resp;
        }
        assert!(fed.now() < deadline, "no monitor response");
    };
    let view = grid_view_of(&resp).expect("grid view");
    println!(
        "grid view at [{}], one Monitor query via FZJ:\n",
        format_time(fed.now())
    );
    print!("{}", render_grid(view));
}
