//! The paper's motivating scenario (§1): "complex pre- and post-processing
//! tasks which run best on another architecture than the main application".
//!
//! A DWD-style numerical weather forecast: observation pre-processing on
//! the Fujitsu VPP/700 at RUS, the main forecast model on the NEC SX-4 at
//! DWD, and visualisation on the Cray T3E at FZJ — one UNICORE job, three
//! sites, files flowing along the dependency edges, monitored live with
//! the JMC's colour-coded tree.
//!
//! Run with: `cargo run -p unicore-examples --bin weather_forecast`

use unicore::protocol::{outcome_of, Response};
use unicore::{Federation, FederationConfig};
use unicore_ajo::{DetailLevel, ResourceRequest, UserAttributes, VsiteAddress};
use unicore_client::{first_failure, render, status_rows, JobPreparationAgent};
use unicore_resources::ResourceDirectory;
use unicore_sim::{format_time, HOUR, MINUTE, SEC};

const DN: &str = "C=DE, O=DWD, OU=Forecasting, CN=Otto Operator";

fn main() {
    let mut fed = Federation::german_deployment(FederationConfig::default());
    fed.register_user(DN, "otto");

    let jpa = JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new());

    // ---- Pre-processing job group on the VPP at RUS ----------------------
    let mut prep = jpa.new_job("obs-preprocess@RUS", VsiteAddress::new("RUS", "VPP"));
    let decode = prep.script_task(
        "decode observations",
        "echo decoding synop+temp observations\nsleep 180\nproduce obs.bufr 262144\n",
        ResourceRequest::minimal()
            .with_processors(2)
            .with_run_time(1_800),
    );
    let assimilate = prep.script_task(
        "assimilation",
        "echo optimal interpolation analysis\nsleep 420\nproduce analysis.grb 524288\n",
        ResourceRequest::minimal()
            .with_processors(8)
            .with_run_time(3_600),
    );
    prep.after_with_files(decode, assimilate, vec!["obs.bufr".into()]);

    // ---- Post-processing job group on the T3E at FZJ ---------------------
    let mut post = jpa.new_job("viz@FZJ", VsiteAddress::new("FZJ", "T3E"));
    post.script_task(
        "render maps",
        "echo rendering 72h surface pressure maps\nsleep 240\nproduce maps.ps 1048576\n",
        ResourceRequest::minimal()
            .with_processors(16)
            .with_run_time(1_800),
    );

    // ---- The main forecast at DWD on the SX-4 ----------------------------
    let mut job = jpa.new_job("72h-forecast", VsiteAddress::new("DWD", "SX4"));
    let prep_id = job.sub_job(prep);
    let model = job.script_task(
        "global model 72h",
        "echo integrating spectral model T106L31\nsleep 1800\nproduce forecast.grb 2097152\n",
        ResourceRequest::minimal()
            .with_processors(16)
            .with_run_time(14_400)
            .with_memory(8_192),
    );
    let post_id = job.sub_job(post);
    job.after_with_files(prep_id, model, vec!["analysis.grb".into()]);
    job.after_with_files(model, post_id, vec!["forecast.grb".into()]);
    let ajo = job.build().expect("valid forecast job");
    println!(
        "prepared '{}': {} actions across {:?}\n",
        ajo.name,
        ajo.action_count(),
        {
            let mut sites: Vec<String> = ajo.referenced_usites().into_iter().collect();
            sites.sort();
            sites
        }
    );

    // ---- Submit via the user's home server (DWD) --------------------------
    let corr = fed.client_submit("DWD", ajo.clone(), DN);
    fed.run_until(MINUTE);
    let Some(Response::Consigned { job: job_id }) = fed.take_client_response(corr) else {
        panic!("consignment failed");
    };
    println!("consigned at DWD as {job_id}\n");

    // ---- Monitor with the JMC at intervals --------------------------------
    let mut last_render = String::new();
    loop {
        let poll = fed.client_poll("DWD", DN, job_id, DetailLevel::Tasks);
        fed.run_until(fed.now() + 2 * MINUTE);
        if let Some(resp) = fed.take_client_response(poll) {
            if let Some(outcome) = outcome_of(&resp) {
                let tree = render(&status_rows(&ajo, outcome));
                if tree != last_render {
                    println!("t = {}", format_time(fed.now()));
                    println!("{tree}");
                    last_render = tree;
                }
                if outcome.status.is_terminal() {
                    if let Some((task, t)) = first_failure(&ajo, outcome) {
                        println!("first failure: {task}: {}", t.message);
                    }
                    break;
                }
            }
        }
        if fed.now() > 8 * HOUR {
            println!("timed out");
            return;
        }
    }

    // ---- Fetch the product -------------------------------------------------
    let fetch = fed.client_fetch("DWD", DN, job_id, "forecast.grb");
    fed.run_until(fed.now() + MINUTE);
    if let Some(Response::FileData(data)) = fed.take_client_response(fetch) {
        println!(
            "retrieved forecast.grb ({} bytes) to the workstation on JMC request",
            data.len()
        );
    }
    println!(
        "\nprotocol: {} messages, {} retries, done at {}",
        fed.messages_sent,
        fed.retries,
        format_time(fed.now())
    );
    let _ = SEC;
}
