//! The site administrator's view: everything §5.4/§5.5 says a UNICORE site
//! operates — the resource-page editor, the translation tables, the UUDB —
//! plus the accounting and audit trails that §6 foreshadows.
//!
//! Run with: `cargo run -p unicore-examples --bin site_admin`

use unicore::protocol::Request;
use unicore::server::UnicoreServer;
use unicore_ajo::{ResourceRequest, UserAttributes, VsiteAddress};
use unicore_client::JobPreparationAgent;
use unicore_codec::DerCodec;
use unicore_gateway::{Gateway, UserEntry, Uudb};
use unicore_njs::{Njs, TranslationTable};
use unicore_resources::{
    Architecture, PerformanceInfo, ResourceDirectory, ResourceLimits, ResourcePageEditor,
    SoftwareKind,
};
use unicore_sim::{format_time, SEC};

fn main() {
    // ---- 1. Author the resource page with the editor (§5.4) --------------
    println!("== 1. resource page editor ==");
    let page = ResourcePageEditor::new(VsiteAddress::new("FZJ", "T3E"), Architecture::CrayT3e)
        .operating_system("UNICOS/mk 2.0")
        .performance(PerformanceInfo {
            peak_gflops: 460.0,
            memory_per_node_mb: 128,
            nodes: 512,
        })
        .limits(ResourceLimits {
            min_processors: 1,
            max_processors: 512,
            min_run_time_secs: 60,
            max_run_time_secs: 43_200,
            max_memory_mb: 65_536,
            max_disk_permanent_mb: 100_000,
            max_disk_temporary_mb: 200_000,
        })
        .software(SoftwareKind::Compiler, "f90", "3.2.0.1")
        .software(SoftwareKind::Library, "blas", "libsci")
        .software(SoftwareKind::Library, "mpi", "mpt 1.3")
        .software(SoftwareKind::Package, "gaussian94", "rev E.2")
        .build()
        .expect("consistent page");
    let der = page.to_der();
    println!(
        "authored page for {} ({}): {} software entries, {} bytes in ASN.1/DER\n",
        page.vsite,
        page.architecture.display_name(),
        page.software.len(),
        der.len()
    );

    // ---- 2. Stand up the site --------------------------------------------
    println!("== 2. site bring-up (UUDB + translation tables) ==");
    let mut njs = Njs::new("FZJ");
    njs.add_vsite(
        page,
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    let mut uudb = Uudb::new();
    for (dn, login, group) in [
        ("C=DE, O=FZJ, OU=ZAM, CN=alice", "alice1", "zam"),
        (
            "C=DE, O=Uni Koeln, OU=Physik, CN=bert",
            "guest07",
            "external",
        ),
        ("C=DE, O=FZJ, OU=IFF, CN=carol", "carol", "iff"),
    ] {
        uudb.add(dn, UserEntry::new(login, group));
    }
    println!("UUDB entries: {}\n", uudb.len());
    let mut server = UnicoreServer::new(Gateway::new("FZJ", uudb), njs);

    // ---- 3. Users run jobs ------------------------------------------------
    println!("== 3. a day of jobs ==");
    let mut now = 0;
    for (i, (dn, group, procs, sleep)) in [
        ("C=DE, O=FZJ, OU=ZAM, CN=alice", "zam", 64u32, 1_800u64),
        ("C=DE, O=Uni Koeln, OU=Physik, CN=bert", "external", 16, 600),
        ("C=DE, O=FZJ, OU=IFF, CN=carol", "iff", 128, 3_600),
        ("C=DE, O=FZJ, OU=ZAM, CN=alice", "zam", 8, 120),
        // An intruder with no UUDB entry.
        ("C=DE, O=Evil, OU=Corp, CN=mallory", "zam", 1, 10),
    ]
    .iter()
    .enumerate()
    {
        let jpa =
            JobPreparationAgent::new(UserAttributes::new(*dn, *group), ResourceDirectory::new());
        let mut b = jpa.new_job(format!("job{i}"), VsiteAddress::new("FZJ", "T3E"));
        b.script_task(
            "work",
            format!("sleep {sleep}\n"),
            ResourceRequest::minimal()
                .with_processors(*procs)
                .with_run_time(sleep * 2),
        );
        let ajo = b.build().unwrap();
        let resp = server.handle_request(dn, Request::Consign { ajo }, now);
        println!("  {dn} -> {resp:?}");
        now += SEC;
    }
    // Drive everything to completion.
    server.step(now);
    while let Some(t) = server.next_event_time() {
        now = t;
        server.step(now);
    }
    println!("all jobs drained at t = {}\n", format_time(now));

    // ---- 4. Accounting report (§6's "accounting functions") --------------
    println!("== 4. usage report ==");
    print!("{}", server.njs().usage_report().render());

    // ---- 5. The gateway audit trail ---------------------------------------
    println!("\n== 5. gateway audit trail ==");
    for rec in server.gateway().audit() {
        println!(
            "  t={:<4} {} vsite={} -> {}",
            rec.at,
            if rec.accepted { "ACCEPT" } else { "REFUSE" },
            rec.vsite,
            rec.detail
        );
    }
}
