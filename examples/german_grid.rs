//! The paper's §5.7 deployment: six German computing centres, four machine
//! architectures, real background load, and UNICORE jobs competing with it.
//!
//! Reproduces the *status* section of the paper as a running system:
//! FZ Jülich (Cray T3E), RUS Stuttgart (Fujitsu VPP/700), RUKA Karlsruhe
//! (IBM SP-2), LRZ Munich (IBM SP-2), ZIB Berlin (Cray T3E) and DWD
//! Offenbach (NEC SX-4), joined by a B-WiN-era WAN.
//!
//! Run with: `cargo run -p unicore-examples --bin german_grid --release`

use unicore::{Federation, FederationConfig};
use unicore_ajo::{ActionStatus, ResourceRequest, UserAttributes, VsiteAddress};
use unicore_batch::{generate_background, WorkloadModel};
use unicore_client::JobPreparationAgent;
use unicore_crypto::CryptoRng;
use unicore_resources::ResourceDirectory;
use unicore_sim::{format_time, HOUR, MINUTE, SEC};

const SITES: [(&str, &str); 6] = [
    ("FZJ", "T3E"),
    ("RUS", "VPP"),
    ("RUKA", "SP2"),
    ("LRZ", "SP2"),
    ("ZIB", "T3E"),
    ("DWD", "SX4"),
];

fn main() {
    let mut fed = Federation::german_deployment(FederationConfig::default());

    // ---- Users: each site's UUDB maps the same DN to a different login --
    let users: Vec<String> = (0..8)
        .map(|i| format!("C=DE, O=GridUsers, OU=Science, CN=user{i:02}"))
        .collect();
    for (i, dn) in users.iter().enumerate() {
        fed.register_user(dn, &format!("u{i:02}"));
    }

    // ---- Background load on every machine (local batch jobs) ------------
    let rng = CryptoRng::from_u64(1999);
    let horizon = 2 * HOUR;
    let mut background_total = 0usize;
    for (site, vsite) in SITES {
        let (arch, nodes) = {
            let v = fed.server(site).unwrap().njs().vsite(vsite).unwrap();
            (v.batch.architecture(), v.batch.total_nodes())
        };
        let arrivals = generate_background(
            &WorkloadModel::moderate(),
            arch,
            nodes,
            horizon,
            &mut rng.fork(site),
        );
        background_total += arrivals.len();
        let server = fed.server_mut(site).unwrap();
        let batch = &mut server.njs_mut().vsite_mut(vsite).unwrap().batch;
        for a in &arrivals {
            batch.submit(a.spec.clone(), a.at).expect("background job");
        }
    }
    println!("injected {background_total} background batch jobs across 6 sites\n");

    // ---- UNICORE jobs: users submit multi-part work through any server --
    let mut submitted = Vec::new();
    for (i, dn) in users.iter().enumerate() {
        let (home, home_vsite) = SITES[i % 6];
        let (away, away_vsite) = SITES[(i + 2) % 6];
        let jpa = JobPreparationAgent::new(
            UserAttributes::new(dn.clone(), "users"),
            ResourceDirectory::new(),
        );
        // A two-site job: pre-processing away, main run at home.
        let mut prep = jpa.new_job(format!("prep-{i}"), VsiteAddress::new(away, away_vsite));
        prep.script_task(
            "preprocess",
            "sleep 120\nproduce grid.dat 65536\n",
            ResourceRequest::minimal()
                .with_processors(4)
                .with_run_time(1_800),
        );
        let mut main = jpa.new_job(format!("job-{i}"), VsiteAddress::new(home, home_vsite));
        let sub = main.sub_job(prep);
        let run = main.script_task(
            "main-simulation",
            "sleep 600\nproduce result.dat 1048576\n",
            ResourceRequest::minimal()
                .with_processors(16)
                .with_run_time(7_200),
        );
        main.after_with_files(sub, run, vec!["grid.dat".into()]);
        let job = main.build().expect("valid job");
        let corr = fed.client_submit(home, job, dn);
        submitted.push((corr, dn.clone(), home.to_owned(), i));
    }

    // ---- Run the grid ----------------------------------------------------
    fed.run_until(horizon);
    let mut job_ids = Vec::new();
    for (corr, dn, via, i) in &submitted {
        match fed.take_client_response(*corr) {
            Some(unicore::Response::Consigned { job }) => {
                job_ids.push((job, dn.clone(), via.clone(), *i))
            }
            other => println!("user{i:02}: consign failed: {other:?}"),
        }
    }
    // Let everything finish (up to 12 simulated hours — the SX-4 runs a
    // deep queue under this load).
    let end = fed.run_until_idle(12 * HOUR);
    println!("grid quiescent at t = {}\n", format_time(end));

    // ---- Report: per-site utilisation and queue behaviour ----------------
    println!(
        "{:<6} {:<14} {:>6} {:>10} {:>12} {:>12}",
        "site", "machine", "nodes", "jobs run", "utilisation", "median wait"
    );
    for (site, vsite) in SITES {
        let server = fed.server(site).unwrap();
        let v = server.njs().vsite(vsite).unwrap();
        let acc = v.batch.accounting();
        let mut waits: Vec<u64> = acc.iter().map(|r| r.wait_time()).collect();
        waits.sort_unstable();
        let median_wait = waits.get(waits.len() / 2).copied().unwrap_or(0);
        println!(
            "{:<6} {:<14} {:>6} {:>10} {:>11.1}% {:>12}",
            site,
            v.batch.architecture().display_name(),
            v.batch.total_nodes(),
            acc.len(),
            v.batch.utilization(end) * 100.0,
            format_time(median_wait),
        );
    }

    // ---- Report: UNICORE job outcomes -----------------------------------
    println!("\nUNICORE jobs:");
    let mut ok = 0;
    for (job, dn, via, i) in &job_ids {
        let server = fed.server(via).unwrap();
        let status = server
            .query(*job, dn, unicore_ajo::DetailLevel::JobOnly)
            .map(|o| o.status)
            .unwrap_or(ActionStatus::Pending);
        let turnaround = server.njs().turnaround(*job);
        println!(
            "  user{i:02} via {via}: {job} — {:?}{}",
            status,
            turnaround
                .map(|t| format!(" (turnaround {})", format_time(t)))
                .unwrap_or_default()
        );
        if status.is_success() {
            ok += 1;
        }
    }
    println!(
        "\n{ok}/{} UNICORE jobs successful; {} protocol messages, {} retries",
        job_ids.len(),
        fed.messages_sent,
        fed.retries
    );
    let _ = (MINUTE, SEC);
}
