//! Crash recovery: the server dies mid-job and comes back with nothing
//! lost.
//!
//! The NJS journals every job-state transition to a write-ahead spool
//! (`unicore-store`) before acting on it. This demo consigns two jobs,
//! pulls the plug while one is still in the batch queue, reboots the
//! machine (same disk, fresh process), replays the journal, and lets
//! the survivors finish — while the user's retried Consign is quietly
//! deduplicated instead of running the job twice.
//!
//! Run with: `cargo run -p unicore-examples --bin crash_recovery`

use unicore::protocol::{outcome_of, Request, Response};
use unicore::server::UnicoreServer;
use unicore_ajo::{DetailLevel, ResourceRequest, UserAttributes, VsiteAddress};
use unicore_client::JobPreparationAgent;
use unicore_gateway::{Gateway, UserEntry, Uudb};
use unicore_njs::{Njs, TranslationTable};
use unicore_resources::{deployment_page, Architecture, ResourceDirectory};
use unicore_sim::{format_time, SimTime, SEC};
use unicore_store::{EventStore, MemoryBackend};

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=Alice Example";

/// Builds the FZJ server against (a handle to) the persistent journal.
/// Rebuilding on the same backend is "rebooting with the disk intact".
fn boot_server(disk: &MemoryBackend) -> UnicoreServer {
    let mut njs = Njs::new("FZJ");
    njs.add_vsite(
        deployment_page("FZJ", "T3E", Architecture::CrayT3e),
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    njs.attach_store(EventStore::open(Box::new(disk.clone())).expect("journal opens"));
    let mut uudb = Uudb::new();
    uudb.add(DN, UserEntry::new("alice1", "users"));
    UnicoreServer::new(Gateway::new("FZJ", uudb), njs)
}

fn main() {
    let disk = MemoryBackend::new();
    let mut server = boot_server(&disk);

    // ---- Two jobs: a quick one and a longer pipeline --------------------
    let jpa = JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new());
    let mut quick = jpa.new_job("quick", VsiteAddress::new("FZJ", "T3E"));
    quick.script_task(
        "summarise",
        "sleep 20\nproduce summary.txt 256\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let quick = quick.build().unwrap();
    let mut long = jpa.new_job("pipeline", VsiteAddress::new("FZJ", "T3E"));
    let make = long.script_task(
        "make fields",
        "sleep 120\nproduce fields.grb 8192\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    let check = long.script_task(
        "verify fields",
        "sleep 30\necho verified\n",
        ResourceRequest::minimal().with_run_time(600),
    );
    long.after_with_files(make, check, vec!["fields.grb".into()]);
    let long = long.build().unwrap();

    let consign = |server: &mut UnicoreServer, ajo, now| match server.handle_request(
        DN,
        Request::Consign { ajo },
        now,
    ) {
        Response::Consigned { job } => job,
        other => panic!("consign failed: {other:?}"),
    };
    let quick_id = consign(&mut server, quick, 0);
    let long_id = consign(&mut server, long.clone(), 0);
    println!("consigned {quick_id} (quick) and {long_id} (pipeline); both journaled");

    // ---- Run until the quick job is done, the pipeline still going ------
    let mut now: SimTime = 0;
    while !server.is_done(quick_id) {
        now = server.next_event_time().unwrap_or(now + SEC);
        server.step(now);
    }
    println!(
        "t={}: {quick_id} finished, {long_id} still in the batch queue",
        format_time(now)
    );

    // ---- The machine dies -----------------------------------------------
    drop(server);
    println!(
        "t={}: power failure — server process gone",
        format_time(now)
    );

    // ---- Reboot: same disk, fresh process -------------------------------
    let mut server = boot_server(&disk);
    let report = server.recover(now).expect("journal replays");
    println!(
        "rebooted: recovered {} job(s) from the journal{}",
        report.jobs.len(),
        if report.torn_tail {
            " (torn tail repaired)"
        } else {
            ""
        },
    );

    // The user never saw the pipeline finish, so their client re-sends
    // the Consign. The journaled idempotency key maps it to the same
    // job — it is not submitted to batch a second time.
    let retry = consign(&mut server, long, now);
    assert_eq!(retry, long_id);
    println!("client retried the pipeline Consign → same {long_id}, no duplicate");

    // The finished job's outcome survived too.
    let data = match server.handle_request(
        DN,
        Request::FetchFile {
            job: quick_id,
            name: "summary.txt".into(),
        },
        now,
    ) {
        Response::FileData(d) => d,
        other => panic!("fetch failed: {other:?}"),
    };
    println!(
        "{quick_id}'s output survived the crash: summary.txt, {} bytes",
        data.len()
    );

    // ---- The pipeline resumes and completes -----------------------------
    while !server.is_done(long_id) {
        now = server.next_event_time().unwrap_or(now + SEC);
        server.step(now);
    }
    let resp = server.handle_request(
        DN,
        Request::Poll {
            job: long_id,
            detail: DetailLevel::Tasks,
        },
        now,
    );
    let outcome = outcome_of(&resp).expect("outcome");
    assert!(outcome.status.is_success());
    println!(
        "t={}: pipeline finished after the crash — status {:?}",
        format_time(now),
        outcome.status
    );
}
