//! An interactive console against the six-site German federation — the
//! closest thing to "being a UNICORE user" this reproduction offers.
//!
//! Commands (also printed by `help`):
//!
//! ```text
//! submit <site> <vsite> <procs> <secs>   consign a job; prints its id
//! status <site> <job>                    colour-coded JMC tree
//! list <site>                            your jobs at a site
//! files <site> <job>                     Uspace contents
//! fetch <site> <job> <name>              fetch a file (prints size)
//! abort <site> <job>                     abort a job
//! purge <site> <job>                     reclaim the job directory
//! broker <procs> <secs>                  ask the resource broker
//! run <sim-seconds>                      advance simulated time
//! report <site>                          site usage report
//! quit
//! ```
//!
//! Run with: `cargo run -p unicore-examples --bin console`
//! (pipe a script in for non-interactive use).

use std::io::BufRead;
use unicore::protocol::{outcome_of, Request, Response};
use unicore::{Federation, FederationConfig};
use unicore_ajo::{ControlOp, DetailLevel, ResourceRequest, UserAttributes, VsiteAddress};
use unicore_client::JobPreparationAgent;
use unicore_resources::ResourceDirectory;
use unicore_sim::{format_time, secs, MINUTE};

const DN: &str = "C=DE, O=Console, OU=Demo, CN=you";

fn main() {
    let mut fed = Federation::german_deployment(FederationConfig::default());
    fed.register_user(DN, "you");
    let jpa = JobPreparationAgent::new(UserAttributes::new(DN, "users"), ResourceDirectory::new());
    let mut job_count = 0u64;
    // Remember submitted jobs' AJOs so `status` can render the tree.
    let mut known: Vec<(String, unicore_ajo::JobId, unicore_ajo::AbstractJob)> = Vec::new();

    println!("UNICORE console — six German sites online (type 'help')");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => {}
            ["help"] => {
                println!(
                    "submit <site> <vsite> <procs> <secs> | status <site> <job> | list <site>"
                );
                println!("files <site> <job> | fetch <site> <job> <name> | abort <site> <job>");
                println!("purge <site> <job> | broker <procs> <secs> | run <secs> | report <site> | quit");
                println!("sites: FZJ/T3E RUS/VPP RUKA/SP2 LRZ/SP2 ZIB/T3E DWD/SX4");
            }
            ["quit"] | ["exit"] => break,
            ["run", secs_str] => {
                let s: u64 = secs_str.parse().unwrap_or(60);
                fed.run_until(fed.now() + secs(s));
                println!("t = {}", format_time(fed.now()));
            }
            ["submit", site, vsite, procs, run_secs] => {
                job_count += 1;
                let procs: u32 = procs.parse().unwrap_or(1);
                let run_secs: u64 = run_secs.parse().unwrap_or(60);
                let mut b = jpa.new_job(
                    format!("console-{job_count}"),
                    VsiteAddress::new(*site, *vsite),
                );
                b.script_task(
                    "work",
                    format!("sleep {run_secs}\nproduce result.dat 4096\n"),
                    ResourceRequest::minimal()
                        .with_processors(procs)
                        .with_run_time(run_secs * 2),
                );
                match b.build() {
                    Ok(ajo) => {
                        let corr = fed.client_submit(site, ajo.clone(), DN);
                        fed.run_until(fed.now() + MINUTE);
                        match fed.take_client_response(corr) {
                            Some(Response::Consigned { job }) => {
                                println!("consigned {job} at {site}");
                                known.push((site.to_string(), job, ajo));
                            }
                            other => println!("refused: {other:?}"),
                        }
                    }
                    Err(e) => println!("invalid job: {e}"),
                }
            }
            ["status", site, job] => {
                let Ok(id) = job.trim_start_matches('J').parse::<u64>() else {
                    println!("bad job id");
                    continue;
                };
                let corr = fed.client_poll(site, DN, unicore_ajo::JobId(id), DetailLevel::Tasks);
                fed.run_until(fed.now() + MINUTE);
                match fed.take_client_response(corr) {
                    Some(resp) => match outcome_of(&resp) {
                        Some(outcome) => {
                            let ajo = known
                                .iter()
                                .find(|(s, j, _)| s == site && j.0 == id)
                                .map(|(_, _, a)| a);
                            match ajo {
                                Some(ajo) => print!(
                                    "{}",
                                    unicore_client::render(&unicore_client::status_rows(
                                        ajo, outcome
                                    ))
                                ),
                                None => println!("status: {:?}", outcome.status),
                            }
                        }
                        None => println!("{resp:?}"),
                    },
                    None => println!("(no answer yet — try 'run 60')"),
                }
            }
            ["list", site] => {
                let corr = fed.client_request(site, DN, Request::List);
                fed.run_until(fed.now() + MINUTE);
                match fed.take_client_response(corr) {
                    Some(resp) => match unicore::list_jobs_of(&resp) {
                        Some(jobs) if !jobs.is_empty() => {
                            for j in jobs {
                                println!("  {} {} — {:?}", j.job, j.name, j.status);
                            }
                        }
                        _ => println!("(no jobs)"),
                    },
                    None => println!("(no answer yet)"),
                }
            }
            ["files", site, job] => {
                let Ok(id) = job.trim_start_matches('J').parse::<u64>() else {
                    continue;
                };
                let corr = fed.client_request(
                    site,
                    DN,
                    Request::ListFiles {
                        job: unicore_ajo::JobId(id),
                    },
                );
                fed.run_until(fed.now() + MINUTE);
                match fed.take_client_response(corr) {
                    Some(Response::FileNames(names)) => {
                        for n in names {
                            println!("  {n}");
                        }
                    }
                    other => println!("{other:?}"),
                }
            }
            ["fetch", site, job, name] => {
                let Ok(id) = job.trim_start_matches('J').parse::<u64>() else {
                    continue;
                };
                let corr = fed.client_fetch(site, DN, unicore_ajo::JobId(id), name);
                fed.run_until(fed.now() + MINUTE);
                match fed.take_client_response(corr) {
                    Some(Response::FileData(data)) => {
                        println!("fetched {name}: {} bytes", data.len())
                    }
                    other => println!("{other:?}"),
                }
            }
            ["abort", site, job] => {
                let Ok(id) = job.trim_start_matches('J').parse::<u64>() else {
                    continue;
                };
                let corr = fed.client_control(site, DN, unicore_ajo::JobId(id), ControlOp::Abort);
                fed.run_until(fed.now() + MINUTE);
                println!("{:?}", fed.take_client_response(corr));
            }
            ["purge", site, job] => {
                let Ok(id) = job.trim_start_matches('J').parse::<u64>() else {
                    continue;
                };
                let corr = fed.client_request(
                    site,
                    DN,
                    Request::Purge {
                        job: unicore_ajo::JobId(id),
                    },
                );
                fed.run_until(fed.now() + MINUTE);
                println!("{:?}", fed.take_client_response(corr));
            }
            ["broker", procs, run_secs] => {
                let request = ResourceRequest::minimal()
                    .with_processors(procs.parse().unwrap_or(1))
                    .with_run_time(run_secs.parse().unwrap_or(600));
                match fed.broker_choose(&request) {
                    Some(choice) => println!(
                        "broker suggests {} (immediate start: {})",
                        choice.vsite, choice.immediate
                    ),
                    None => println!("no admissible Vsite"),
                }
            }
            ["report", site] => match fed.server(site) {
                Some(server) => print!("{}", server.njs().usage_report().render()),
                None => println!("unknown site"),
            },
            other => println!("unknown command {other:?} — try 'help'"),
        }
    }
    println!(
        "goodbye (simulated time reached {})",
        format_time(fed.now())
    );
}
