#!/bin/sh
# CI gate: formatting, lints (warnings are errors), tier-1 build + tests.
# All cargo invocations run offline; every dependency is vendored or
# shimmed in-tree (see shims/).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "==> telemetry unit tests"
cargo test -q --offline -p unicore-telemetry

echo "==> monitoring plane tests"
cargo test -q --offline -p unicore-integration-tests --test monitor_grid
cargo test -q --offline -p unicore-client monitor
cargo test -q --offline -p unicore --test prop_protocol

echo "==> grid aggregation plane: tree/delta/push unit suites"
cargo test -q --offline -p unicore --lib grid

echo "==> snapshot algebra proptests (merge/delta laws)"
cargo test -q --offline -p unicore-telemetry --test prop_aggregate

echo "==> grid scale: 100-Usite aggregation plane"
cargo test -q --offline -p unicore-integration-tests --test gridscale

echo "==> SLO alert log: chaos replays byte-identical (seeds 1, 7, 23)"
cargo test -q --offline -p unicore-integration-tests --test chaos chaos_replays_alert_log_byte_identical

echo "==> codec single-pass/recursive DER equivalence"
cargo test -q --offline -p unicore-codec --test prop_encode_equiv

echo "==> chaos soak suite (seeds 1, 7, 23 x every fault class)"
cargo test -q --offline -p unicore-integration-tests --test chaos

echo "==> data plane: unit + property suites"
cargo test -q --offline -p unicore-dataplane

echo "==> data plane: chunked transfers resume byte-identical under chaos"
cargo test -q --offline -p unicore-integration-tests --test chaos dataplane

echo "==> peer-consign idempotency proptests"
cargo test -q --offline -p unicore --test prop_peer_consign

echo "==> retry-counter gate (telemetry must account for every retry)"
cargo test -q --offline -p unicore --test federation_tests backoff_bounds_time_to_unreachable_verdict
cargo test -q --offline -p unicore --test federation_tests dead_peer_is_quarantined_then_probed_back_in

echo "==> broker: unit + property suites"
cargo test -q --offline -p unicore-broker
cargo test -q --offline -p unicore-broker --test prop_broker
cargo test -q --offline -p unicore-resources --test prop_page

echo "==> broker: chaos retarget soak (seeds 1, 7, 23 x quarantined/dark)"
cargo test -q --offline -p unicore-integration-tests --test broker

echo "==> sharded NJS: determinism suite (byte-identity across shard/worker counts, WAL replay, crash mid-step, chaos seeds)"
cargo test -q --offline -p unicore-integration-tests --test sharded

echo "==> transport resumption: handshake + ticket/cache property suites"
cargo test -q --offline -p unicore-transport
cargo test -q --offline -p unicore-transport --test prop_resumption

echo "==> gateway front door: resumption, rate limiting, revocation, mux"
cargo test -q --offline -p unicore-gateway
cargo test -q --offline -p unicore-gateway --test front_door_tests

echo "==> churn/abuse soak (seeds 1, 7, 23: reconnect storms, expiry, revocation, rate limits)"
cargo test -q --offline -p unicore-integration-tests --test churn

echo "==> benches compile"
cargo bench --offline --no-run

echo "==> e12 gates: sharded throughput >= 10k jobs/sec, no federated regression, telemetry overhead < 5% under sharding"
cargo bench -q --offline -p unicore-bench --bench e12_throughput -- skip_micro_benches
grep -q '"verdict_sharded": "PASS"' BENCH_e12_throughput.json
grep -q '"verdict_federated": "PASS"' BENCH_e12_throughput.json
grep -q '"verdict_telemetry": "PASS"' BENCH_e12_throughput.json

echo "==> e17 gate: resumed handshake >= 5x faster than full at p50 (bench exits nonzero on FAIL)"
cargo bench -q --offline -p unicore-bench --bench e17_churn -- skip_micro_benches
grep -q '"verdict_resumption": "PASS"' BENCH_e17_churn.json

echo "==> rustdoc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "CI green."
