//! RSA key generation, signing and verification (PKCS#1 v1.5-style
//! deterministic padding over SHA-256).
//!
//! This is the signature scheme behind every certificate in the workspace:
//! CA signatures on user/server/software certificates and the handshake
//! signatures proving key possession.

use crate::bignum::BigUint;
use crate::error::CryptoError;
use crate::prime::generate_prime;
use crate::rng::CryptoRng;
use crate::sha256::sha256;

/// Public exponent used for all generated keys (F4).
const PUBLIC_EXPONENT: u64 = 65537;

/// DER-ish prefix identifying "SHA-256 digest" inside the padded block,
/// mirroring the PKCS#1 DigestInfo role.
const DIGEST_INFO_PREFIX: &[u8] = &[
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// An RSA public key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RsaPublicKey {
    /// Modulus `n = p * q`.
    pub n: BigUint,
    /// Public exponent `e`.
    pub e: BigUint,
}

/// An RSA private key (with CRT parameters for fast signing).
#[derive(Clone)]
pub struct RsaPrivateKey {
    /// The matching public key.
    pub public: RsaPublicKey,
    /// Private exponent `d`.
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
}

/// An RSA key pair.
#[derive(Clone)]
pub struct RsaKeyPair {
    /// Public half.
    pub public: RsaPublicKey,
    /// Private half.
    pub private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Generates a key pair with a modulus of `modulus_bits` bits.
    ///
    /// # Panics
    /// Panics when `modulus_bits < 128` (too small even for tests).
    pub fn generate(modulus_bits: usize, rng: &mut CryptoRng) -> Self {
        assert!(modulus_bits >= 128, "RSA modulus too small");
        let half = modulus_bits / 2;
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = generate_prime(half, rng);
            let q = generate_prime(modulus_bits - half, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != modulus_bits {
                continue;
            }
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.modinv(&phi) else { continue };
            let d_p = d.rem(&p.sub(&one));
            let d_q = d.rem(&q.sub(&one));
            let Some(q_inv) = q.modinv(&p) else { continue };
            let public = RsaPublicKey { n, e: e.clone() };
            return RsaKeyPair {
                public: public.clone(),
                private: RsaPrivateKey {
                    public,
                    d,
                    p,
                    q,
                    d_p,
                    d_q,
                    q_inv,
                },
            };
        }
    }
}

impl RsaPublicKey {
    /// Modulus size in bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Verifies a signature over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::BadSignature);
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_big(&self.n) != core::cmp::Ordering::Less {
            return Err(CryptoError::BadSignature);
        }
        let em_int = s.modpow(&self.e, &self.n);
        let em = em_int
            .to_bytes_be_padded(k)
            .ok_or(CryptoError::BadSignature)?;
        let expected = pad_digest(message, k)?;
        if crate::ct::ct_eq(&em, &expected) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Raw public-key operation (used by the transport handshake to encrypt
    /// the pre-master secret in RSA-key-exchange mode).
    pub fn raw_encrypt(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m.cmp_big(&self.n) != core::cmp::Ordering::Less {
            return Err(CryptoError::MessageTooLong);
        }
        Ok(m.modpow(&self.e, &self.n))
    }
}

impl RsaPrivateKey {
    /// Signs `message` (SHA-256 + deterministic type-1 padding).
    pub fn sign(&self, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em = pad_digest(message, k)?;
        let m = BigUint::from_bytes_be(&em);
        let s = self.private_op(&m);
        s.to_bytes_be_padded(k).ok_or(CryptoError::Internal)
    }

    /// Raw private-key operation with CRT acceleration.
    pub fn raw_decrypt(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c.cmp_big(&self.public.n) != core::cmp::Ordering::Less {
            return Err(CryptoError::MessageTooLong);
        }
        Ok(self.private_op(c))
    }

    fn private_op(&self, m: &BigUint) -> BigUint {
        // CRT: m1 = m^dP mod p, m2 = m^dQ mod q,
        //      h = qInv (m1 - m2) mod p, result = m2 + h q.
        let m1 = m.modpow(&self.d_p, &self.p);
        let m2 = m.modpow(&self.d_q, &self.q);
        let diff = if m1.cmp_big(&m2) != core::cmp::Ordering::Less {
            m1.sub(&m2)
        } else {
            // (m1 - m2) mod p with m1 < m2: add enough multiples of p.
            let (q_over_p, _) = m2.sub(&m1).divrem(&self.p);
            let bump = q_over_p.add(&BigUint::one()).mul(&self.p);
            m1.add(&bump).sub(&m2)
        };
        let h = diff.rem(&self.p).mul_mod(&self.q_inv, &self.p);
        m2.add(&h.mul(&self.q))
    }

    /// The private exponent (exposed for serialisation by `unicore-certs`).
    pub fn d(&self) -> &BigUint {
        &self.d
    }
}

/// EMSA-PKCS1-v1_5 style encoding: `0x00 0x01 FF.. 0x00 DigestInfo digest`.
fn pad_digest(message: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = sha256(message);
    let t_len = DIGEST_INFO_PREFIX.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::KeyTooSmall);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(DIGEST_INFO_PREFIX);
    em.extend_from_slice(&digest);
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair() -> RsaKeyPair {
        // 512-bit keys keep the test suite fast; size is asserted elsewhere.
        RsaKeyPair::generate(512, &mut CryptoRng::from_u64(99))
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = keypair();
        let msg = b"the unicore abstract job object";
        let sig = kp.private.sign(msg).unwrap();
        assert_eq!(sig.len(), kp.public.modulus_len());
        kp.public.verify(msg, &sig).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = keypair();
        let sig = kp.private.sign(b"message A").unwrap();
        assert!(kp.public.verify(b"message B", &sig).is_err());
    }

    #[test]
    fn verify_rejects_bit_flip() {
        let kp = keypair();
        let mut sig = kp.private.sign(b"payload").unwrap();
        sig[10] ^= 0x01;
        assert!(kp.public.verify(b"payload", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = keypair();
        let kp2 = RsaKeyPair::generate(512, &mut CryptoRng::from_u64(100));
        let sig = kp1.private.sign(b"payload").unwrap();
        assert!(kp2.public.verify(b"payload", &sig).is_err());
    }

    #[test]
    fn verify_rejects_truncated_signature() {
        let kp = keypair();
        let sig = kp.private.sign(b"payload").unwrap();
        assert!(kp.public.verify(b"payload", &sig[..sig.len() - 1]).is_err());
    }

    #[test]
    fn raw_encrypt_decrypt_round_trip() {
        let kp = keypair();
        let m = BigUint::from_hex("123456789abcdef0fedcba987654321").unwrap();
        let c = kp.public.raw_encrypt(&m).unwrap();
        assert_ne!(c, m);
        assert_eq!(kp.private.raw_decrypt(&c).unwrap(), m);
    }

    #[test]
    fn raw_encrypt_rejects_oversized_message() {
        let kp = keypair();
        let too_big = kp.public.n.add(&BigUint::one());
        assert!(kp.public.raw_encrypt(&too_big).is_err());
    }

    #[test]
    fn keygen_is_deterministic_per_seed() {
        let a = RsaKeyPair::generate(512, &mut CryptoRng::from_u64(4));
        let b = RsaKeyPair::generate(512, &mut CryptoRng::from_u64(4));
        assert_eq!(a.public, b.public);
    }

    #[test]
    fn modulus_has_requested_size() {
        let kp = keypair();
        assert_eq!(kp.public.n.bit_len(), 512);
        assert_eq!(kp.public.modulus_len(), 64);
    }

    #[test]
    fn empty_message_signs() {
        let kp = keypair();
        let sig = kp.private.sign(b"").unwrap();
        kp.public.verify(b"", &sig).unwrap();
    }
}
