//! Constant-time helpers.

/// Constant-time equality for byte slices.
///
/// Runs in time dependent only on the *lengths* of the inputs (a length
/// mismatch returns `false` immediately, which leaks only the length — the
/// standard trade-off for MAC comparison).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse without a data-dependent branch: the subtraction borrows out
    // of the low byte iff diff == 0.
    ((diff as u16).wrapping_sub(1) >> 8) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"x"));
        // Difference only in the final byte.
        let mut a = vec![7u8; 100];
        let b = a.clone();
        a[99] ^= 0x80;
        assert!(!ct_eq(&a, &b));
    }
}
