//! Arbitrary-precision unsigned integer arithmetic.
//!
//! `BigUint` stores magnitude as little-endian `u64` limbs with no trailing
//! zero limbs (the canonical form; zero is the empty limb vector). The
//! operations provided are exactly those required by the RSA / Diffie-Hellman
//! implementations in this crate: schoolbook and Karatsuba multiplication,
//! Knuth Algorithm D division, Montgomery modular exponentiation for odd
//! moduli, and the extended Euclidean algorithm for modular inverses.

use core::cmp::Ordering;
use core::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Little-endian limb order; the invariant `limbs.last() != Some(&0)` holds
/// after every public operation.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Builds from big-endian bytes (leading zeros permitted).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialises to big-endian bytes with no leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most-significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialises to exactly `len` big-endian bytes, left-padding with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        if s.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut i = 0;
        // Handle an odd leading nibble.
        if chars.len() % 2 == 1 {
            bytes.push(hex_val(chars[0])?);
            i = 1;
        }
        while i < chars.len() {
            let hi = hex_val(chars[i])?;
            let lo = hex_val(chars[i + 1])?;
            bytes.push((hi << 4) | lo);
            i += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Lower-case hexadecimal rendering with no leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// True for the canonical zero value.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True when the low bit is clear (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True when the value equals one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (false beyond the top bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i`, growing as needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / 64;
        let off = i % 64;
        if limb >= self.limbs.len() {
            if !value {
                return;
            }
            self.limbs.resize(limb + 1, 0);
        }
        if value {
            self.limbs[limb] |= 1 << off;
        } else {
            self.limbs[limb] &= !(1 << off);
        }
        self.normalize();
    }

    /// Number of limbs in canonical form.
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// The value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Sum of `self` and `other`.
    #[allow(clippy::needless_range_loop)] // index drives two slices at once
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for i in 0..longer.len() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (s1, c1) = longer[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Difference `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self`; the callers in this crate always guarantee
    /// the ordering.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Checked subtraction: `None` when `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_big(other) == Ordering::Less {
            None
        } else {
            Some(self.sub(other))
        }
    }

    /// Total-order comparison.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Product of `self` and `other`.
    ///
    /// Uses schoolbook multiplication for small operands and Karatsuba
    /// above an empirically chosen limb threshold.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let n = self.limbs.len().min(other.limbs.len());
        if n < KARATSUBA_THRESHOLD {
            self.mul_schoolbook(other)
        } else {
            self.mul_karatsuba(other)
        }
    }

    fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let split = self.limbs.len().max(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at(split);
        let (b0, b1) = other.split_at(split);
        let z0 = a0.mul(&b0);
        let z2 = a1.mul(&b1);
        let z1 = a0.add(&a1).mul(&b0.add(&b1)).sub(&z0).sub(&z2);
        z2.shl_limbs(2 * split).add(&z1.shl_limbs(split)).add(&z0)
    }

    fn split_at(&self, at: usize) -> (BigUint, BigUint) {
        if at >= self.limbs.len() {
            return (self.clone(), BigUint::zero());
        }
        let mut lo = BigUint {
            limbs: self.limbs[..at].to_vec(),
        };
        lo.normalize();
        let hi = BigUint {
            limbs: self.limbs[at..].to_vec(),
        };
        (lo, hi)
    }

    fn shl_limbs(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; n];
        limbs.extend_from_slice(&self.limbs);
        BigUint { limbs }
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Quotient and remainder (Knuth Algorithm D).
    ///
    /// # Panics
    /// Panics when `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_big(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }

        // Normalise so the top limb of the divisor has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let mut q_limbs = vec![0u64; m + 1];

        let v_hi = vn[n - 1] as u128;
        let v_next = vn[n - 2] as u128;

        for j in (0..=m).rev() {
            // Estimate q_hat = (un[j+n], un[j+n-1]) / v_hi.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut q_hat = num / v_hi;
            let mut r_hat = num % v_hi;
            while q_hat >> 64 != 0 || q_hat * v_next > ((r_hat << 64) | un[j + n - 2] as u128) {
                q_hat -= 1;
                r_hat += v_hi;
                if r_hat >> 64 != 0 {
                    break;
                }
            }

            // Multiply-and-subtract: un[j..j+n+1] -= q_hat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 - borrow;
                un[i + j] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;

            if t < 0 {
                // q_hat was one too large: add the divisor back.
                q_hat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q_limbs[j] = q_hat as u64;
        }

        let mut q = BigUint { limbs: q_limbs };
        q.normalize();
        un.truncate(n);
        let mut r = BigUint { limbs: un };
        r.normalize();
        (q, r.shr(shift))
    }

    /// Division by a single limb.
    pub fn divrem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        let mut q = BigUint { limbs: out };
        q.normalize();
        (q, rem as u64)
    }

    /// Remainder modulo `m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.divrem(m).1
    }

    /// Modular addition: `(self + other) mod m`; both inputs must be `< m`.
    pub fn add_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(other);
        if s.cmp_big(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// Modular multiplication via full product + reduction.
    pub fn mul_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses Montgomery exponentiation for odd moduli and plain
    /// square-and-multiply otherwise.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow: zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if !modulus.is_even() {
            return montgomery_modpow(self, exp, modulus);
        }
        // Generic path (rare in this codebase; used only for even moduli).
        let mut base = self.rem(modulus);
        let mut result = BigUint::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
            base = base.mul_mod(&base, modulus);
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid via divrem).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` modulo `m` (extended Euclid).
    ///
    /// Returns `None` when `gcd(self, m) != 1`.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Signed bookkeeping via (value, negative?) pairs.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = (BigUint::zero(), false);
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            // t2 = t0 - q * t1
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        let (mag, neg) = t0;
        let mag = mag.rem(m);
        if neg && !mag.is_zero() {
            Some(m.sub(&mag))
        } else {
            Some(mag)
        }
    }
}

/// Limb-count threshold below which schoolbook multiplication wins.
const KARATSUBA_THRESHOLD: usize = 24;

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Subtraction on sign-magnitude pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => match a.0.cmp_big(&b.0) {
            Ordering::Less => (b.0.sub(&a.0), true),
            _ => (a.0.sub(&b.0), false),
        },
        // (-a) - (-b) = b - a.
        (true, true) => match b.0.cmp_big(&a.0) {
            Ordering::Less => (a.0.sub(&b.0), true),
            _ => (b.0.sub(&a.0), false),
        },
        // a - (-b) = a + b.
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b).
        (true, false) => (a.0.add(&b.0), true),
    }
}

/// Montgomery context for a fixed odd modulus.
struct Montgomery<'a> {
    n: &'a BigUint,
    n_limbs: usize,
    /// -n^{-1} mod 2^64
    n_prime: u64,
    /// R^2 mod n, with R = 2^(64 * n_limbs)
    r2: BigUint,
}

impl<'a> Montgomery<'a> {
    fn new(n: &'a BigUint) -> Self {
        debug_assert!(!n.is_even() && !n.is_zero());
        let n0 = n.limbs[0];
        // Newton iteration for the inverse of n0 mod 2^64.
        let mut inv = n0; // correct mod 2^3
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        let n_limbs = n.limbs.len();
        // R^2 mod n computed as 2^(2 * 64 * n_limbs) mod n.
        let r2 = BigUint::one().shl(2 * 64 * n_limbs).rem(n);
        Montgomery {
            n,
            n_limbs,
            n_prime,
            r2,
        }
    }

    /// Montgomery product: `a * b * R^{-1} mod n` (CIOS method).
    #[allow(clippy::needless_range_loop)] // indices shift between t[j] and t[j-1]
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let s = self.n_limbs;
        let n = &self.n.limbs;
        let mut t = vec![0u64; s + 2];
        for i in 0..s {
            let ai = a.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..s {
                let bj = b.get(j).copied().unwrap_or(0);
                let cur = t[j] as u128 + ai as u128 * bj as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s] = cur as u64;
            t[s + 1] = t[s + 1].wrapping_add((cur >> 64) as u64);

            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let cur = t[0] as u128 + m as u128 * n[0] as u128;
            let mut carry = cur >> 64;
            for j in 1..s {
                let cur = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[s] as u128 + carry;
            t[s - 1] = cur as u64;
            let cur2 = t[s + 1] as u128 + (cur >> 64);
            t[s] = cur2 as u64;
            t[s + 1] = (cur2 >> 64) as u64;
        }
        t.truncate(s + 1);
        // Conditional final subtraction.
        let mut res = BigUint { limbs: t };
        res.normalize();
        if res.cmp_big(self.n) != Ordering::Less {
            res = res.sub(self.n);
        }
        let mut limbs = res.limbs;
        limbs.resize(s, 0);
        limbs
    }

    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let mut r2 = self.r2.limbs.clone();
        r2.resize(self.n_limbs, 0);
        let mut al = a.limbs.clone();
        al.resize(self.n_limbs, 0);
        self.mont_mul(&al, &r2)
    }

    #[allow(clippy::wrong_self_convention)] // converts *out of* Montgomery form
    fn from_mont(&self, a: &[u64]) -> BigUint {
        let one = {
            let mut v = vec![0u64; self.n_limbs];
            v[0] = 1;
            v
        };
        let limbs = self.mont_mul(a, &one);
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }
}

/// 4-bit fixed-window Montgomery exponentiation for odd moduli.
fn montgomery_modpow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    if exp.is_zero() {
        return BigUint::one().rem(modulus);
    }
    let ctx = Montgomery::new(modulus);
    let base_red = base.rem(modulus);
    let bm = ctx.to_mont(&base_red);

    // Precompute bm^0 .. bm^15 in Montgomery form.
    let one_m = ctx.to_mont(&BigUint::one());
    let mut table = Vec::with_capacity(16);
    table.push(one_m.clone());
    table.push(bm.clone());
    for i in 2..16 {
        let prev: &Vec<u64> = &table[i - 1];
        table.push(ctx.mont_mul(prev, &bm));
    }

    let bits = exp.bit_len();
    let windows = bits.div_ceil(4);
    let mut acc = one_m;
    for w in (0..windows).rev() {
        if w != windows - 1 {
            for _ in 0..4 {
                acc = ctx.mont_mul(&acc, &acc);
            }
        }
        let mut idx = 0usize;
        for b in 0..4 {
            let bit_index = w * 4 + (3 - b);
            idx <<= 1;
            if exp.bit(bit_index) {
                idx |= 1;
            }
        }
        if idx != 0 {
            acc = ctx.mont_mul(&acc, &table[idx]);
        }
    }
    ctx.from_mont(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn hex_round_trip() {
        for h in ["1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"] {
            assert_eq!(n(h).to_hex(), h);
        }
        assert_eq!(BigUint::zero().to_hex(), "0");
        // Leading zeros are dropped.
        assert_eq!(n("000ff").to_hex(), "ff");
    }

    #[test]
    fn bytes_round_trip() {
        let v = n("0102030405060708090a0b0c0d0e0f10");
        assert_eq!(
            v.to_bytes_be(),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]
        );
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 5]), BigUint::from_u64(5));
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0x0102);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 1, 2]);
        assert!(v.to_bytes_be_padded(1).is_none());
        assert_eq!(BigUint::zero().to_bytes_be_padded(2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn add_sub_inverse() {
        let a = n("ffffffffffffffffffffffffffffffff");
        let b = n("1");
        let s = a.add(&b);
        assert_eq!(s.to_hex(), "100000000000000000000000000000000");
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn checked_sub_none_on_underflow() {
        assert!(BigUint::one().checked_sub(&BigUint::from_u64(2)).is_none());
        assert_eq!(
            BigUint::from_u64(5)
                .checked_sub(&BigUint::from_u64(2))
                .unwrap(),
            BigUint::from_u64(3)
        );
    }

    #[test]
    fn mul_small() {
        assert_eq!(
            BigUint::from_u64(0xffff_ffff).mul(&BigUint::from_u64(0xffff_ffff)),
            BigUint::from_u64(0xffff_fffe_0000_0001)
        );
        assert_eq!(BigUint::zero().mul(&BigUint::from_u64(7)), BigUint::zero());
    }

    #[test]
    fn mul_cross_limb() {
        let a = n("ffffffffffffffff"); // 2^64 - 1
        let sq = a.mul(&a);
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Values big enough to trigger the Karatsuba path.
        let a = BigUint {
            limbs: (1..60u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
                .collect(),
        };
        let b = BigUint {
            limbs: (1..55u64)
                .map(|i| i.wrapping_mul(0xbf58476d1ce4e5b9))
                .collect(),
        };
        assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
    }

    #[test]
    fn shifts() {
        let a = n("1");
        assert_eq!(a.shl(130).to_hex(), "400000000000000000000000000000000");
        assert_eq!(a.shl(130).shr(130), a);
        assert_eq!(a.shr(1), BigUint::zero());
        let b = n("deadbeefcafebabe1234");
        assert_eq!(b.shl(67).shr(67), b);
    }

    #[test]
    fn divrem_simple() {
        let (q, r) = BigUint::from_u64(100).divrem(&BigUint::from_u64(7));
        assert_eq!(q, BigUint::from_u64(14));
        assert_eq!(r, BigUint::from_u64(2));
    }

    #[test]
    fn divrem_multi_limb() {
        let a = n("123456789abcdef0123456789abcdef0123456789abcdef");
        let b = n("fedcba9876543210f");
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_big(&b) == Ordering::Less);
    }

    #[test]
    fn divrem_divisor_larger() {
        let a = n("5");
        let b = n("123456789abcdef01");
        let (q, r) = a.divrem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn divrem_equal_operands() {
        let a = n("123456789abcdef0123456789");
        let (q, r) = a.divrem(&a);
        assert!(q.is_one());
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        BigUint::one().divrem(&BigUint::zero());
    }

    #[test]
    fn modpow_small_values() {
        // 3^4 mod 5 = 81 mod 5 = 1
        let r = BigUint::from_u64(3).modpow(&BigUint::from_u64(4), &BigUint::from_u64(5));
        assert_eq!(r, BigUint::from_u64(1));
        // 2^10 mod 1000 = 24
        let r = BigUint::from_u64(2).modpow(&BigUint::from_u64(10), &BigUint::from_u64(1000));
        assert_eq!(r, BigUint::from_u64(24));
    }

    #[test]
    fn modpow_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(123_456_789);
        let r = a.modpow(&p.sub(&BigUint::one()), &p);
        assert!(r.is_one());
    }

    #[test]
    fn modpow_large_odd_modulus() {
        // Check Montgomery path against the generic path on an odd modulus.
        let m = n("f0000000000000000000000000000001d"); // odd
        let base = n("abcdef0123456789abcdef");
        let e = n("10001");
        let mont = base.modpow(&e, &m);
        // Generic reference: repeated square-and-multiply via mul_mod.
        let mut acc = BigUint::one();
        let mut b = base.rem(&m);
        for i in 0..e.bit_len() {
            if e.bit(i) {
                acc = acc.mul_mod(&b, &m);
            }
            b = b.mul_mod(&b, &m);
        }
        assert_eq!(mont, acc);
    }

    #[test]
    fn modpow_exponent_zero_and_one() {
        let m = n("10001");
        let b = n("1234");
        assert!(b.modpow(&BigUint::zero(), &m).is_one());
        assert_eq!(b.modpow(&BigUint::one(), &m), b.rem(&m));
    }

    #[test]
    fn modpow_modulus_one() {
        assert!(BigUint::from_u64(7)
            .modpow(&BigUint::from_u64(3), &BigUint::one())
            .is_zero());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::from_u64(48).gcd(&BigUint::from_u64(18)),
            BigUint::from_u64(6)
        );
        assert_eq!(
            BigUint::from_u64(17).gcd(&BigUint::from_u64(13)),
            BigUint::one()
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from_u64(5)),
            BigUint::from_u64(5)
        );
    }

    #[test]
    fn modinv_small() {
        // 3 * 7 = 21 = 1 mod 10
        let inv = BigUint::from_u64(3).modinv(&BigUint::from_u64(10)).unwrap();
        assert_eq!(inv, BigUint::from_u64(7));
        // gcd(4, 10) = 2: no inverse.
        assert!(BigUint::from_u64(4)
            .modinv(&BigUint::from_u64(10))
            .is_none());
    }

    #[test]
    fn modinv_large() {
        let m = n("fffffffffffffffffffffffffffffffeffffffffffffffff"); // odd, large
        let a = n("deadbeefcafebabe123456789");
        if let Some(inv) = a.modinv(&m) {
            assert!(a.mul_mod(&inv, &m).is_one());
        } else {
            panic!("expected an inverse");
        }
    }

    #[test]
    fn bit_access() {
        let mut v = BigUint::zero();
        v.set_bit(100, true);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert_eq!(v.bit_len(), 101);
        v.set_bit(100, false);
        assert!(v.is_zero());
    }

    #[test]
    fn display_formats() {
        let v = n("ff");
        assert_eq!(format!("{v}"), "0xff");
        assert_eq!(format!("{v:?}"), "BigUint(0xff)");
    }
}
