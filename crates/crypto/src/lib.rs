//! # unicore-crypto
//!
//! From-scratch cryptographic primitives for the UNICORE reproduction:
//! arbitrary-precision arithmetic, SHA-256, HMAC/HKDF, ChaCha20, RSA
//! signatures, finite-field Diffie-Hellman, and a deterministic CSPRNG.
//!
//! The 1999 UNICORE system rested on https/SSL with X.509 certificates
//! (section 5.2 of the paper). The workspace's allowed dependency set has no
//! cryptography crates, so this crate implements the primitives those
//! protocols need. The implementations follow the published algorithms and
//! pass the standard test vectors, but they are **not hardened against
//! side channels** beyond constant-time MAC comparison — this is a research
//! reproduction, not a security product.
//!
//! Module map:
//! - [`bignum`] — `BigUint` with Knuth division and Montgomery modpow
//! - [`prime`] — Miller–Rabin and prime generation
//! - [`rsa`] — key generation, PKCS#1-style sign/verify
//! - [`dh`] — classic Diffie-Hellman (Oakley Group 2)
//! - [`mod@sha256`], [`hmac`] — digest, MAC, HKDF
//! - [`chacha20`] — stream cipher for record protection
//! - [`rng`] — deterministic ChaCha-based CSPRNG
//! - [`ct`] — constant-time comparison

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bignum;
pub mod chacha20;
pub mod ct;
pub mod dh;
pub mod error;
pub mod hmac;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha256;

pub use bignum::BigUint;
pub use chacha20::ChaCha20;
pub use ct::ct_eq;
pub use dh::{DhEphemeral, DhGroup};
pub use error::CryptoError;
pub use hmac::{hkdf_expand, hkdf_extract, hmac_sha256, HmacSha256};
pub use prime::{generate_prime, is_probable_prime};
pub use rng::CryptoRng;
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use sha256::{sha256, Sha256};
