//! Classic finite-field Diffie-Hellman key agreement.
//!
//! The transport handshake uses ephemeral DH over the well-known Oakley
//! Group 2 (RFC 2409, 1024-bit MODP) to derive session keys, with RSA
//! certificate signatures providing authentication.

use crate::bignum::BigUint;
use crate::error::CryptoError;
use crate::rng::CryptoRng;

/// 1024-bit MODP prime from RFC 2409 (Oakley Group 2).
const OAKLEY_GROUP2_PRIME: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1\
29024E088A67CC74020BBEA63B139B22514A08798E3404DD\
EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245\
E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381\
FFFFFFFFFFFFFFFF";

/// A Diffie-Hellman group (prime modulus and generator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DhGroup {
    /// Prime modulus.
    pub p: BigUint,
    /// Generator.
    pub g: BigUint,
}

impl DhGroup {
    /// The standard 1024-bit Oakley Group 2 used by the transport layer.
    pub fn oakley_group2() -> Self {
        DhGroup {
            p: BigUint::from_hex(OAKLEY_GROUP2_PRIME).expect("constant prime parses"),
            g: BigUint::from_u64(2),
        }
    }

    /// A tiny toy group (p = 23, g = 5) — fast and NOT secure, unit tests only.
    pub fn test_group() -> Self {
        DhGroup {
            p: BigUint::from_u64(23),
            g: BigUint::from_u64(5),
        }
    }

    /// Samples a private exponent in `[2, p-2]`.
    pub fn sample_private(&self, rng: &mut CryptoRng) -> BigUint {
        let bits = self.p.bit_len().max(16);
        loop {
            let bytes = rng.bytes(bits.div_ceil(8));
            let x = BigUint::from_bytes_be(&bytes).rem(&self.p);
            if !x.is_zero() && !x.is_one() {
                return x;
            }
        }
    }

    /// Computes the public value `g^x mod p`.
    pub fn public_value(&self, private: &BigUint) -> BigUint {
        self.g.modpow(private, &self.p)
    }

    /// Computes the shared secret `peer^x mod p`, validating the peer value.
    pub fn shared_secret(
        &self,
        private: &BigUint,
        peer_public: &BigUint,
    ) -> Result<BigUint, CryptoError> {
        // Reject degenerate peer values (0, 1, p-1, >= p).
        if peer_public.is_zero() || peer_public.is_one() {
            return Err(CryptoError::InvalidDhPublic);
        }
        if peer_public.cmp_big(&self.p) != core::cmp::Ordering::Less {
            return Err(CryptoError::InvalidDhPublic);
        }
        let p_minus_1 = self.p.sub(&BigUint::one());
        if *peer_public == p_minus_1 {
            return Err(CryptoError::InvalidDhPublic);
        }
        Ok(peer_public.modpow(private, &self.p))
    }
}

/// One side's ephemeral DH state.
pub struct DhEphemeral {
    group: DhGroup,
    private: BigUint,
    /// The public value to send to the peer.
    pub public: BigUint,
}

impl DhEphemeral {
    /// Generates a fresh ephemeral key in `group`.
    pub fn generate(group: DhGroup, rng: &mut CryptoRng) -> Self {
        let private = group.sample_private(rng);
        let public = group.public_value(&private);
        DhEphemeral {
            group,
            private,
            public,
        }
    }

    /// Completes the agreement against the peer's public value.
    pub fn agree(&self, peer_public: &BigUint) -> Result<Vec<u8>, CryptoError> {
        let secret = self.group.shared_secret(&self.private, peer_public)?;
        // Fixed-width encoding so both sides derive identical bytes.
        let len = self.group.p.bit_len().div_ceil(8);
        secret.to_bytes_be_padded(len).ok_or(CryptoError::Internal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oakley_group_parses() {
        let g = DhGroup::oakley_group2();
        assert_eq!(g.p.bit_len(), 1024);
        assert_eq!(g.g, BigUint::from_u64(2));
        assert!(!g.p.is_even());
    }

    #[test]
    fn agreement_produces_shared_secret() {
        let group = DhGroup::oakley_group2();
        let mut rng = CryptoRng::from_u64(1);
        let alice = DhEphemeral::generate(group.clone(), &mut rng);
        let bob = DhEphemeral::generate(group, &mut rng);
        let s1 = alice.agree(&bob.public).unwrap();
        let s2 = bob.agree(&alice.public).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 128);
    }

    #[test]
    fn different_sessions_different_secrets() {
        let group = DhGroup::oakley_group2();
        let mut rng = CryptoRng::from_u64(2);
        let a1 = DhEphemeral::generate(group.clone(), &mut rng);
        let b1 = DhEphemeral::generate(group.clone(), &mut rng);
        let a2 = DhEphemeral::generate(group.clone(), &mut rng);
        let b2 = DhEphemeral::generate(group, &mut rng);
        assert_ne!(a1.agree(&b1.public).unwrap(), a2.agree(&b2.public).unwrap());
    }

    #[test]
    fn degenerate_peer_values_rejected() {
        let group = DhGroup::oakley_group2();
        let mut rng = CryptoRng::from_u64(3);
        let alice = DhEphemeral::generate(group.clone(), &mut rng);
        assert!(alice.agree(&BigUint::zero()).is_err());
        assert!(alice.agree(&BigUint::one()).is_err());
        assert!(alice.agree(&group.p).is_err());
        assert!(alice.agree(&group.p.sub(&BigUint::one())).is_err());
    }

    #[test]
    fn small_group_agreement() {
        let group = DhGroup::test_group();
        let mut rng = CryptoRng::from_u64(4);
        let alice = DhEphemeral::generate(group.clone(), &mut rng);
        let bob = DhEphemeral::generate(group, &mut rng);
        assert_eq!(
            alice.agree(&bob.public).unwrap(),
            bob.agree(&alice.public).unwrap()
        );
    }
}
