//! Probabilistic primality testing and random prime generation
//! (Miller–Rabin with trial division pre-filtering).

use crate::bignum::BigUint;
use crate::rng::CryptoRng;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Number of Miller–Rabin witness rounds (error probability ≤ 4^-24).
const MR_ROUNDS: usize = 24;

/// Probabilistic primality test.
///
/// Deterministically correct for all inputs below 2^64 thanks to trial
/// division plus fixed small witnesses; probabilistic (Miller–Rabin with
/// `rng`-drawn witnesses) above.
pub fn is_probable_prime(n: &BigUint, rng: &mut CryptoRng) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        match n.cmp_big(&pb) {
            core::cmp::Ordering::Equal => return true,
            core::cmp::Ordering::Less => return false,
            core::cmp::Ordering::Greater => {}
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MR_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random witnesses.
fn miller_rabin(n: &BigUint, rounds: usize, rng: &mut CryptoRng) -> bool {
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    let n_minus_1 = n.sub(&one);

    // Write n-1 = d * 2^r with d odd.
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while d.is_even() {
        d = d.shr(1);
        r += 1;
    }

    'witness: for _ in 0..rounds {
        let a = random_in_range(&two, &n_minus_1, rng);
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Uniform random value in `[low, high)` (both exclusive bound semantics as
/// needed by Miller–Rabin witnesses).
fn random_in_range(low: &BigUint, high: &BigUint, rng: &mut CryptoRng) -> BigUint {
    debug_assert!(low.cmp_big(high) == core::cmp::Ordering::Less);
    let span = high.sub(low);
    let byte_len = span.bit_len().div_ceil(8);
    loop {
        let mut bytes = rng.bytes(byte_len.max(1));
        // Mask the top byte so the rejection rate stays below 50%.
        let excess_bits = byte_len * 8 - span.bit_len();
        if byte_len > 0 && excess_bits > 0 {
            bytes[0] &= 0xff >> excess_bits;
        }
        let candidate = BigUint::from_bytes_be(&bytes);
        if candidate.cmp_big(&span) == core::cmp::Ordering::Less {
            return low.add(&candidate);
        }
    }
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// The top two bits are forced to 1 (so RSA moduli built from two such
/// primes have exactly `2 * bits` bits) and the low bit is forced to 1.
///
/// # Panics
/// Panics when `bits < 8`.
pub fn generate_prime(bits: usize, rng: &mut CryptoRng) -> BigUint {
    assert!(bits >= 8, "prime size too small");
    loop {
        let mut bytes = rng.bytes(bits.div_ceil(8));
        // Trim to exactly `bits` bits.
        let excess = bytes.len() * 8 - bits;
        bytes[0] &= 0xff >> excess;
        let mut candidate = BigUint::from_bytes_be(&bytes);
        candidate.set_bit(bits - 1, true);
        candidate.set_bit(bits - 2, true);
        candidate.set_bit(0, true);
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a "safe prime" `p = 2q + 1` where `q` is also prime.
///
/// Used for Diffie-Hellman group generation in tests; slow for large sizes,
/// so production paths use the fixed well-known group in [`crate::dh`].
pub fn generate_safe_prime(bits: usize, rng: &mut CryptoRng) -> BigUint {
    loop {
        let q = generate_prime(bits - 1, rng);
        let p = q.shl(1).add(&BigUint::one());
        if is_probable_prime(&p, rng) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> CryptoRng {
        CryptoRng::from_u64(0xdead_beef)
    }

    #[test]
    fn small_primes_accepted() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 127, 199] {
            assert!(is_probable_prime(&BigUint::from_u64(p), &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 21, 25, 100, 121, 143, 187, 209] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), &mut r), "{c}");
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^61 - 1 is a Mersenne prime.
        let p = BigUint::from_u64((1u64 << 61) - 1);
        assert!(is_probable_prime(&p, &mut rng()));
    }

    #[test]
    fn known_large_composite() {
        // (2^61 - 1) * 3
        let p = BigUint::from_u64((1u64 << 61) - 1).mul(&BigUint::from_u64(3));
        assert!(!is_probable_prime(&p, &mut rng()));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller-Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), &mut r), "{c}");
        }
    }

    #[test]
    fn generated_prime_has_exact_bits() {
        let mut r = rng();
        for bits in [64usize, 128, 256] {
            let p = generate_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            // Top two bits set.
            assert!(p.bit(bits - 1) && p.bit(bits - 2));
        }
    }

    #[test]
    fn generated_primes_differ() {
        let mut r = rng();
        let a = generate_prime(128, &mut r);
        let b = generate_prime(128, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_prime(128, &mut CryptoRng::from_u64(5));
        let b = generate_prime(128, &mut CryptoRng::from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn safe_prime_structure() {
        let mut r = rng();
        let p = generate_safe_prime(64, &mut r);
        assert!(is_probable_prime(&p, &mut r));
        let q = p.sub(&BigUint::one()).shr(1);
        assert!(is_probable_prime(&q, &mut r));
    }
}
