//! HMAC-SHA256 (RFC 2104) and the HKDF-style key expansion used by the
//! transport handshake.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Feeds message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(data);
    h.finalize()
}

/// HKDF-Extract (RFC 5869): `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869): derives `len` bytes of keying material.
///
/// # Panics
/// Panics if `len > 255 * 32` (the RFC limit).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "hkdf_expand: output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut h = HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        t = h.finalize().to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        counter = counter.wrapping_add(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // Keys longer than the block size are first hashed; check the
        // incremental and one-shot paths agree on such a key.
        let key = vec![0xaau8; 131];
        let mut h = HmacSha256::new(&key);
        h.update(b"Test Using Larger Than Block-Size Key - Hash Key First");
        let tag = h.finalize();
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some-key";
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let mut h = HmacSha256::new(key);
        h.update(&data[..100]);
        h.update(&data[100..]);
        assert_eq!(h.finalize(), hmac_sha256(key, &data));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k1", b"msg1"), hmac_sha256(b"k1", b"msg2"));
    }

    #[test]
    fn hkdf_expand_lengths() {
        let prk = hkdf_extract(b"salt", b"input key material");
        for len in [0, 1, 31, 32, 33, 64, 100] {
            let okm = hkdf_expand(&prk, b"ctx", len);
            assert_eq!(okm.len(), len);
        }
        // Prefix property: a longer expansion starts with the shorter one.
        let a = hkdf_expand(&prk, b"ctx", 16);
        let b = hkdf_expand(&prk, b"ctx", 48);
        assert_eq!(&b[..16], &a[..]);
        // Distinct info yields distinct output.
        let c = hkdf_expand(&prk, b"other", 16);
        assert_ne!(a, c);
    }
}
