//! ChaCha20 stream cipher (RFC 7539 flavour: 32-byte key, 12-byte nonce,
//! 32-bit block counter).
//!
//! Used as the record-protection cipher by `unicore-transport` and as the
//! core of this crate's deterministic CSPRNG.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// ChaCha20 cipher instance bound to a key and nonce.
///
/// Encryption and decryption are the same XOR operation; the struct tracks
/// the keystream offset so data can be processed in arbitrary chunks.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    /// Unconsumed tail of the current keystream block.
    partial: [u8; BLOCK_LEN],
    partial_used: usize,
}

impl ChaCha20 {
    /// Creates a cipher with the RFC 7539 initial counter of `counter`.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for i in 0..8 {
            k[i] = u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        let mut n = [0u32; 3];
        for i in 0..3 {
            n[i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
            partial: [0u8; BLOCK_LEN],
            partial_used: BLOCK_LEN,
        }
    }

    /// Produces the raw 64-byte keystream block for `counter`.
    pub fn block(&self, counter: u32) -> [u8; BLOCK_LEN] {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut i = 0;
        while i < data.len() {
            if self.partial_used == BLOCK_LEN {
                self.partial = self.block(self.counter);
                self.counter = self.counter.wrapping_add(1);
                self.partial_used = 0;
            }
            let take = (BLOCK_LEN - self.partial_used).min(data.len() - i);
            for j in 0..take {
                data[i + j] ^= self.partial[self.partial_used + j];
            }
            self.partial_used += take;
            i += take;
        }
    }

    /// Convenience: encrypts a copy of `data`.
    pub fn apply_copy(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }

    /// Fills `out` with raw keystream bytes (used by the CSPRNG).
    pub fn keystream(&mut self, out: &mut [u8]) {
        out.fill(0);
        self.apply(out);
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn test_key() -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc7539_block_function() {
        // RFC 7539 section 2.3.2 test vector.
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.block(1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc7539_sunscreen_encryption() {
        // RFC 7539 section 2.4.2.
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        let ct = cipher.apply_copy(plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // Round trip.
        let mut dec = ChaCha20::new(&key, &nonce, 1);
        assert_eq!(dec.apply_copy(&ct), plaintext.to_vec());
    }

    #[test]
    fn chunked_equals_oneshot() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let data: Vec<u8> = (0..517u32).map(|i| (i * 31 % 256) as u8).collect();
        let mut one = ChaCha20::new(&key, &nonce, 0);
        let expected = one.apply_copy(&data);
        for chunk_size in [1usize, 13, 63, 64, 65, 200] {
            let mut c = ChaCha20::new(&key, &nonce, 0);
            let mut out = data.clone();
            for chunk in out.chunks_mut(chunk_size) {
                c.apply(chunk);
            }
            assert_eq!(out, expected, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = test_key();
        let mut a = ChaCha20::new(&key, &[1u8; NONCE_LEN], 0);
        let mut b = ChaCha20::new(&key, &[2u8; NONCE_LEN], 0);
        let mut ka = [0u8; 64];
        let mut kb = [0u8; 64];
        a.keystream(&mut ka);
        b.keystream(&mut kb);
        assert_ne!(ka, kb);
    }

    #[test]
    fn counter_wraps_without_panic() {
        let key = test_key();
        let mut c = ChaCha20::new(&key, &[0u8; NONCE_LEN], u32::MAX);
        let mut buf = [0u8; 130];
        c.apply(&mut buf); // crosses the wrap boundary
    }
}
