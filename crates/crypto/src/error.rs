//! Error type shared by the cryptographic primitives.

use core::fmt;

/// Errors produced by the crypto primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed verification (wrong key, tampered data, or
    /// malformed encoding — deliberately not distinguished).
    BadSignature,
    /// An RSA operation was attempted on a value not below the modulus.
    MessageTooLong,
    /// The key is too small for the requested padding.
    KeyTooSmall,
    /// A Diffie-Hellman peer value was degenerate or out of range.
    InvalidDhPublic,
    /// An authenticated decryption failed its tag check.
    BadMac,
    /// An internal invariant was violated (should never surface).
    Internal,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::MessageTooLong => write!(f, "message representative out of range"),
            CryptoError::KeyTooSmall => write!(f, "key too small for padding"),
            CryptoError::InvalidDhPublic => write!(f, "invalid Diffie-Hellman public value"),
            CryptoError::BadMac => write!(f, "message authentication check failed"),
            CryptoError::Internal => write!(f, "internal cryptographic invariant violated"),
        }
    }
}

impl std::error::Error for CryptoError {}
