//! Deterministic ChaCha20-based CSPRNG.
//!
//! Every randomised component in the workspace (key generation, handshake
//! nonces, workload generators) draws from a [`CryptoRng`] so that tests and
//! benchmarks are reproducible from a seed.

use crate::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::sha256::sha256;

/// A deterministic cryptographically-strong pseudo-random generator.
///
/// The stream is ChaCha20 keyed with `SHA-256(seed material)`; forking a
/// labelled child generator is supported so subsystems can derive
/// independent streams from one master seed.
pub struct CryptoRng {
    cipher: ChaCha20,
    seed_digest: [u8; 32],
}

impl CryptoRng {
    /// Creates a generator from arbitrary seed bytes.
    pub fn from_seed(seed: &[u8]) -> Self {
        let digest = sha256(seed);
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&digest);
        let nonce = [0u8; NONCE_LEN];
        CryptoRng {
            cipher: ChaCha20::new(&key, &nonce, 0),
            seed_digest: digest,
        }
    }

    /// Creates a generator from a `u64` seed (test convenience).
    pub fn from_u64(seed: u64) -> Self {
        Self::from_seed(&seed.to_be_bytes())
    }

    /// Derives an independent child generator identified by `label`.
    pub fn fork(&self, label: &str) -> CryptoRng {
        let mut material = Vec::with_capacity(self.seed_digest.len() + label.len() + 1);
        material.extend_from_slice(&self.seed_digest);
        material.push(b'/');
        material.extend_from_slice(label.as_bytes());
        CryptoRng::from_seed(&material)
    }

    /// Fills `out` with random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        self.cipher.keystream(out);
    }

    /// Returns a random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_be_bytes(b)
    }

    /// Returns a random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_be_bytes(b)
    }

    /// Uniform value in `[0, bound)` via rejection sampling.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: zero bound");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = CryptoRng::from_u64(42);
        let mut b = CryptoRng::from_u64(42);
        assert_eq!(a.bytes(100), b.bytes(100));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = CryptoRng::from_u64(1);
        let mut b = CryptoRng::from_u64(2);
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn fork_streams_are_independent() {
        let root = CryptoRng::from_u64(7);
        let mut c1 = root.fork("keygen");
        let mut c2 = root.fork("nonce");
        assert_ne!(c1.bytes(32), c2.bytes(32));
        // A child's stream differs from the parent's.
        let mut parent = CryptoRng::from_u64(7);
        let mut child = CryptoRng::from_u64(7).fork("keygen");
        assert_ne!(parent.bytes(32), child.bytes(32));
    }

    #[test]
    fn fork_deterministic() {
        let mut a = CryptoRng::from_u64(7).fork("child");
        let mut b = CryptoRng::from_u64(7).fork("child");
        assert_eq!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn next_below_in_range() {
        let mut r = CryptoRng::from_u64(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = CryptoRng::from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = CryptoRng::from_u64(11);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn next_below_zero_panics() {
        CryptoRng::from_u64(1).next_below(0);
    }
}
