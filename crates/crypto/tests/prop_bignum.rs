//! Property-based tests for the bignum and symmetric primitives.

use proptest::prelude::*;
use unicore_crypto::bignum::BigUint;
use unicore_crypto::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use unicore_crypto::ct::ct_eq;
use unicore_crypto::hmac::hmac_sha256;
use unicore_crypto::sha256::{sha256, Sha256};

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(|v| BigUint::from_bytes_be(&v))
}

fn nonzero_biguint() -> impl Strategy<Value = BigUint> {
    biguint_strategy().prop_filter("nonzero", |b| !b.is_zero())
}

proptest! {
    #[test]
    fn bytes_round_trip(v in proptest::collection::vec(any::<u8>(), 0..96)) {
        let n = BigUint::from_bytes_be(&v);
        let back = n.to_bytes_be();
        // Canonical form strips leading zeros.
        let stripped: Vec<u8> = v.iter().copied().skip_while(|&b| b == 0).collect();
        prop_assert_eq!(back, stripped);
    }

    #[test]
    fn hex_round_trip(a in biguint_strategy()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn add_commutative(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_sub_inverse(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_commutative(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(
        a in biguint_strategy(),
        b in biguint_strategy(),
        c in biguint_strategy(),
    ) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn divrem_reconstructs(a in biguint_strategy(), b in nonzero_biguint()) {
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r.cmp_big(&b) == core::cmp::Ordering::Less);
    }

    #[test]
    fn shift_round_trip(a in biguint_strategy(), s in 0usize..200) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn modpow_matches_naive(
        base in 0u64..10_000,
        exp in 0u64..64,
        modulus in 2u64..10_000,
    ) {
        let m = BigUint::from_u64(modulus);
        let got = BigUint::from_u64(base).modpow(&BigUint::from_u64(exp), &m);
        // Naive u128 reference.
        let mut acc = 1u128;
        for _ in 0..exp {
            acc = acc * base as u128 % modulus as u128;
        }
        prop_assert_eq!(got.to_u64().unwrap(), acc as u64);
    }

    #[test]
    fn modinv_is_inverse(a in nonzero_biguint(), m in nonzero_biguint()) {
        if let Some(inv) = a.modinv(&m) {
            prop_assert!(a.mul_mod(&inv, &m).is_one());
        }
    }

    #[test]
    fn gcd_divides_both(a in nonzero_biguint(), b in nonzero_biguint()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn chacha_round_trip(
        key in proptest::array::uniform32(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        counter in any::<u32>(),
    ) {
        let nonce = [9u8; NONCE_LEN];
        let key: [u8; KEY_LEN] = key;
        let mut enc = ChaCha20::new(&key, &nonce, counter);
        let ct = enc.apply_copy(&data);
        let mut dec = ChaCha20::new(&key, &nonce, counter);
        prop_assert_eq!(dec.apply_copy(&ct), data);
    }

    #[test]
    fn sha256_incremental_consistent(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        split in any::<prop::sample::Index>(),
    ) {
        let at = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..at.min(data.len())]);
        h.update(&data[at.min(data.len())..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_key_separation(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    }

    #[test]
    fn ct_eq_matches_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                        b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }
}
