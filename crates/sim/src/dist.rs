//! Random distributions for workload generation, driven by the
//! deterministic [`CryptoRng`] so experiments replay exactly.

use unicore_crypto::rng::CryptoRng;

/// Exponential variate with the given mean (inter-arrival times).
pub fn exponential(rng: &mut CryptoRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u = loop {
        let u = rng.next_f64();
        if u > 0.0 {
            break u;
        }
    };
    -mean * u.ln()
}

/// Uniform variate in `[low, high)`.
pub fn uniform(rng: &mut CryptoRng, low: f64, high: f64) -> f64 {
    debug_assert!(high >= low);
    low + (high - low) * rng.next_f64()
}

/// Uniform integer in `[low, high]` inclusive.
pub fn uniform_int(rng: &mut CryptoRng, low: u64, high: u64) -> u64 {
    debug_assert!(high >= low);
    low + rng.next_below(high - low + 1)
}

/// Log-normal-ish variate: `exp(N(mu, sigma))` via Box–Muller.
///
/// Batch-job runtimes are classically heavy-tailed; the batch workload
/// generator uses this for execution times.
pub fn lognormal(rng: &mut CryptoRng, mu: f64, sigma: f64) -> f64 {
    let n = standard_normal(rng);
    (mu + sigma * n).exp()
}

/// Standard normal via Box–Muller.
pub fn standard_normal(rng: &mut CryptoRng) -> f64 {
    let u1 = loop {
        let u = rng.next_f64();
        if u > 0.0 {
            break u;
        }
    };
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Bounded Zipf sampler over `{0, .., n-1}` with exponent `s`.
///
/// Used to pick popular destination Vsites (load skew across sites).
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf: weights }
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut CryptoRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Weighted choice over arbitrary weights.
pub fn weighted_choice(rng: &mut CryptoRng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_choice over empty domain");
    let total: f64 = weights.iter().sum();
    let mut target = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> CryptoRng {
        CryptoRng::from_u64(777)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn exponential_non_negative() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(exponential(&mut r, 1.0) >= 0.0);
        }
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = uniform(&mut r, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn uniform_int_inclusive() {
        let mut r = rng();
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..2000 {
            let v = uniform_int(&mut r, 3, 6);
            assert!((3..=6).contains(&v));
            saw_low |= v == 3;
            saw_high |= v == 6;
        }
        assert!(saw_low && saw_high);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(lognormal(&mut r, 1.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(10, 1.2);
        let mut r = rng();
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > counts[9]);
        // All outcomes in range (implicitly checked by indexing).
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..9_000 {
            counts[weighted_choice(&mut r, &[1.0, 2.0, 6.0])] += 1;
        }
        assert!(counts[2] > counts[1]);
        assert!(counts[1] > counts[0]);
    }

    #[test]
    fn weighted_choice_single() {
        let mut r = rng();
        assert_eq!(weighted_choice(&mut r, &[1.0]), 0);
    }
}
