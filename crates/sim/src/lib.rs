//! # unicore-sim
//!
//! Discrete-event simulation core: a deterministic event queue with a
//! virtual microsecond clock, plus statistics accumulators and workload
//! distributions.
//!
//! The UNICORE paper was evaluated on a live deployment of six German
//! computing centres (§5.7). This crate is the substrate that lets the
//! reproduction stand in for that testbed: `unicore-simnet` models the WAN
//! links between Usites and `unicore-batch` models the vendor batch systems,
//! both driven by [`EventQueue`]s so every experiment replays exactly from
//! its seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod queue;
pub mod stats;
pub mod time;

pub use queue::{EventId, EventQueue};
pub use stats::{log2_bucket, log2_bucket_limit, LogHistogram, OnlineStats, Percentiles};
pub use time::{format_time, millis, secs, secs_f64, SimTime, HOUR, MICRO, MILLI, MINUTE, SEC};
