//! The discrete-event queue.
//!
//! A deterministic priority queue of `(time, sequence)`-ordered events.
//! Ties at the same timestamp are broken by insertion order, so a given
//! schedule always replays identically — the property every experiment in
//! EXPERIMENTS.md relies on.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle for a scheduled event, usable with [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering for the min-heap via Reverse: by (time, seq).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event queue over event payloads `E`.
pub struct EventQueue<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` ticks from now.
    pub fn schedule(&mut self, delay: SimTime, event: E) -> EventId {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — events may never rewind the clock.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(time >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Timestamp of the next (non-cancelled) event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending (possibly including cancelled) entries.
    #[allow(clippy::len_without_is_empty)] // is_empty needs &mut (see below)
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    ///
    /// Takes `&mut self` (unlike the `len`/`is_empty` convention) because
    /// it lazily discards cancelled entries at the head of the heap.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Advances the clock to `time` without firing anything (for idle
    /// periods driven by an external master clock).
    ///
    /// # Panics
    /// Panics if events earlier than `time` are still pending, or if `time`
    /// would move backwards.
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(time >= self.now, "clock may not rewind");
        if let Some(next) = self.peek_time() {
            assert!(
                next >= time,
                "cannot skip over pending event at {next} (advancing to {time})"
            );
        }
        self.now = time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        // Scheduling relative to the advanced clock.
        q.schedule(5, ());
        assert_eq!(q.pop(), Some((15, ())));
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(10, "dead");
        q.schedule(20, "alive");
        q.cancel(id);
        assert_eq!(q.pop(), Some((20, "alive")));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let id = q.schedule(1, ());
        q.pop();
        q.cancel(id); // no panic, no effect
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule(5, "x");
        q.schedule(9, "y");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(9));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn advance_to_idle_time() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(100);
        assert_eq!(q.now(), 100);
    }

    #[test]
    #[should_panic(expected = "cannot skip over pending event")]
    fn advance_past_pending_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.advance_to(50);
    }

    #[test]
    fn empty_checks() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        let id = q.schedule(1, 0);
        assert!(!q.is_empty());
        q.cancel(id);
        assert!(q.is_empty());
    }
}
