//! Simulated time.
//!
//! All simulated clocks in the workspace use microsecond ticks stored in a
//! `u64`, giving ~584 thousand years of range — enough for any deployment
//! simulation while keeping arithmetic exact.

/// A point in simulated time, in microseconds since simulation start.
pub type SimTime = u64;

/// One microsecond.
pub const MICRO: SimTime = 1;
/// One millisecond in ticks.
pub const MILLI: SimTime = 1_000;
/// One second in ticks.
pub const SEC: SimTime = 1_000_000;
/// One minute in ticks.
pub const MINUTE: SimTime = 60 * SEC;
/// One hour in ticks.
pub const HOUR: SimTime = 60 * MINUTE;

/// Converts whole seconds to ticks.
pub const fn secs(s: u64) -> SimTime {
    s * SEC
}

/// Converts milliseconds to ticks.
pub const fn millis(ms: u64) -> SimTime {
    ms * MILLI
}

/// Converts fractional seconds to ticks (rounding down).
pub fn secs_f64(s: f64) -> SimTime {
    debug_assert!(s >= 0.0, "negative duration");
    (s * SEC as f64) as SimTime
}

/// Renders a tick count as a human-readable duration.
pub fn format_time(t: SimTime) -> String {
    if t >= HOUR {
        format!("{:.2}h", t as f64 / HOUR as f64)
    } else if t >= MINUTE {
        format!("{:.2}min", t as f64 / MINUTE as f64)
    } else if t >= SEC {
        format!("{:.3}s", t as f64 / SEC as f64)
    } else if t >= MILLI {
        format!("{:.3}ms", t as f64 / MILLI as f64)
    } else {
        format!("{t}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(secs(2), 2_000_000);
        assert_eq!(millis(3), 3_000);
        assert_eq!(secs_f64(0.5), 500_000);
        assert_eq!(secs_f64(0.0), 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_time(5), "5us");
        assert_eq!(format_time(2_500), "2.500ms");
        assert_eq!(format_time(1_500_000), "1.500s");
        assert_eq!(format_time(90 * SEC), "1.50min");
        assert_eq!(format_time(2 * HOUR), "2.00h");
    }
}
