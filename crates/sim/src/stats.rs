//! Online statistics and histograms for experiment reporting.

/// Running mean/variance via Welford's algorithm, plus min/max.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A sample reservoir with exact percentiles (stores all samples; fine for
/// the ≤ millions of observations our experiments produce).
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// An empty reservoir.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (0.0 ..= 1.0) by nearest-rank; NaN when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Median shortcut.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }
}

/// Index of the power-of-two bucket covering `value` in a 64-bucket
/// log₂ histogram: bucket 0 holds only 0, bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)`, and everything from `2^62` up lands in bucket 63.
pub fn log2_bucket(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(63)
}

/// Exclusive upper bound of log₂ bucket `idx` (saturates at `u64::MAX`
/// for the overflow bucket).
pub fn log2_bucket_limit(idx: usize) -> u64 {
    if idx == 0 {
        1
    } else if idx >= 63 {
        u64::MAX
    } else {
        1u64 << idx
    }
}

/// Fixed log₂-bucketed histogram for latency-style values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// A histogram with 64 power-of-two buckets.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    /// Records a (non-negative integer) observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[log2_bucket(value)] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations in the bucket covering `value`.
    pub fn bucket_count(&self, value: u64) -> u64 {
        self.buckets[log2_bucket(value)]
    }

    /// Upper bound (exclusive) of the smallest bucket that makes the
    /// cumulative count reach `q` of the total; 0 when empty.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (self.total as f64 * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut acc = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return if idx == 0 { 0 } else { log2_bucket_limit(idx) };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_matches_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn percentiles() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.push(i as f64);
        }
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.quantile(1.0), 100.0);
        assert!((p.median() - 50.0).abs() <= 1.0);
        assert!((p.quantile(0.9) - 90.0).abs() <= 1.0);
    }

    #[test]
    fn percentiles_empty_is_nan() {
        let mut p = Percentiles::new();
        assert!(p.quantile(0.5).is_nan());
    }

    #[test]
    fn percentiles_interleaved_push_and_query() {
        let mut p = Percentiles::new();
        p.push(10.0);
        assert_eq!(p.median(), 10.0);
        p.push(20.0);
        p.push(0.0);
        assert_eq!(p.median(), 10.0);
    }

    #[test]
    fn log_histogram_buckets() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 2); // 2 and 3 share a bucket
        assert_eq!(h.bucket_count(1000), 1);
    }

    #[test]
    fn log_histogram_quantiles() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        assert_eq!(h.approx_quantile(0.5), 16); // bucket (8..16]
        assert!(h.approx_quantile(1.0) >= 1_000_000);
        assert_eq!(LogHistogram::new().approx_quantile(0.5), 0);
    }
}
