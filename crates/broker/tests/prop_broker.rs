//! Property tests for the broker: a ranking is a pure function of
//! (directory, loads, policy) — identical across runs and independent of
//! candidate order for the same seed — scores come back sorted,
//! exclusions are honoured, and fair-share usage only ever decays.

use proptest::prelude::*;
use unicore_ajo::ResourceRequest;
use unicore_broker::{rank, BrokerPolicy, Candidate, FairShare, FairShareConfig, LoadSnapshot};
use unicore_resources::{deployment_page, Architecture};

/// The six-site German deployment the paper names (§2), as the candidate
/// pool: real pages with generated load, price, and staging figures.
const SITES: [(&str, &str, Architecture); 6] = [
    ("FZJ", "T3E", Architecture::CrayT3e),
    ("RUS", "VPP", Architecture::FujitsuVpp700),
    ("RUKA", "SP2", Architecture::IbmSp2),
    ("LRZ", "SP2", Architecture::IbmSp2),
    ("ZIB", "T3E", Architecture::CrayT3e),
    ("DWD", "SX4", Architecture::NecSx4),
];

fn candidate(site: usize) -> impl Strategy<Value = Candidate> {
    (
        0u32..1024,
        0usize..40,
        0u64..=1000,
        0u64..100_000,
        0u32..=100,
        0u64..10_000,
    )
        .prop_map(
            move |(free, queue, util_milli, price, load_pct, staging_mb)| {
                let (usite, vsite, arch) = SITES[site];
                let page = deployment_page(usite, vsite, arch)
                    .with_price(price)
                    .with_advertised_load(load_pct);
                let total = page.performance.nodes;
                Candidate {
                    load: LoadSnapshot {
                        vsite: page.vsite.clone(),
                        total_nodes: total,
                        free_nodes: free.min(total),
                        queue_length: queue,
                        running: 0,
                        utilization: util_milli as f64 / 1000.0,
                    },
                    page,
                    staging_mb,
                }
            },
        )
}

fn candidates() -> impl Strategy<Value = Vec<Candidate>> {
    (
        candidate(0),
        candidate(1),
        candidate(2),
        candidate(3),
        candidate(4),
        candidate(5),
    )
        .prop_map(|(a, b, c, d, e, f)| vec![a, b, c, d, e, f])
}

fn request() -> impl Strategy<Value = ResourceRequest> {
    (1u32..600, 60u64..50_000).prop_map(|(procs, secs)| {
        ResourceRequest::minimal()
            .with_processors(procs)
            .with_run_time(secs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn ranking_is_deterministic_and_order_independent(
        cands in candidates(),
        req in request(),
        seed in 0u64..(1 << 32),
        rot in 0usize..6,
    ) {
        let policy = BrokerPolicy::seeded(seed);
        let baseline = rank(&policy, &req, &cands, &[]);
        // Same inputs, same ranking — byte for byte.
        prop_assert_eq!(&rank(&policy, &req, &cands, &[]), &baseline);
        // Any rotation or reversal of the candidate list ranks the same.
        let mut rotated = cands.clone();
        rotated.rotate_left(rot);
        prop_assert_eq!(&rank(&policy, &req, &rotated, &[]), &baseline);
        rotated.reverse();
        prop_assert_eq!(&rank(&policy, &req, &rotated, &[]), &baseline);
    }

    #[test]
    fn ranking_is_sorted_and_honours_exclusions(
        cands in candidates(),
        req in request(),
        seed in 0u64..(1 << 32),
        excluded in 0usize..6,
    ) {
        let policy = BrokerPolicy::seeded(seed);
        let offers = rank(&policy, &req, &cands, &[]);
        // Best first: scores never decrease down the list.
        prop_assert!(offers.windows(2).all(|w| w[0].score <= w[1].score));
        // Excluding one Usite removes exactly its offers, nothing else.
        let skip = SITES[excluded].0.to_owned();
        let filtered = rank(&policy, &req, &cands, std::slice::from_ref(&skip));
        prop_assert!(filtered.iter().all(|o| o.vsite.usite != skip));
        let expect: Vec<_> = offers
            .iter()
            .filter(|o| o.vsite.usite != skip)
            .cloned()
            .collect();
        prop_assert_eq!(filtered, expect);
    }

    #[test]
    fn fair_share_usage_only_decays(
        charges in proptest::collection::vec((0u64..100_000, 0u64..3_600_000_000u64), 1..8),
        probe_gap in 0u64..100_000_000_000u64,
    ) {
        let mut shares = FairShare::new(FairShareConfig::default());
        let mut now = 0u64;
        for (cost, gap) in charges {
            now += gap;
            shares.charge("CN=alice", cost, now);
        }
        let at_last = shares.usage("CN=alice", now);
        let later = shares.usage("CN=alice", now + probe_gap);
        // Decay is monotone: waiting never increases the charged usage.
        prop_assert!(later <= at_last);
    }
}
