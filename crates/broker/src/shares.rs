//! Fair-share quotas: decayed per-user usage enforced at admission.
//!
//! The paper's §6 couples the broker "together with accounting
//! functions"; this is that coupling. Every admitted job charges its
//! estimated node-seconds against its owner; charges decay by halving
//! once per half-life, so a tenant's past eventually stops counting
//! against it. Admission compares a tenant's decayed usage to its fair
//! share of the whole site's decayed usage, with a burst multiplier and
//! a flat allowance so light traffic never trips the quota.
//!
//! Everything is integer arithmetic on the simulated clock — two
//! federations replaying the same workload charge and deny identically,
//! which the WAL-replay determinism tests require.

use std::collections::BTreeMap;
use unicore_sim::{SimTime, HOUR};

/// Fair-share tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairShareConfig {
    /// Time for a charge to halve (simulated ticks).
    pub half_life: SimTime,
    /// Burst headroom over the per-tenant fair share, in milli-units
    /// (2000 = a tenant may hold twice its fair share before denial).
    pub burst_factor_milli: u64,
    /// Flat allowance in node-seconds every tenant may always hold —
    /// keeps singleton and light users clear of the quota entirely.
    pub base_allowance: u64,
}

impl Default for FairShareConfig {
    fn default() -> Self {
        FairShareConfig {
            half_life: HOUR,
            burst_factor_milli: 2_000,
            // One 64-PE hour: a healthy dev-loop budget.
            base_allowance: 64 * 3_600,
        }
    }
}

/// An admission denial: the tenant is over its fair share right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaDenial {
    /// The tenant's decayed usage, node-seconds.
    pub usage: u64,
    /// What the tenant was allowed to hold.
    pub allowed: u64,
}

impl core::fmt::Display for QuotaDenial {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "fair-share quota exceeded: holding {} node-seconds, share allows {}",
            self.usage, self.allowed
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    charged: u64,
    at: SimTime,
}

/// Decayed-usage fair-share tracker, keyed by user DN.
#[derive(Debug, Clone)]
pub struct FairShare {
    cfg: FairShareConfig,
    cells: BTreeMap<String, Cell>,
}

fn decayed(charged: u64, elapsed: SimTime, half_life: SimTime) -> u64 {
    let steps = elapsed / half_life.max(1);
    if steps >= 64 {
        0
    } else {
        charged >> steps
    }
}

impl FairShare {
    /// A tracker with the given knobs.
    pub fn new(cfg: FairShareConfig) -> Self {
        FairShare {
            cfg,
            cells: BTreeMap::new(),
        }
    }

    /// Charges `cost` node-seconds to `dn` at `now`.
    pub fn charge(&mut self, dn: &str, cost: u64, now: SimTime) {
        let cell = self.cells.entry(dn.to_owned()).or_insert(Cell {
            charged: 0,
            at: now,
        });
        let prior = decayed(
            cell.charged,
            now.saturating_sub(cell.at),
            self.cfg.half_life,
        );
        cell.charged = prior.saturating_add(cost);
        cell.at = now;
    }

    /// The tenant's decayed usage at `now`.
    pub fn usage(&self, dn: &str, now: SimTime) -> u64 {
        self.cells
            .get(dn)
            .map(|c| decayed(c.charged, now.saturating_sub(c.at), self.cfg.half_life))
            .unwrap_or(0)
    }

    /// Decayed usage total and tenant count over everyone *except* `dn`.
    fn others(&self, dn: &str, now: SimTime) -> (u64, u64) {
        let mut total = 0u64;
        let mut active = 0u64;
        for (who, c) in &self.cells {
            if who == dn {
                continue;
            }
            let u = decayed(c.charged, now.saturating_sub(c.at), self.cfg.half_life);
            if u > 0 {
                total = total.saturating_add(u);
                active += 1;
            }
        }
        (total, active)
    }

    /// What `dn` may hold right now: the flat allowance plus the burst
    /// multiple of the *other* active tenants' average usage. Measuring
    /// against the others (not the site total, which the tenant's own
    /// burst would inflate) is what makes a hog's allowance collapse the
    /// moment it dwarfs everyone else. `None` means unlimited: nobody
    /// else is using the site, so there is nobody to be unfair to.
    pub fn allowance(&self, dn: &str, now: SimTime) -> Option<u64> {
        let (total, active) = self.others(dn, now);
        if active == 0 {
            return None;
        }
        let fair = total / active;
        Some(
            self.cfg
                .base_allowance
                .saturating_add(fair.saturating_mul(self.cfg.burst_factor_milli) / 1_000),
        )
    }

    /// Admission check: `Ok` to admit another job for `dn`, or the
    /// denial with the numbers that justify it.
    pub fn admit(&self, dn: &str, now: SimTime) -> Result<(), QuotaDenial> {
        let Some(allowed) = self.allowance(dn, now) else {
            return Ok(());
        };
        let usage = self.usage(dn, now);
        if usage <= allowed {
            Ok(())
        } else {
            Err(QuotaDenial { usage, allowed })
        }
    }
}

impl Default for FairShare {
    fn default() -> Self {
        FairShare::new(FairShareConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicore_sim::{MINUTE, SEC};

    fn small() -> FairShareConfig {
        FairShareConfig {
            half_life: MINUTE,
            burst_factor_milli: 2_000,
            base_allowance: 100,
        }
    }

    #[test]
    fn singleton_tenant_never_denied() {
        let mut fs = FairShare::new(small());
        for i in 0..50u64 {
            let now = i * SEC;
            fs.admit("alice", now).unwrap();
            fs.charge("alice", 10_000, now);
        }
        // usage == total, fair == total, allowed == base + 2×total.
        fs.admit("alice", 50 * SEC).unwrap();
    }

    #[test]
    fn bursty_tenant_denied_while_others_stay_admissible() {
        let mut fs = FairShare::new(small());
        for t in ["t0", "t1", "t2", "t3"] {
            fs.charge(t, 1_000, 0);
        }
        // t0 bursts far past everyone.
        fs.charge("t0", 1_000_000, 0);
        assert!(fs.admit("t0", SEC).is_err());
        for t in ["t1", "t2", "t3"] {
            fs.admit(t, SEC).unwrap();
        }
    }

    #[test]
    fn usage_decays_back_to_admissible() {
        let mut fs = FairShare::new(small());
        fs.charge("bg", 1_000, 0); // background tenant keeps totals honest
        fs.charge("burst", 1_000_000, 0);
        assert!(fs.admit("burst", SEC).is_err());
        // 20 half-lives later the burst has decayed to under a thousandth.
        assert!(fs.admit("burst", 20 * MINUTE).is_ok());
    }

    #[test]
    fn denial_message_carries_numbers() {
        let mut fs = FairShare::new(small());
        fs.charge("bg", 100, 0);
        fs.charge("hog", 1_000_000, 0);
        let denial = fs.admit("hog", SEC).unwrap_err();
        assert!(denial.usage > denial.allowed);
        let msg = denial.to_string();
        assert!(msg.contains("fair-share quota exceeded"), "{msg}");
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = FairShare::new(small());
        let mut b = FairShare::new(small());
        for (i, t) in ["x", "y", "z", "x", "x"].iter().enumerate() {
            let now = i as u64 * 10 * SEC;
            a.charge(t, 5_000 * (i as u64 + 1), now);
            b.charge(t, 5_000 * (i as u64 + 1), now);
        }
        for t in ["x", "y", "z"] {
            assert_eq!(a.usage(t, MINUTE), b.usage(t, MINUTE));
            assert_eq!(a.admit(t, MINUTE), b.admit(t, MINUTE));
        }
    }
}
