//! Load/price-aware site scoring.
//!
//! All arithmetic is integer (millipoints) and every comparison chain
//! ends in a seed-hashed then lexicographic tie-break, so a ranking is a
//! pure function of (directory, loads, policy) — the property the WAL
//! placement journal and the crash-restart replay tests lean on.

use unicore_ajo::{ResourceRequest, VsiteAddress};
use unicore_resources::{admissible, ResourcePage};

/// A point-in-time load report for one Vsite.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSnapshot {
    /// The Vsite.
    pub vsite: VsiteAddress,
    /// Machine size in processor elements.
    pub total_nodes: u32,
    /// Idle processor elements right now.
    pub free_nodes: u32,
    /// Jobs waiting in the queue.
    pub queue_length: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Historical utilisation over the observation window (0..1).
    pub utilization: f64,
}

/// One brokering candidate: the published page plus current load.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The Vsite's resource page.
    pub page: ResourcePage,
    /// Its load.
    pub load: LoadSnapshot,
    /// Megabytes of job data that would have to be staged to this site
    /// (0 when the data already sits there). Charged by [`rank`] with
    /// [`BrokerPolicy::staging_weight_milli`].
    pub staging_mb: u64,
}

/// Scoring weights, in millipoints per milli-unit of each axis, plus the
/// seed that desynchronises equal-score tie-breaks between deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerPolicy {
    /// Millipoints per queued job ahead of the request.
    pub queue_weight_milli: u64,
    /// Millipoints per milli-unit of utilisation (0..1000).
    pub utilization_weight_milli: u64,
    /// Millipoints per millicredit of the page's node-hour price.
    pub price_weight_milli: u64,
    /// Millipoints per megabyte that must be staged to the site.
    pub staging_weight_milli: u64,
    /// Tie-break seed: equal-score candidates order by an FNV hash of
    /// (seed, vsite) before the final lexicographic fallback.
    pub seed: u64,
}

impl Default for BrokerPolicy {
    fn default() -> Self {
        BrokerPolicy {
            queue_weight_milli: 10_000,
            utilization_weight_milli: 5,
            price_weight_milli: 1,
            staging_weight_milli: 50,
            seed: 0,
        }
    }
}

impl BrokerPolicy {
    /// A policy drawing tie-breaks from `seed`.
    pub fn seeded(seed: u64) -> Self {
        BrokerPolicy {
            seed,
            ..BrokerPolicy::default()
        }
    }
}

/// One scored entry of a ranked placement (lower score is better).
#[derive(Debug, Clone, PartialEq)]
pub struct RankedOffer {
    /// The Vsite.
    pub vsite: VsiteAddress,
    /// Composite score in millipoints (lower is better).
    pub score: u64,
    /// Whether the site could start the request immediately.
    pub immediate: bool,
    /// Jobs queued ahead of the request.
    pub queue_length: usize,
    /// Observed utilisation in milli-units (0..=1000).
    pub utilization_milli: u64,
    /// The page's advertised price (millicredits per node-hour).
    pub price_per_node_hour_milli: u64,
}

fn fnv(seed: u64, name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn score_candidate(policy: &BrokerPolicy, request: &ResourceRequest, c: &Candidate) -> RankedOffer {
    let immediate = c.load.free_nodes >= request.processors;
    let live_milli = (c.load.utilization.clamp(0.0, 1.0) * 1000.0).round() as u64;
    // The page's advertised load is a stale hint; trust whichever paints
    // the site busier, so a site that went hot since publishing its page
    // cannot hide behind the old figure.
    let utilization_milli = live_milli.max(c.page.advertised_load_pct as u64 * 10);
    let wait = if immediate {
        0
    } else {
        100_000 + c.load.queue_length as u64 * policy.queue_weight_milli
    };
    let score = wait
        .saturating_add(utilization_milli.saturating_mul(policy.utilization_weight_milli))
        .saturating_add(
            c.page
                .price_per_node_hour_milli
                .saturating_mul(policy.price_weight_milli),
        )
        .saturating_add(c.staging_mb.saturating_mul(policy.staging_weight_milli));
    RankedOffer {
        vsite: c.load.vsite.clone(),
        score,
        immediate,
        queue_length: c.load.queue_length,
        utilization_milli,
        price_per_node_hour_milli: c.page.price_per_node_hour_milli,
    }
}

/// Scores every admissible candidate for `request` and returns them best
/// first. Usites named in `exclude` are skipped — the retarget path
/// passes the sites already tried (quarantined, dark, or refusing).
///
/// The result is independent of the order of `candidates` and identical
/// across runs for the same (directory, loads, policy): scores compare
/// first, then an FNV hash of (policy seed, vsite), then the Vsite name.
pub fn rank(
    policy: &BrokerPolicy,
    request: &ResourceRequest,
    candidates: &[Candidate],
    exclude: &[String],
) -> Vec<RankedOffer> {
    let mut offers: Vec<RankedOffer> = candidates
        .iter()
        .filter(|c| !exclude.contains(&c.load.vsite.usite))
        .filter(|c| admissible(request, &c.page))
        .map(|c| score_candidate(policy, request, c))
        .collect();
    offers.sort_by(|a, b| {
        let an = a.vsite.to_string();
        let bn = b.vsite.to_string();
        a.score
            .cmp(&b.score)
            .then(fnv(policy.seed, &an).cmp(&fnv(policy.seed, &bn)))
            .then(an.cmp(&bn))
    });
    offers
}

/// Why the broker rejected a candidate (for user-facing explanations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerRejection {
    /// The request violates the page's limits.
    Inadmissible,
}

/// The broker's scored pick (legacy seed API).
#[derive(Debug, Clone)]
pub struct BrokerChoice {
    /// The chosen Vsite.
    pub vsite: VsiteAddress,
    /// True when the machine can start the request immediately.
    pub immediate: bool,
    /// The candidates considered, in preference order (chosen first).
    pub ranking: Vec<VsiteAddress>,
}

/// Picks the best Vsite for `request` among `candidates` — the original
/// seed policy, kept verbatim: admissible pages only; prefer machines
/// that can start *now*; then shorter queues; then lower utilisation;
/// then bigger machines; ties break on the Vsite name.
pub fn choose_vsite(request: &ResourceRequest, candidates: &[Candidate]) -> Option<BrokerChoice> {
    let mut ranked: Vec<&Candidate> = candidates
        .iter()
        .filter(|c| admissible(request, &c.page))
        .collect();
    if ranked.is_empty() {
        return None;
    }
    ranked.sort_by(|a, b| {
        let a_now = a.load.free_nodes >= request.processors;
        let b_now = b.load.free_nodes >= request.processors;
        b_now
            .cmp(&a_now)
            .then(a.load.queue_length.cmp(&b.load.queue_length))
            .then(
                a.load
                    .utilization
                    .partial_cmp(&b.load.utilization)
                    .unwrap_or(core::cmp::Ordering::Equal),
            )
            .then(b.load.total_nodes.cmp(&a.load.total_nodes))
            .then(a.load.vsite.to_string().cmp(&b.load.vsite.to_string()))
    });
    let best = ranked[0];
    Some(BrokerChoice {
        vsite: best.load.vsite.clone(),
        immediate: best.load.free_nodes >= request.processors,
        ranking: ranked.iter().map(|c| c.load.vsite.clone()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicore_resources::{deployment_page, Architecture};

    pub(crate) fn candidate(
        usite: &str,
        vsite: &str,
        arch: Architecture,
        free: u32,
        queue: usize,
        util: f64,
    ) -> Candidate {
        let page = deployment_page(usite, vsite, arch);
        let total = page.performance.nodes;
        Candidate {
            load: LoadSnapshot {
                vsite: page.vsite.clone(),
                total_nodes: total,
                free_nodes: free,
                queue_length: queue,
                running: 0,
                utilization: util,
            },
            page,
            staging_mb: 0,
        }
    }

    fn req(procs: u32) -> ResourceRequest {
        ResourceRequest::minimal()
            .with_processors(procs)
            .with_run_time(3_600)
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert!(choose_vsite(&req(4), &[]).is_none());
        assert!(rank(&BrokerPolicy::default(), &req(4), &[], &[]).is_empty());
    }

    #[test]
    fn inadmissible_candidates_filtered() {
        // SX-4 has 32 PEs: a 100-PE request can only go to the T3E.
        let cands = [
            candidate("DWD", "SX4", Architecture::NecSx4, 32, 0, 0.0),
            candidate("FZJ", "T3E", Architecture::CrayT3e, 0, 50, 0.99),
        ];
        let choice = choose_vsite(&req(100), &cands).unwrap();
        assert_eq!(choice.vsite.to_string(), "FZJ/T3E");
        assert!(!choice.immediate);
        let offers = rank(&BrokerPolicy::default(), &req(100), &cands, &[]);
        assert_eq!(offers.len(), 1);
        assert_eq!(offers[0].vsite.to_string(), "FZJ/T3E");
    }

    #[test]
    fn all_inadmissible_yields_none() {
        let cands = [candidate("DWD", "SX4", Architecture::NecSx4, 32, 0, 0.0)];
        assert!(choose_vsite(&req(10_000), &cands).is_none());
    }

    #[test]
    fn prefers_immediate_start() {
        let cands = [
            // Busy big machine with a queue...
            candidate("FZJ", "T3E", Architecture::CrayT3e, 0, 3, 0.9),
            // ...vs a small idle one that fits.
            candidate("DWD", "SX4", Architecture::NecSx4, 32, 0, 0.1),
        ];
        let choice = choose_vsite(&req(16), &cands).unwrap();
        assert_eq!(choice.vsite.to_string(), "DWD/SX4");
        assert!(choice.immediate);
        assert_eq!(choice.ranking.len(), 2);
        let offers = rank(&BrokerPolicy::default(), &req(16), &cands, &[]);
        assert_eq!(offers[0].vsite.to_string(), "DWD/SX4");
        assert!(offers[0].immediate);
    }

    #[test]
    fn prefers_shorter_queue_when_nobody_free() {
        let cands = [
            candidate("FZJ", "T3E", Architecture::CrayT3e, 0, 10, 0.5),
            candidate("ZIB", "T3E", Architecture::CrayT3e, 0, 2, 0.5),
        ];
        let choice = choose_vsite(&req(64), &cands).unwrap();
        assert_eq!(choice.vsite.to_string(), "ZIB/T3E");
        let offers = rank(&BrokerPolicy::default(), &req(64), &cands, &[]);
        assert_eq!(offers[0].vsite.to_string(), "ZIB/T3E");
    }

    #[test]
    fn prefers_lower_utilization_on_queue_tie() {
        let cands = [
            candidate("FZJ", "T3E", Architecture::CrayT3e, 0, 2, 0.9),
            candidate("ZIB", "T3E", Architecture::CrayT3e, 0, 2, 0.2),
        ];
        let choice = choose_vsite(&req(64), &cands).unwrap();
        assert_eq!(choice.vsite.to_string(), "ZIB/T3E");
    }

    #[test]
    fn deterministic_tie_break() {
        let cands = [
            candidate("ZIB", "T3E", Architecture::CrayT3e, 512, 0, 0.0),
            candidate("FZJ", "T3E", Architecture::CrayT3e, 512, 0, 0.0),
        ];
        let a = choose_vsite(&req(8), &cands).unwrap();
        let b = choose_vsite(&req(8), &cands).unwrap();
        assert_eq!(a.vsite, b.vsite);
        assert_eq!(a.vsite.to_string(), "FZJ/T3E"); // name order
    }

    #[test]
    fn price_breaks_otherwise_equal_sites() {
        // Two idle, equally loaded sites: the cheaper page wins.
        let mut cheap = candidate("RUKA", "SP2", Architecture::IbmSp2, 77, 0, 0.0);
        let mut dear = candidate("LRZ", "SP2", Architecture::IbmSp2, 77, 0, 0.0);
        cheap.page.price_per_node_hour_milli = 100;
        dear.page.price_per_node_hour_milli = 5_000;
        let offers = rank(
            &BrokerPolicy::default(),
            &req(8),
            &[dear.clone(), cheap.clone()],
            &[],
        );
        assert_eq!(offers[0].vsite.to_string(), "RUKA/SP2");
        assert!(offers[0].score < offers[1].score);
    }

    #[test]
    fn staging_cost_penalises_data_movement() {
        let near = candidate("FZJ", "T3E", Architecture::CrayT3e, 512, 0, 0.0);
        let mut far = candidate("ZIB", "T3E", Architecture::CrayT3e, 512, 0, 0.0);
        far.staging_mb = 4_000; // 4 GB to re-stage
        let offers = rank(&BrokerPolicy::default(), &req(8), &[far, near], &[]);
        assert_eq!(offers[0].vsite.to_string(), "FZJ/T3E");
    }

    #[test]
    fn advertised_load_hint_counts_when_worse() {
        let idle = candidate("FZJ", "T3E", Architecture::CrayT3e, 512, 0, 0.0);
        let mut hinted = candidate("ZIB", "T3E", Architecture::CrayT3e, 512, 0, 0.0);
        hinted.page.advertised_load_pct = 90;
        let offers = rank(&BrokerPolicy::default(), &req(8), &[hinted, idle], &[]);
        assert_eq!(offers[0].vsite.to_string(), "FZJ/T3E");
    }

    #[test]
    fn exclusion_skips_usites() {
        let cands = [
            candidate("FZJ", "T3E", Architecture::CrayT3e, 512, 0, 0.0),
            candidate("ZIB", "T3E", Architecture::CrayT3e, 512, 0, 0.0),
        ];
        let offers = rank(
            &BrokerPolicy::default(),
            &req(8),
            &cands,
            &["FZJ".to_owned()],
        );
        assert_eq!(offers.len(), 1);
        assert_eq!(offers[0].vsite.usite, "ZIB");
    }

    #[test]
    fn ranking_is_order_independent() {
        let cands = vec![
            candidate("FZJ", "T3E", Architecture::CrayT3e, 0, 3, 0.7),
            candidate("ZIB", "T3E", Architecture::CrayT3e, 512, 0, 0.1),
            candidate("DWD", "SX4", Architecture::NecSx4, 32, 1, 0.4),
            candidate("RUS", "VPP", Architecture::FujitsuVpp700, 52, 0, 0.2),
        ];
        let policy = BrokerPolicy::seeded(7);
        let a = rank(&policy, &req(8), &cands, &[]);
        let mut rev = cands.clone();
        rev.reverse();
        let b = rank(&policy, &req(8), &rev, &[]);
        assert_eq!(a, b);
    }
}
