//! # unicore-broker
//!
//! The resource broker the paper's §6 outlook promises: "a resource
//! broker which supports the users in a way that they can specify the
//! needed resources on a more abstract level and the broker finds the
//! appropriate execution server for it. Together with accounting
//! functions and load information the resource broker can find the best
//! system for an application with given time constraints."
//!
//! Three pieces, all deterministic so placements replay byte-identically
//! under a fixed seed:
//!
//! - [`rank`] scores admissible Vsites by expected wait (free nodes,
//!   queue length), observed load, the page's advertised price, and the
//!   staging cost of shipping the job's data there, and returns the full
//!   ranked list — the chosen site first, the fallbacks after it, which
//!   is exactly the order a chaos retarget walks when the chosen site is
//!   quarantined or goes dark.
//! - [`FairShare`] tracks decayed per-user usage and answers the
//!   admission question "is this tenant over its fair share right now?",
//!   so bursty tenants queue behind their own backlog instead of
//!   starving everyone else.
//! - [`jain_index`] measures how fair an allocation actually was, for
//!   the E16 experiment's acceptance gate.
//!
//! The legacy seed API ([`choose_vsite`]) is kept verbatim for callers
//! that predate the broker subsystem.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod score;
mod shares;

pub use score::{
    choose_vsite, rank, BrokerChoice, BrokerPolicy, BrokerRejection, Candidate, LoadSnapshot,
    RankedOffer,
};
pub use shares::{FairShare, FairShareConfig, QuotaDenial};

use unicore_ajo::{AbstractJob, GraphNode, ResourceRequest};

/// Estimated cost of one job in node-seconds: the sum over every execute
/// task (at every nesting level) of `processors × run_time`. This is the
/// currency [`FairShare`] charges at admission — an *estimate*, like any
/// batch scheduler's, refined against nothing because refunds would make
/// admission decisions depend on completion order.
pub fn job_cost(job: &AbstractJob) -> u64 {
    let mut cost = 0u64;
    for (_, node) in &job.nodes {
        match node {
            GraphNode::Task(task) => {
                if task.is_execute() {
                    cost = cost.saturating_add(
                        (task.resources.processors as u64)
                            .saturating_mul(task.resources.run_time_secs),
                    );
                }
            }
            GraphNode::SubJob(sub) => cost = cost.saturating_add(job_cost(sub)),
        }
    }
    cost
}

/// The abstract request a whole job makes of one site: the maximum of
/// each resource axis over its execute tasks (tasks run one at a time
/// under the dependency graph, so maxima — not sums — bound what the
/// site must offer; run time is the one axis that accumulates).
pub fn aggregate_request(job: &AbstractJob) -> ResourceRequest {
    fn fold(job: &AbstractJob, acc: &mut ResourceRequest) {
        for (_, node) in &job.nodes {
            match node {
                GraphNode::Task(task) => {
                    if task.is_execute() {
                        let r = &task.resources;
                        acc.processors = acc.processors.max(r.processors);
                        acc.memory_mb = acc.memory_mb.max(r.memory_mb);
                        acc.disk_permanent_mb = acc.disk_permanent_mb.max(r.disk_permanent_mb);
                        acc.disk_temporary_mb = acc.disk_temporary_mb.max(r.disk_temporary_mb);
                        acc.run_time_secs = acc.run_time_secs.saturating_add(r.run_time_secs);
                    }
                }
                GraphNode::SubJob(sub) => fold(sub, acc),
            }
        }
    }
    let mut acc = ResourceRequest {
        processors: 1,
        run_time_secs: 0,
        memory_mb: 0,
        disk_permanent_mb: 0,
        disk_temporary_mb: 0,
    };
    fold(job, &mut acc);
    acc.run_time_secs = acc.run_time_secs.max(60);
    acc
}

/// Megabytes (rounded up) the job's portfolio would have to be staged to
/// a site that does not already hold it — the data-plane cost a
/// retargeting decision weighs against a shorter queue elsewhere.
pub fn staging_mb(job: &AbstractJob) -> u64 {
    let bytes: u64 = job.portfolio.iter().map(|p| p.data.len() as u64).sum();
    bytes.div_ceil(1024 * 1024)
}

/// Jain's fairness index over per-tenant allocations: `(Σx)² / (n·Σx²)`.
/// 1.0 is perfectly fair; `1/n` is one tenant taking everything. Empty
/// or all-zero inputs count as perfectly fair (nothing was contested).
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicore_ajo::{
        AbstractTask, ActionId, ExecuteKind, TaskKind, UserAttributes, VsiteAddress,
    };

    fn job_with(tasks: &[(u32, u64)]) -> AbstractJob {
        let mut job = AbstractJob::new(
            "j",
            VsiteAddress::new("FZJ", "T3E"),
            UserAttributes::new("C=DE, CN=alice", "zam"),
        );
        for (i, &(procs, secs)) in tasks.iter().enumerate() {
            job.nodes.push((
                ActionId(i as u64 + 1),
                GraphNode::Task(AbstractTask {
                    name: format!("t{i}"),
                    resources: ResourceRequest::minimal()
                        .with_processors(procs)
                        .with_run_time(secs),
                    kind: TaskKind::Execute(ExecuteKind::Script { script: "x".into() }),
                }),
            ));
        }
        job
    }

    #[test]
    fn job_cost_sums_node_seconds() {
        let job = job_with(&[(8, 3600), (2, 600)]);
        assert_eq!(job_cost(&job), 8 * 3600 + 2 * 600);
    }

    #[test]
    fn aggregate_takes_maxima_and_sums_run_time() {
        let job = job_with(&[(8, 3600), (64, 600)]);
        let agg = aggregate_request(&job);
        assert_eq!(agg.processors, 64);
        assert_eq!(agg.run_time_secs, 4200);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        let skew = jain_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-9);
    }

    #[test]
    fn staging_rounds_up() {
        let mut job = job_with(&[(1, 60)]);
        job.portfolio.push(unicore_ajo::PortfolioFile {
            name: "x".into(),
            data: vec![0u8; 1024 * 1024 + 1].into(),
        });
        assert_eq!(staging_mb(&job), 2);
    }
}
