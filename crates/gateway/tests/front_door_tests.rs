//! Front-door integration: handshakes, resumption, rate limiting, live
//! revocation, and multiplexed poll frames over one sealed connection.

use std::sync::Arc;
use std::time::Duration;
use unicore_certs::{
    CertificateAuthority, DistinguishedName, Identity, KeyUsage, TrustStore, Validity,
};
use unicore_crypto::CryptoRng;
use unicore_gateway::{
    decode_frames, encode_frames, FrontDoor, FrontDoorConn, FrontDoorError, MuxFrame,
    RateLimitConfig,
};
use unicore_simnet::wire_pair;
use unicore_telemetry::Telemetry;
use unicore_transport::{client_handshake, SecureChannel, SessionCache};

fn dn(cn: &str) -> DistinguishedName {
    DistinguishedName::new("DE", "FZJ", "ZAM", cn)
}

struct World {
    ca: CertificateAuthority,
    trust: Arc<TrustStore>,
    rng: CryptoRng,
}

fn world(seed: u64) -> World {
    let mut rng = CryptoRng::from_u64(seed);
    let ca = CertificateAuthority::new_root(
        dn("UNICORE CA"),
        Validity::starting_at(0, 100_000),
        512,
        &mut rng,
    );
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone()).unwrap();
    World {
        ca,
        trust: Arc::new(trust),
        rng,
    }
}

fn identity(w: &mut World, cn: &str, usage: KeyUsage) -> Identity {
    w.ca.issue_identity(dn(cn), usage, Validity::starting_at(0, 50_000), &mut w.rng)
        .unwrap()
}

/// Connects `user` through `door`, driving both sides on two threads.
fn connect(
    door: &mut FrontDoor,
    user: &Arc<Identity>,
    trust: &Arc<TrustStore>,
    cache: &SessionCache,
    now: u64,
    seed: u64,
) -> (
    Result<SecureChannel, unicore_transport::TransportError>,
    Result<FrontDoorConn, FrontDoorError>,
) {
    let (cw, sw) = wire_pair();
    let cep = unicore_transport::Endpoint {
        identity: user.clone(),
        intermediates: Vec::new(),
        trust: trust.clone(),
        now,
        timeout: Duration::from_secs(5),
        ticket_ttl: unicore_transport::DEFAULT_TICKET_TTL,
        telemetry: Telemetry::disabled(),
    };
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            let mut rng = CryptoRng::from_u64(seed).fork("server");
            door.accept(sw, now, &mut rng)
        });
        let mut rng = CryptoRng::from_u64(seed).fork("client");
        let client = client_handshake(cw, &cep, "FZJ", cache, &mut rng);
        (client, server.join().unwrap())
    })
}

#[test]
fn accept_resume_and_telemetry() {
    let mut w = world(1);
    let user = Arc::new(identity(&mut w, "alice", KeyUsage::user()));
    let gw_id = identity(&mut w, "fzj-gw", KeyUsage::server());
    let mut door = FrontDoor::new(gw_id, w.trust.clone(), 64);
    let telemetry = Telemetry::collecting(0);
    door.set_telemetry(telemetry.clone());
    let cc = SessionCache::new(8);

    let (c1, s1) = connect(&mut door, &user, &w.trust.clone(), &cc, 100, 11);
    let conn1 = s1.unwrap();
    c1.unwrap();
    assert!(!conn1.resumed());
    assert_eq!(door.active_sessions(), 1);
    door.disconnect(conn1);
    assert_eq!(door.active_sessions(), 0);

    let (c2, s2) = connect(&mut door, &user, &w.trust.clone(), &cc, 101, 12);
    let conn2 = s2.unwrap();
    assert!(c2.unwrap().resumed());
    assert!(conn2.resumed());
    door.disconnect(conn2);

    let snap = telemetry.metrics_snapshot();
    assert_eq!(snap.counter("gateway.sessions.full"), 1);
    assert_eq!(snap.counter("gateway.sessions.resumed"), 1);
    assert_eq!(snap.gauge("gateway.sessions.active"), 0);
}

#[test]
fn connection_rate_limit_turns_away_storms() {
    let mut w = world(2);
    let user = Arc::new(identity(&mut w, "alice", KeyUsage::user()));
    let gw_id = identity(&mut w, "fzj-gw", KeyUsage::server());
    let mut door = FrontDoor::new(gw_id, w.trust.clone(), 64);
    let telemetry = Telemetry::collecting(0);
    door.set_telemetry(telemetry.clone());
    door.set_rate_limit(RateLimitConfig::new(1, 2));
    let cc = SessionCache::new(8);
    let trust = w.trust.clone();

    let mut accepted = 0;
    let mut limited = 0;
    for i in 0..5 {
        let (_c, s) = connect(&mut door, &user, &trust, &cc, 200, 20 + i);
        match s {
            Ok(conn) => {
                accepted += 1;
                door.disconnect(conn);
            }
            Err(FrontDoorError::RateLimited(who)) => {
                limited += 1;
                assert!(who.contains("alice"));
            }
            Err(e) => panic!("unexpected: {e:?}"),
        }
    }
    assert_eq!(accepted, 2, "burst budget");
    assert_eq!(limited, 3);
    let snap = telemetry.metrics_snapshot();
    assert_eq!(snap.counter("gateway.ratelimit.connect.rejected"), 3);

    // A second later one token refills: the storm subsides.
    let (_c, s) = connect(&mut door, &user, &trust, &cc, 201, 30);
    let conn = s.unwrap();
    door.disconnect(conn);
}

#[test]
fn revocation_kills_cache_and_live_connection() {
    let mut w = world(3);
    let alice = Arc::new(identity(&mut w, "alice", KeyUsage::user()));
    let bob = Arc::new(identity(&mut w, "bob", KeyUsage::user()));
    let gw_id = identity(&mut w, "fzj-gw", KeyUsage::server());
    let mut door = FrontDoor::new(gw_id, w.trust.clone(), 64);
    let alice_cache = SessionCache::new(8);
    let bob_cache = SessionCache::new(8);
    let trust = w.trust.clone();

    let (ca1, sa1) = connect(&mut door, &alice, &trust, &alice_cache, 300, 40);
    let alice_conn = sa1.unwrap();
    ca1.unwrap();
    let (cb1, sb1) = connect(&mut door, &bob, &trust, &bob_cache, 300, 41);
    let bob_conn = sb1.unwrap();
    cb1.unwrap();
    assert_eq!(door.cache().len(), 2);

    // Revoke alice mid-session.
    w.ca.revoke(alice.cert.tbs.serial);
    let crl = w.ca.publish_crl(301);
    let sweep = door.install_crl(crl).unwrap();
    assert_eq!(sweep.killed, 1, "alice's live connection killed");
    assert_eq!(sweep.invalidated, 1, "alice's cached session dropped");
    assert!(alice_conn.revoked());
    assert!(!bob_conn.revoked());
    assert_eq!(door.killed_dns(), vec![alice.cert.tbs.subject.to_string()]);

    // Alice cannot resume (her entry is gone) nor full-handshake (CRL).
    let (ca2, sa2) = connect(&mut door, &alice, &trust, &alice_cache, 302, 42);
    assert!(sa2.is_err());
    assert!(ca2.is_err());

    // Bob still resumes fine.
    let (cb2, sb2) = connect(&mut door, &bob, &trust, &bob_cache, 302, 43);
    let bob2 = sb2.unwrap();
    assert!(cb2.unwrap().resumed());

    door.disconnect(alice_conn);
    door.disconnect(bob_conn);
    door.disconnect(bob2);
}

#[test]
fn multiplexed_polls_over_one_sealed_connection() {
    let mut w = world(4);
    let user = Arc::new(identity(&mut w, "alice", KeyUsage::user()));
    let gw_id = identity(&mut w, "fzj-gw", KeyUsage::server());
    let mut door = FrontDoor::new(gw_id, w.trust.clone(), 64);
    let cc = SessionCache::new(8);
    let (c, s) = connect(&mut door, &user, &w.trust.clone(), &cc, 400, 50);
    let mut client = c.unwrap();
    let mut conn = s.unwrap();

    // Client: one poll sweep of 10 logical channels in one record.
    let sweep: Vec<MuxFrame> = (0..10u64)
        .map(|flow| MuxFrame::new(flow, format!("poll job {flow}").into_bytes()))
        .collect();
    let wire_frames = encode_frames(&sweep);
    let refs: Vec<&[u8]> = wire_frames.iter().map(|f| f.as_slice()).collect();
    client.send_frames(&refs).unwrap();

    // Server: unpack, answer each flow in place, send one batch back.
    let raw = conn.chan.recv_frames(Duration::from_secs(1)).unwrap();
    let polls = decode_frames(&raw).unwrap();
    assert_eq!(polls.len(), 10);
    let replies: Vec<MuxFrame> = polls
        .iter()
        .map(|p| {
            assert!(!conn.revoked(), "in-flight polls check the kill switch");
            let mut body = b"status:".to_vec();
            body.extend_from_slice(&p.payload);
            MuxFrame::new(p.flow, body)
        })
        .collect();
    let reply_frames = encode_frames(&replies);
    let refs: Vec<&[u8]> = reply_frames.iter().map(|f| f.as_slice()).collect();
    conn.chan.send_frames(&refs).unwrap();

    // Client fans responses back out by flow id.
    let raw = client.recv_frames(Duration::from_secs(1)).unwrap();
    let answers = decode_frames(&raw).unwrap();
    assert_eq!(answers.len(), 10);
    for a in &answers {
        assert_eq!(
            a.payload,
            format!("status:poll job {}", a.flow).into_bytes()
        );
    }
    door.disconnect(conn);
}
