//! The UNICORE user database (UUDB).
//!
//! "With the X.509 user certificate being the uniform and unique UNICORE
//! user identification a mapping process has been implemented in the form
//! of a Java servlet which maps the user's distinguished name to the
//! corresponding user-id. Each UNICORE site administration therefore
//! maintains a user data base for the local mapping." (§5.2)
//!
//! The decisive property — the reason UNICORE needs no uniform uid/gid
//! across sites — is that each Usite's UUDB is independent: the same DN may
//! map to `romberg` at FZJ and `mr042` at RUS.

use std::collections::HashMap;
use unicore_codec::{CodecError, DerCodec, Fields, Value};

/// One user's entry at a Usite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserEntry {
    /// Login used on the site's Vsites by default.
    pub default_login: String,
    /// Vsite-specific overrides (Vsite name → login).
    pub vsite_logins: HashMap<String, String>,
    /// Account groups the user may charge.
    pub account_groups: Vec<String>,
    /// Disabled entries refuse all mapping (site ban).
    pub enabled: bool,
}

impl UserEntry {
    /// A simple enabled entry with one login and one account group.
    pub fn new(login: impl Into<String>, group: impl Into<String>) -> Self {
        UserEntry {
            default_login: login.into(),
            vsite_logins: HashMap::new(),
            account_groups: vec![group.into()],
            enabled: true,
        }
    }

    /// Adds a Vsite-specific login override.
    pub fn with_vsite_login(mut self, vsite: impl Into<String>, login: impl Into<String>) -> Self {
        self.vsite_logins.insert(vsite.into(), login.into());
        self
    }

    /// The login effective at `vsite`.
    pub fn login_for(&self, vsite: &str) -> &str {
        self.vsite_logins
            .get(vsite)
            .map(String::as_str)
            .unwrap_or(&self.default_login)
    }
}

/// Mapping failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The DN has no entry in this site's UUDB.
    UnknownDn(String),
    /// The entry exists but is disabled.
    Disabled(String),
    /// The requested account group is not permitted for this user.
    BadAccountGroup {
        /// The DN.
        dn: String,
        /// The requested group.
        group: String,
    },
}

impl core::fmt::Display for MappingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MappingError::UnknownDn(dn) => write!(f, "no UUDB entry for {dn}"),
            MappingError::Disabled(dn) => write!(f, "UUDB entry for {dn} is disabled"),
            MappingError::BadAccountGroup { dn, group } => {
                write!(f, "{dn} may not charge account group {group}")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// The per-Usite user database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Uudb {
    entries: HashMap<String, UserEntry>,
}

impl Uudb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the entry for `dn`.
    pub fn add(&mut self, dn: impl Into<String>, entry: UserEntry) {
        self.entries.insert(dn.into(), entry);
    }

    /// Removes the entry for `dn`.
    pub fn remove(&mut self, dn: &str) -> bool {
        self.entries.remove(dn).is_some()
    }

    /// Disables an entry in place (keeps history).
    pub fn disable(&mut self, dn: &str) -> bool {
        match self.entries.get_mut(dn) {
            Some(e) => {
                e.enabled = false;
                true
            }
            None => false,
        }
    }

    /// Looks up the raw entry.
    pub fn entry(&self, dn: &str) -> Option<&UserEntry> {
        self.entries.get(dn)
    }

    /// Maps a DN to the login effective at `vsite`, checking the account
    /// group when one is requested.
    pub fn map(
        &self,
        dn: &str,
        vsite: &str,
        account_group: Option<&str>,
    ) -> Result<MappedUser, MappingError> {
        let entry = self
            .entries
            .get(dn)
            .ok_or_else(|| MappingError::UnknownDn(dn.to_owned()))?;
        if !entry.enabled {
            return Err(MappingError::Disabled(dn.to_owned()));
        }
        let group = match account_group {
            Some(g) => {
                if !entry.account_groups.iter().any(|x| x == g) {
                    return Err(MappingError::BadAccountGroup {
                        dn: dn.to_owned(),
                        group: g.to_owned(),
                    });
                }
                g.to_owned()
            }
            None => entry
                .account_groups
                .first()
                .cloned()
                .unwrap_or_else(|| "users".to_owned()),
        };
        Ok(MappedUser {
            dn: dn.to_owned(),
            login: entry.login_for(vsite).to_owned(),
            account_group: group,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The result of a successful mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedUser {
    /// The certificate DN (the UNICORE identity).
    pub dn: String,
    /// The local login at the target Vsite.
    pub login: String,
    /// The account group to charge.
    pub account_group: String,
}

impl DerCodec for Uudb {
    fn to_value(&self) -> Value {
        let mut dns: Vec<&String> = self.entries.keys().collect();
        dns.sort();
        Value::Sequence(
            dns.into_iter()
                .map(|dn| {
                    let e = &self.entries[dn];
                    let mut vsites: Vec<(&String, &String)> = e.vsite_logins.iter().collect();
                    vsites.sort();
                    Value::Sequence(vec![
                        Value::string(dn),
                        Value::string(&e.default_login),
                        Value::Sequence(
                            vsites
                                .into_iter()
                                .map(|(v, l)| {
                                    Value::Sequence(vec![Value::string(v), Value::string(l)])
                                })
                                .collect(),
                        ),
                        Value::Sequence(e.account_groups.iter().map(Value::string).collect()),
                        Value::Boolean(e.enabled),
                    ])
                })
                .collect(),
        )
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let items = value.as_sequence().ok_or(CodecError::BadValue("Uudb"))?;
        let mut db = Uudb::new();
        for item in items {
            let mut f = Fields::open(item, "UudbEntry")?;
            let dn = f.next_string()?;
            let default_login = f.next_string()?;
            let mut vsite_logins = HashMap::new();
            for pair in f.next_sequence()? {
                let mut pf = Fields::open(pair, "vsite login")?;
                vsite_logins.insert(pf.next_string()?, pf.next_string()?);
                pf.finish()?;
            }
            let account_groups = f
                .next_sequence()?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or(CodecError::BadValue("account group"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let enabled = f.next_bool()?;
            f.finish()?;
            db.add(
                dn,
                UserEntry {
                    default_login,
                    vsite_logins,
                    account_groups,
                    enabled,
                },
            );
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=Mathilde Romberg";

    fn db() -> Uudb {
        let mut db = Uudb::new();
        db.add(
            DN,
            UserEntry::new("romberg", "zam").with_vsite_login("SP2", "mrom01"),
        );
        db
    }

    #[test]
    fn maps_default_and_override() {
        let db = db();
        let m = db.map(DN, "T3E", None).unwrap();
        assert_eq!(m.login, "romberg");
        assert_eq!(m.account_group, "zam");
        let m2 = db.map(DN, "SP2", None).unwrap();
        assert_eq!(m2.login, "mrom01");
    }

    #[test]
    fn unknown_dn_fails() {
        let db = db();
        assert!(matches!(
            db.map("C=DE, O=X, OU=Y, CN=nobody", "T3E", None),
            Err(MappingError::UnknownDn(_))
        ));
    }

    #[test]
    fn disabled_entry_fails() {
        let mut db = db();
        assert!(db.disable(DN));
        assert!(matches!(
            db.map(DN, "T3E", None),
            Err(MappingError::Disabled(_))
        ));
        assert!(!db.disable("unknown"));
    }

    #[test]
    fn account_group_checked() {
        let db = db();
        assert!(db.map(DN, "T3E", Some("zam")).is_ok());
        assert!(matches!(
            db.map(DN, "T3E", Some("physics")),
            Err(MappingError::BadAccountGroup { .. })
        ));
    }

    #[test]
    fn same_dn_different_sites_different_logins() {
        // The paper's key site-autonomy property.
        let fzj = db();
        let mut rus = Uudb::new();
        rus.add(DN, UserEntry::new("mr042", "hpc"));
        let at_fzj = fzj.map(DN, "T3E", None).unwrap();
        let at_rus = rus.map(DN, "VPP", None).unwrap();
        assert_ne!(at_fzj.login, at_rus.login);
    }

    #[test]
    fn removal() {
        let mut db = db();
        assert!(db.remove(DN));
        assert!(!db.remove(DN));
        assert!(db.is_empty());
    }

    #[test]
    fn der_round_trip() {
        let mut db = db();
        db.add(
            "C=DE, O=ZIB, OU=SC, CN=alice",
            UserEntry {
                default_login: "alice1".into(),
                vsite_logins: HashMap::from([("T3E".into(), "ali".into())]),
                account_groups: vec!["sc".into(), "viz".into()],
                enabled: false,
            },
        );
        let back = Uudb::from_der(&db.to_der()).unwrap();
        assert_eq!(back, db);
    }
}
