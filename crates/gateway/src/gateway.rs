//! The gateway (Java security servlet) proper: certificate-based
//! authentication, DN → login mapping, optional site-specific checks, and
//! an audit trail.

use crate::uudb::{MappedUser, MappingError, Uudb};
use std::collections::VecDeque;
use unicore_certs::Certificate;
use unicore_telemetry::{Counter, Telemetry};

/// Outcome of an authentication + mapping attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthDecision {
    /// Accepted: the user is mapped.
    Accepted(MappedUser),
    /// Refused with a reason.
    Refused(String),
}

impl AuthDecision {
    /// True when accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AuthDecision::Accepted(_))
    }
}

/// One audit line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Simulation time of the decision (seconds).
    pub at: u64,
    /// The presented DN.
    pub dn: String,
    /// The target Vsite.
    pub vsite: String,
    /// What was decided.
    pub accepted: bool,
    /// Detail (mapped login or refusal reason).
    pub detail: String,
}

/// Site-specific additional authentication ("for sites that require the
/// use of smart cards or run DCE it also offers an interface for
/// additional site specific authentication", §4.2).
pub type SiteAuthHook =
    Box<dyn Fn(&Certificate, Option<&[u8]>) -> Result<(), String> + Send + Sync>;

/// Default bound of the audit ring buffer.
pub const DEFAULT_AUDIT_CAPACITY: usize = 10_000;

/// Authentication counters, fetched once from the telemetry registry.
struct GatewayMetrics {
    accepted: Counter,
    refused: Counter,
    audit_dropped: Counter,
}

impl Default for GatewayMetrics {
    fn default() -> Self {
        GatewayMetrics {
            accepted: Counter::detached(),
            refused: Counter::detached(),
            audit_dropped: Counter::detached(),
        }
    }
}

impl GatewayMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        GatewayMetrics {
            accepted: telemetry.counter("gateway.authn.accepted"),
            refused: telemetry.counter("gateway.authn.refused"),
            audit_dropped: telemetry.counter("gateway.audit.dropped"),
        }
    }
}

/// The gateway of one Usite.
///
/// Transport-level certificate *validation* happens in
/// `unicore-transport`; the gateway receives the already-validated peer
/// certificate and performs the UNICORE-level steps: usage check, optional
/// site-specific authentication, and the UUDB mapping.
pub struct Gateway {
    usite: String,
    uudb: Uudb,
    site_hook: Option<SiteAuthHook>,
    /// Bounded ring: the newest `audit_capacity` decisions. Overflow is
    /// counted in `gateway.audit.dropped` rather than growing forever.
    audit: VecDeque<AuditRecord>,
    audit_capacity: usize,
    /// Lifetime count of audit records evicted from the ring. Kept as a
    /// plain field (not only the telemetry counter) so the loss is
    /// reportable even on sites that never enabled telemetry, and
    /// survives a late `set_telemetry` swapping the counter cell.
    audit_dropped_total: u64,
    metrics: GatewayMetrics,
}

impl Gateway {
    /// A gateway for `usite` with its user database.
    pub fn new(usite: impl Into<String>, uudb: Uudb) -> Self {
        Gateway {
            usite: usite.into(),
            uudb,
            site_hook: None,
            audit: VecDeque::new(),
            audit_capacity: DEFAULT_AUDIT_CAPACITY,
            audit_dropped_total: 0,
            metrics: GatewayMetrics::default(),
        }
    }

    /// Publishes this gateway's counters into `telemetry`'s registry
    /// (`gateway.authn.accepted`, `gateway.authn.refused`,
    /// `gateway.audit.dropped`).
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = GatewayMetrics::new(telemetry);
    }

    /// Resizes the audit ring (minimum 1). Shrinking drops the oldest
    /// records, counting them as dropped.
    pub fn set_audit_capacity(&mut self, capacity: usize) {
        self.audit_capacity = capacity.max(1);
        while self.audit.len() > self.audit_capacity {
            self.audit.pop_front();
            self.audit_dropped_total += 1;
            self.metrics.audit_dropped.inc();
        }
    }

    /// Lifetime count of audit records lost to ring overflow — the
    /// operator's data-loss signal in the `Monitor` report.
    pub fn audit_dropped(&self) -> u64 {
        self.audit_dropped_total
    }

    fn push_audit(&mut self, record: AuditRecord) {
        if self.audit.len() >= self.audit_capacity {
            self.audit.pop_front();
            self.audit_dropped_total += 1;
            self.metrics.audit_dropped.inc();
        }
        self.audit.push_back(record);
    }

    /// The Usite this gateway fronts.
    pub fn usite(&self) -> &str {
        &self.usite
    }

    /// Installs the site-specific authentication hook.
    pub fn set_site_hook(&mut self, hook: SiteAuthHook) {
        self.site_hook = Some(hook);
    }

    /// Mutable access to the UUDB (site administration).
    pub fn uudb_mut(&mut self) -> &mut Uudb {
        &mut self.uudb
    }

    /// Read access to the UUDB.
    pub fn uudb(&self) -> &Uudb {
        &self.uudb
    }

    /// Authenticates an already-transport-validated peer for `vsite`,
    /// mapping its DN to a local login.
    pub fn authorize(
        &mut self,
        peer: &Certificate,
        vsite: &str,
        account_group: Option<&str>,
        site_security: Option<&[u8]>,
        now: u64,
    ) -> AuthDecision {
        let dn = peer.tbs.subject.to_string();

        // UNICORE-level usage check: users and peer servers may consign.
        if !peer.tbs.usage.client_auth {
            return self.refuse(
                now,
                &dn,
                vsite,
                "certificate lacks client authentication usage",
            );
        }
        // Site-specific additional authentication.
        if let Some(hook) = &self.site_hook {
            if let Err(reason) = hook(peer, site_security) {
                let msg = format!("site-specific authentication failed: {reason}");
                return self.refuse(now, &dn, vsite, &msg);
            }
        }
        // UUDB mapping.
        match self.uudb.map(&dn, vsite, account_group) {
            Ok(mapped) => {
                self.metrics.accepted.inc();
                self.push_audit(AuditRecord {
                    at: now,
                    dn: dn.clone(),
                    vsite: vsite.to_owned(),
                    accepted: true,
                    detail: format!("mapped to {}", mapped.login),
                });
                AuthDecision::Accepted(mapped)
            }
            Err(e) => {
                let msg = match e {
                    MappingError::UnknownDn(_) => "no UUDB entry".to_owned(),
                    MappingError::Disabled(_) => "entry disabled".to_owned(),
                    MappingError::BadAccountGroup { group, .. } => {
                        format!("account group {group} not permitted")
                    }
                };
                self.refuse(now, &dn, vsite, &msg)
            }
        }
    }

    /// Maps a bare DN (no certificate) for `vsite`.
    ///
    /// Used for NJS–NJS consignment: the *channel* is authenticated by the
    /// peer server's certificate, but the job runs as the original user,
    /// whose DN travels inside the AJO — "the file transfer between
    /// Uspaces has to be accomplished through NJS – NJS communication via
    /// the gateway (security servlet) for user-id mapping" (§5.6).
    pub fn authorize_dn(
        &mut self,
        dn: &str,
        vsite: &str,
        account_group: Option<&str>,
        now: u64,
    ) -> AuthDecision {
        match self.uudb.map(dn, vsite, account_group) {
            Ok(mapped) => {
                self.metrics.accepted.inc();
                self.push_audit(AuditRecord {
                    at: now,
                    dn: dn.to_owned(),
                    vsite: vsite.to_owned(),
                    accepted: true,
                    detail: format!("mapped to {}", mapped.login),
                });
                AuthDecision::Accepted(mapped)
            }
            Err(e) => {
                let msg = e.to_string();
                self.refuse(now, dn, vsite, &msg)
            }
        }
    }

    fn refuse(&mut self, now: u64, dn: &str, vsite: &str, reason: &str) -> AuthDecision {
        self.metrics.refused.inc();
        self.push_audit(AuditRecord {
            at: now,
            dn: dn.to_owned(),
            vsite: vsite.to_owned(),
            accepted: false,
            detail: reason.to_owned(),
        });
        AuthDecision::Refused(reason.to_owned())
    }

    /// The audit trail, oldest first (at most the configured capacity).
    pub fn audit(&self) -> &VecDeque<AuditRecord> {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uudb::UserEntry;
    use unicore_certs::{CertificateAuthority, DistinguishedName, Identity, KeyUsage, Validity};
    use unicore_crypto::CryptoRng;

    fn dn(cn: &str) -> DistinguishedName {
        DistinguishedName::new("DE", "FZJ", "ZAM", cn)
    }

    struct Fixture {
        gw: Gateway,
        alice: Identity,
        server: Identity,
    }

    fn fixture() -> Fixture {
        let mut rng = CryptoRng::from_u64(50);
        let mut ca = CertificateAuthority::new_root(
            dn("CA"),
            Validity::starting_at(0, 100_000),
            512,
            &mut rng,
        );
        let alice = ca
            .issue_identity(
                dn("alice"),
                KeyUsage::user(),
                Validity::starting_at(0, 1_000),
                &mut rng,
            )
            .unwrap();
        let server = ca
            .issue_identity(
                dn("peer-njs"),
                KeyUsage::server(),
                Validity::starting_at(0, 1_000),
                &mut rng,
            )
            .unwrap();
        let mut uudb = Uudb::new();
        uudb.add(
            alice.cert.tbs.subject.to_string(),
            UserEntry::new("alice1", "zam"),
        );
        uudb.add(
            server.cert.tbs.subject.to_string(),
            UserEntry::new("unicored", "system"),
        );
        Fixture {
            gw: Gateway::new("FZJ", uudb),
            alice,
            server,
        }
    }

    #[test]
    fn user_is_mapped() {
        let mut fx = fixture();
        let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, 10);
        let AuthDecision::Accepted(m) = d else {
            panic!("{d:?}")
        };
        assert_eq!(m.login, "alice1");
        assert_eq!(m.account_group, "zam");
        assert_eq!(fx.gw.audit().len(), 1);
        assert!(fx.gw.audit()[0].accepted);
    }

    #[test]
    fn peer_server_certificates_also_map() {
        // NJS acts as a client towards peer sites (§5.3); server certs
        // carry client_auth and map through the UUDB like users.
        let mut fx = fixture();
        let d = fx.gw.authorize(&fx.server.cert, "T3E", None, None, 10);
        assert!(d.is_accepted());
    }

    #[test]
    fn unknown_dn_refused_and_audited() {
        let mut fx = fixture();
        let mut rng = CryptoRng::from_u64(51);
        let mut other_ca = CertificateAuthority::new_root(
            dn("CA2"),
            Validity::starting_at(0, 100_000),
            512,
            &mut rng,
        );
        let stranger = other_ca
            .issue_identity(
                dn("stranger"),
                KeyUsage::user(),
                Validity::starting_at(0, 100),
                &mut rng,
            )
            .unwrap();
        let d = fx.gw.authorize(&stranger.cert, "T3E", None, None, 20);
        assert!(matches!(d, AuthDecision::Refused(_)));
        let rec = fx.gw.audit().back().unwrap();
        assert!(!rec.accepted);
        assert_eq!(rec.detail, "no UUDB entry");
    }

    #[test]
    fn audit_trail_is_bounded_and_drops_are_counted() {
        let mut fx = fixture();
        let telemetry = Telemetry::disabled();
        fx.gw.set_telemetry(&telemetry);
        fx.gw.set_audit_capacity(3);
        for t in 0..5 {
            let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, t);
            assert!(d.is_accepted());
        }
        assert_eq!(fx.gw.audit().len(), 3);
        // Oldest two were evicted: the ring holds decisions 2, 3, 4.
        assert_eq!(fx.gw.audit()[0].at, 2);
        assert_eq!(fx.gw.audit().back().unwrap().at, 4);
        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("gateway.audit.dropped"), 2);
        assert_eq!(snap.counter("gateway.authn.accepted"), 5);

        // Shrinking also evicts and counts.
        fx.gw.set_audit_capacity(1);
        assert_eq!(fx.gw.audit().len(), 1);
        assert_eq!(
            telemetry
                .metrics_snapshot()
                .counter("gateway.audit.dropped"),
            4
        );
    }

    #[test]
    fn refusals_are_counted() {
        let mut fx = fixture();
        let telemetry = Telemetry::disabled();
        fx.gw.set_telemetry(&telemetry);
        let d = fx
            .gw
            .authorize(&fx.alice.cert, "T3E", Some("physics"), None, 30);
        assert!(!d.is_accepted());
        assert_eq!(
            telemetry
                .metrics_snapshot()
                .counter("gateway.authn.refused"),
            1
        );
    }

    #[test]
    fn bad_account_group_refused() {
        let mut fx = fixture();
        let d = fx
            .gw
            .authorize(&fx.alice.cert, "T3E", Some("physics"), None, 30);
        assert!(matches!(d, AuthDecision::Refused(r) if r.contains("physics")));
    }

    #[test]
    fn site_hook_can_refuse() {
        let mut fx = fixture();
        fx.gw.set_site_hook(Box::new(|_cert, sec| {
            // Simulated smart-card check: require the magic token.
            match sec {
                Some(b"smartcard:42") => Ok(()),
                _ => Err("smart card required".to_owned()),
            }
        }));
        let refused = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, 40);
        assert!(matches!(refused, AuthDecision::Refused(r) if r.contains("smart card")));
        let ok = fx
            .gw
            .authorize(&fx.alice.cert, "T3E", None, Some(b"smartcard:42"), 41);
        assert!(ok.is_accepted());
    }

    #[test]
    fn disabled_user_refused() {
        let mut fx = fixture();
        let dn_str = fx.alice.cert.tbs.subject.to_string();
        fx.gw.uudb_mut().disable(&dn_str);
        let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, 50);
        assert!(matches!(d, AuthDecision::Refused(r) if r.contains("disabled")));
    }
}
