//! The gateway (Java security servlet) proper: certificate-based
//! authentication, DN → login mapping, optional site-specific checks, and
//! an audit trail.

use crate::ratelimit::{RateLimitConfig, RateLimiter};
use crate::uudb::{MappedUser, MappingError, Uudb};
use std::collections::{HashMap, HashSet, VecDeque};
use unicore_certs::Certificate;
use unicore_telemetry::{Counter, Telemetry};

/// Outcome of an authentication + mapping attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthDecision {
    /// Accepted: the user is mapped.
    Accepted(MappedUser),
    /// Refused with a reason.
    Refused(String),
}

impl AuthDecision {
    /// True when accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AuthDecision::Accepted(_))
    }
}

/// One audit line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Simulation time of the decision (seconds).
    pub at: u64,
    /// The presented DN.
    pub dn: String,
    /// The target Vsite.
    pub vsite: String,
    /// What was decided.
    pub accepted: bool,
    /// Detail (mapped login or refusal reason).
    pub detail: String,
}

/// Site-specific additional authentication ("for sites that require the
/// use of smart cards or run DCE it also offers an interface for
/// additional site specific authentication", §4.2).
pub type SiteAuthHook =
    Box<dyn Fn(&Certificate, Option<&[u8]>) -> Result<(), String> + Send + Sync>;

/// Default bound of the audit ring buffer.
pub const DEFAULT_AUDIT_CAPACITY: usize = 10_000;

/// One memoized successful mapping. Valid only while its epoch matches
/// the gateway's current UUDB epoch.
struct CachedMapping {
    epoch: u64,
    vsite: String,
    account_group: Option<String>,
    mapped: MappedUser,
    /// Pre-rendered audit detail (`mapped to <login>`), so the hot path
    /// clones instead of formatting.
    detail: String,
}

/// Authentication counters, fetched once from the telemetry registry.
struct GatewayMetrics {
    accepted: Counter,
    refused: Counter,
    audit_dropped: Counter,
    ratelimit_allowed: Counter,
    ratelimit_rejected: Counter,
    revoked_rejected: Counter,
}

impl Default for GatewayMetrics {
    fn default() -> Self {
        GatewayMetrics {
            accepted: Counter::detached(),
            refused: Counter::detached(),
            audit_dropped: Counter::detached(),
            ratelimit_allowed: Counter::detached(),
            ratelimit_rejected: Counter::detached(),
            revoked_rejected: Counter::detached(),
        }
    }
}

impl GatewayMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        GatewayMetrics {
            accepted: telemetry.counter("gateway.authn.accepted"),
            refused: telemetry.counter("gateway.authn.refused"),
            audit_dropped: telemetry.counter("gateway.audit.dropped"),
            ratelimit_allowed: telemetry.counter("gateway.ratelimit.allowed"),
            ratelimit_rejected: telemetry.counter("gateway.ratelimit.rejected"),
            revoked_rejected: telemetry.counter("gateway.sessions.revoked_rejects"),
        }
    }
}

/// The gateway of one Usite.
///
/// Transport-level certificate *validation* happens in
/// `unicore-transport`; the gateway receives the already-validated peer
/// certificate and performs the UNICORE-level steps: usage check, optional
/// site-specific authentication, and the UUDB mapping.
pub struct Gateway {
    usite: String,
    uudb: Uudb,
    site_hook: Option<SiteAuthHook>,
    /// Bounded ring: the newest `audit_capacity` decisions. Overflow is
    /// counted in `gateway.audit.dropped` rather than growing forever.
    audit: VecDeque<AuditRecord>,
    audit_capacity: usize,
    /// Lifetime count of audit records evicted from the ring. Kept as a
    /// plain field (not only the telemetry counter) so the loss is
    /// reportable even on sites that never enabled telemetry, and
    /// survives a late `set_telemetry` swapping the counter cell.
    audit_dropped_total: u64,
    metrics: GatewayMetrics,
    /// DN → memoized mappings, consulted before walking the UUDB. An
    /// entry is live only while its epoch equals `map_epoch`;
    /// [`Gateway::uudb_mut`] bumps the epoch, invalidating the whole
    /// memo in O(1) without tracking individual edits.
    map_cache: HashMap<String, Vec<CachedMapping>>,
    map_epoch: u64,
    /// Per-DN request rate limiter; `None` means unlimited (the default,
    /// so existing deployments are unaffected until opted in).
    limiter: Option<RateLimiter>,
    /// DNs refused outright: the request-level mirror of a CRL, kept by
    /// DN because gateway admission happens after the transport already
    /// authenticated the certificate.
    revoked_dns: HashSet<String>,
}

impl Gateway {
    /// A gateway for `usite` with its user database.
    pub fn new(usite: impl Into<String>, uudb: Uudb) -> Self {
        Gateway {
            usite: usite.into(),
            uudb,
            site_hook: None,
            audit: VecDeque::new(),
            audit_capacity: DEFAULT_AUDIT_CAPACITY,
            audit_dropped_total: 0,
            metrics: GatewayMetrics::default(),
            map_cache: HashMap::new(),
            map_epoch: 0,
            limiter: None,
            revoked_dns: HashSet::new(),
        }
    }

    /// Publishes this gateway's counters into `telemetry`'s registry
    /// (`gateway.authn.accepted`, `gateway.authn.refused`,
    /// `gateway.audit.dropped`).
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = GatewayMetrics::new(telemetry);
    }

    /// Resizes the audit ring (minimum 1). Shrinking drops the oldest
    /// records, counting them as dropped.
    pub fn set_audit_capacity(&mut self, capacity: usize) {
        self.audit_capacity = capacity.max(1);
        while self.audit.len() > self.audit_capacity {
            self.audit.pop_front();
            self.audit_dropped_total += 1;
            self.metrics.audit_dropped.inc();
        }
    }

    /// Lifetime count of audit records lost to ring overflow — the
    /// operator's data-loss signal in the `Monitor` report.
    pub fn audit_dropped(&self) -> u64 {
        self.audit_dropped_total
    }

    fn push_audit(&mut self, record: AuditRecord) {
        if self.audit.len() >= self.audit_capacity {
            self.audit.pop_front();
            self.audit_dropped_total += 1;
            self.metrics.audit_dropped.inc();
        }
        self.audit.push_back(record);
    }

    /// The Usite this gateway fronts.
    pub fn usite(&self) -> &str {
        &self.usite
    }

    /// Installs the site-specific authentication hook.
    pub fn set_site_hook(&mut self, hook: SiteAuthHook) {
        self.site_hook = Some(hook);
    }

    /// Mutable access to the UUDB (site administration).
    ///
    /// Any mutable access may change mappings, so this advances the
    /// mapping-cache epoch: every memoized mapping becomes stale at once
    /// and the next request per (DN, Vsite, group) re-walks the UUDB.
    pub fn uudb_mut(&mut self) -> &mut Uudb {
        self.map_epoch += 1;
        &mut self.uudb
    }

    /// Read access to the UUDB.
    pub fn uudb(&self) -> &Uudb {
        &self.uudb
    }

    /// DN → login through the mapping memo: a hit at the current epoch
    /// skips the UUDB walk, the group resolution, and the audit-detail
    /// `format!`; a miss maps normally and memoizes. Only successes are
    /// cached — refusals are cold and their reasons vary.
    fn map_cached(
        &mut self,
        dn: &str,
        vsite: &str,
        account_group: Option<&str>,
    ) -> Result<(MappedUser, String), MappingError> {
        if let Some(slots) = self.map_cache.get(dn) {
            for c in slots {
                if c.epoch == self.map_epoch
                    && c.vsite == vsite
                    && c.account_group.as_deref() == account_group
                {
                    return Ok((c.mapped.clone(), c.detail.clone()));
                }
            }
        }
        let mapped = self.uudb.map(dn, vsite, account_group)?;
        let detail = format!("mapped to {}", mapped.login);
        let slots = self.map_cache.entry(dn.to_owned()).or_default();
        slots.retain(|c| c.epoch == self.map_epoch);
        slots.push(CachedMapping {
            epoch: self.map_epoch,
            vsite: vsite.to_owned(),
            account_group: account_group.map(str::to_owned),
            mapped: mapped.clone(),
            detail: detail.clone(),
        });
        Ok((mapped, detail))
    }

    /// Authenticates an already-transport-validated peer for `vsite`,
    /// mapping its DN to a local login.
    pub fn authorize(
        &mut self,
        peer: &Certificate,
        vsite: &str,
        account_group: Option<&str>,
        site_security: Option<&[u8]>,
        now: u64,
    ) -> AuthDecision {
        let dn = peer.tbs.subject.to_string();

        // UNICORE-level usage check: users and peer servers may consign.
        if !peer.tbs.usage.client_auth {
            return self.refuse(
                now,
                &dn,
                vsite,
                "certificate lacks client authentication usage",
            );
        }
        // Site-specific additional authentication.
        if let Some(hook) = &self.site_hook {
            if let Err(reason) = hook(peer, site_security) {
                let msg = format!("site-specific authentication failed: {reason}");
                return self.refuse(now, &dn, vsite, &msg);
            }
        }
        // UUDB mapping.
        match self.map_cached(&dn, vsite, account_group) {
            Ok((mapped, detail)) => {
                self.metrics.accepted.inc();
                self.push_audit(AuditRecord {
                    at: now,
                    dn: dn.clone(),
                    vsite: vsite.to_owned(),
                    accepted: true,
                    detail,
                });
                AuthDecision::Accepted(mapped)
            }
            Err(e) => {
                let msg = match e {
                    MappingError::UnknownDn(_) => "no UUDB entry".to_owned(),
                    MappingError::Disabled(_) => "entry disabled".to_owned(),
                    MappingError::BadAccountGroup { group, .. } => {
                        format!("account group {group} not permitted")
                    }
                };
                self.refuse(now, &dn, vsite, &msg)
            }
        }
    }

    /// Maps a bare DN (no certificate) for `vsite`.
    ///
    /// Used for NJS–NJS consignment: the *channel* is authenticated by the
    /// peer server's certificate, but the job runs as the original user,
    /// whose DN travels inside the AJO — "the file transfer between
    /// Uspaces has to be accomplished through NJS – NJS communication via
    /// the gateway (security servlet) for user-id mapping" (§5.6).
    pub fn authorize_dn(
        &mut self,
        dn: &str,
        vsite: &str,
        account_group: Option<&str>,
        now: u64,
    ) -> AuthDecision {
        match self.map_cached(dn, vsite, account_group) {
            Ok((mapped, detail)) => {
                self.metrics.accepted.inc();
                self.push_audit(AuditRecord {
                    at: now,
                    dn: dn.to_owned(),
                    vsite: vsite.to_owned(),
                    accepted: true,
                    detail,
                });
                AuthDecision::Accepted(mapped)
            }
            Err(e) => {
                let msg = e.to_string();
                self.refuse(now, dn, vsite, &msg)
            }
        }
    }

    /// Installs (or replaces) the per-DN request rate limit.
    pub fn set_rate_limit(&mut self, cfg: RateLimitConfig) {
        self.limiter = Some(RateLimiter::new(cfg));
    }

    /// Removes the request rate limit.
    pub fn clear_rate_limit(&mut self) {
        self.limiter = None;
    }

    /// Marks `dn` as revoked: every subsequent user request is refused
    /// (and audited) until [`reinstate_dn`](Gateway::reinstate_dn).
    pub fn revoke_dn(&mut self, dn: impl Into<String>) {
        self.revoked_dns.insert(dn.into());
    }

    /// Lifts a [`revoke_dn`](Gateway::revoke_dn).
    pub fn reinstate_dn(&mut self, dn: &str) {
        self.revoked_dns.remove(dn);
    }

    /// Whether `dn` is currently revoked at the request level.
    pub fn is_dn_revoked(&self, dn: &str) -> bool {
        self.revoked_dns.contains(dn)
    }

    /// Admission control in front of request dispatch: revocation first,
    /// then the rate limit. Returns `Some(reason)` when the request must
    /// be refused — each refusal is audited exactly once here, so the
    /// caller must not audit again.
    pub fn admit(&mut self, dn: &str, scope: &str, now: u64) -> Option<String> {
        if self.revoked_dns.contains(dn) {
            self.metrics.revoked_rejected.inc();
            let AuthDecision::Refused(reason) = self.refuse(now, dn, scope, "certificate revoked")
            else {
                unreachable!("refuse always refuses")
            };
            return Some(reason);
        }
        if let Some(limiter) = &mut self.limiter {
            if limiter.check(dn, now) {
                self.metrics.ratelimit_allowed.inc();
            } else {
                self.metrics.ratelimit_rejected.inc();
                let AuthDecision::Refused(reason) =
                    self.refuse(now, dn, scope, "rate limit exceeded")
                else {
                    unreachable!("refuse always refuses")
                };
                return Some(reason);
            }
        }
        None
    }

    fn refuse(&mut self, now: u64, dn: &str, vsite: &str, reason: &str) -> AuthDecision {
        self.metrics.refused.inc();
        self.push_audit(AuditRecord {
            at: now,
            dn: dn.to_owned(),
            vsite: vsite.to_owned(),
            accepted: false,
            detail: reason.to_owned(),
        });
        AuthDecision::Refused(reason.to_owned())
    }

    /// The audit trail, oldest first (at most the configured capacity).
    pub fn audit(&self) -> &VecDeque<AuditRecord> {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uudb::UserEntry;
    use unicore_certs::{CertificateAuthority, DistinguishedName, Identity, KeyUsage, Validity};
    use unicore_crypto::CryptoRng;

    fn dn(cn: &str) -> DistinguishedName {
        DistinguishedName::new("DE", "FZJ", "ZAM", cn)
    }

    struct Fixture {
        gw: Gateway,
        alice: Identity,
        server: Identity,
    }

    fn fixture() -> Fixture {
        let mut rng = CryptoRng::from_u64(50);
        let mut ca = CertificateAuthority::new_root(
            dn("CA"),
            Validity::starting_at(0, 100_000),
            512,
            &mut rng,
        );
        let alice = ca
            .issue_identity(
                dn("alice"),
                KeyUsage::user(),
                Validity::starting_at(0, 1_000),
                &mut rng,
            )
            .unwrap();
        let server = ca
            .issue_identity(
                dn("peer-njs"),
                KeyUsage::server(),
                Validity::starting_at(0, 1_000),
                &mut rng,
            )
            .unwrap();
        let mut uudb = Uudb::new();
        uudb.add(
            alice.cert.tbs.subject.to_string(),
            UserEntry::new("alice1", "zam"),
        );
        uudb.add(
            server.cert.tbs.subject.to_string(),
            UserEntry::new("unicored", "system"),
        );
        Fixture {
            gw: Gateway::new("FZJ", uudb),
            alice,
            server,
        }
    }

    #[test]
    fn user_is_mapped() {
        let mut fx = fixture();
        let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, 10);
        let AuthDecision::Accepted(m) = d else {
            panic!("{d:?}")
        };
        assert_eq!(m.login, "alice1");
        assert_eq!(m.account_group, "zam");
        assert_eq!(fx.gw.audit().len(), 1);
        assert!(fx.gw.audit()[0].accepted);
    }

    #[test]
    fn peer_server_certificates_also_map() {
        // NJS acts as a client towards peer sites (§5.3); server certs
        // carry client_auth and map through the UUDB like users.
        let mut fx = fixture();
        let d = fx.gw.authorize(&fx.server.cert, "T3E", None, None, 10);
        assert!(d.is_accepted());
    }

    #[test]
    fn unknown_dn_refused_and_audited() {
        let mut fx = fixture();
        let mut rng = CryptoRng::from_u64(51);
        let mut other_ca = CertificateAuthority::new_root(
            dn("CA2"),
            Validity::starting_at(0, 100_000),
            512,
            &mut rng,
        );
        let stranger = other_ca
            .issue_identity(
                dn("stranger"),
                KeyUsage::user(),
                Validity::starting_at(0, 100),
                &mut rng,
            )
            .unwrap();
        let d = fx.gw.authorize(&stranger.cert, "T3E", None, None, 20);
        assert!(matches!(d, AuthDecision::Refused(_)));
        let rec = fx.gw.audit().back().unwrap();
        assert!(!rec.accepted);
        assert_eq!(rec.detail, "no UUDB entry");
    }

    #[test]
    fn audit_trail_is_bounded_and_drops_are_counted() {
        let mut fx = fixture();
        let telemetry = Telemetry::disabled();
        fx.gw.set_telemetry(&telemetry);
        fx.gw.set_audit_capacity(3);
        for t in 0..5 {
            let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, t);
            assert!(d.is_accepted());
        }
        assert_eq!(fx.gw.audit().len(), 3);
        // Oldest two were evicted: the ring holds decisions 2, 3, 4.
        assert_eq!(fx.gw.audit()[0].at, 2);
        assert_eq!(fx.gw.audit().back().unwrap().at, 4);
        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("gateway.audit.dropped"), 2);
        assert_eq!(snap.counter("gateway.authn.accepted"), 5);

        // Shrinking also evicts and counts.
        fx.gw.set_audit_capacity(1);
        assert_eq!(fx.gw.audit().len(), 1);
        assert_eq!(
            telemetry
                .metrics_snapshot()
                .counter("gateway.audit.dropped"),
            4
        );
    }

    #[test]
    fn refusals_are_counted() {
        let mut fx = fixture();
        let telemetry = Telemetry::disabled();
        fx.gw.set_telemetry(&telemetry);
        let d = fx
            .gw
            .authorize(&fx.alice.cert, "T3E", Some("physics"), None, 30);
        assert!(!d.is_accepted());
        assert_eq!(
            telemetry
                .metrics_snapshot()
                .counter("gateway.authn.refused"),
            1
        );
    }

    #[test]
    fn bad_account_group_refused() {
        let mut fx = fixture();
        let d = fx
            .gw
            .authorize(&fx.alice.cert, "T3E", Some("physics"), None, 30);
        assert!(matches!(d, AuthDecision::Refused(r) if r.contains("physics")));
    }

    #[test]
    fn site_hook_can_refuse() {
        let mut fx = fixture();
        fx.gw.set_site_hook(Box::new(|_cert, sec| {
            // Simulated smart-card check: require the magic token.
            match sec {
                Some(b"smartcard:42") => Ok(()),
                _ => Err("smart card required".to_owned()),
            }
        }));
        let refused = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, 40);
        assert!(matches!(refused, AuthDecision::Refused(r) if r.contains("smart card")));
        let ok = fx
            .gw
            .authorize(&fx.alice.cert, "T3E", None, Some(b"smartcard:42"), 41);
        assert!(ok.is_accepted());
    }

    #[test]
    fn cached_mapping_still_audits_every_request() {
        let mut fx = fixture();
        for t in 0..3 {
            let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, t);
            let AuthDecision::Accepted(m) = d else {
                panic!("{d:?}")
            };
            assert_eq!(m.login, "alice1");
        }
        // Hits 2 and 3 came from the memo but each still left a record.
        assert_eq!(fx.gw.audit().len(), 3);
        assert!(fx
            .gw
            .audit()
            .iter()
            .all(|r| r.accepted && r.detail == "mapped to alice1"));
    }

    #[test]
    fn uudb_mutation_invalidates_cached_mapping() {
        let mut fx = fixture();
        let dn_str = fx.alice.cert.tbs.subject.to_string();
        // Prime the memo...
        assert!(fx
            .gw
            .authorize(&fx.alice.cert, "T3E", None, None, 1)
            .is_accepted());
        // ...then mutate the UUDB through the epoch-bumping accessor.
        fx.gw.uudb_mut().disable(&dn_str);
        let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, 2);
        assert!(
            matches!(d, AuthDecision::Refused(ref r) if r.contains("disabled")),
            "stale cache served a disabled user: {d:?}"
        );
        // Re-enabling (via replace) is also seen immediately.
        fx.gw
            .uudb_mut()
            .add(dn_str, UserEntry::new("alice2", "zam"));
        let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, 3);
        let AuthDecision::Accepted(m) = d else {
            panic!("{d:?}")
        };
        assert_eq!(m.login, "alice2");
    }

    #[test]
    fn cache_keys_on_vsite_and_group() {
        let mut fx = fixture();
        let dn_str = fx.alice.cert.tbs.subject.to_string();
        fx.gw.uudb_mut().add(
            dn_str,
            UserEntry::new("alice1", "zam").with_vsite_login("SP2", "ali"),
        );
        let a = fx
            .gw
            .authorize_dn(&fx.alice.cert.tbs.subject.to_string(), "T3E", None, 1);
        let b = fx
            .gw
            .authorize_dn(&fx.alice.cert.tbs.subject.to_string(), "SP2", None, 2);
        let AuthDecision::Accepted(ma) = a else {
            panic!("{a:?}")
        };
        let AuthDecision::Accepted(mb) = b else {
            panic!("{b:?}")
        };
        assert_eq!(ma.login, "alice1");
        assert_eq!(mb.login, "ali");
        // Repeat both (now cached) and confirm they stay distinct.
        let a2 = fx.gw.authorize_dn(&ma.dn, "T3E", None, 3);
        let b2 = fx.gw.authorize_dn(&mb.dn, "SP2", None, 4);
        assert!(matches!(a2, AuthDecision::Accepted(m) if m.login == "alice1"));
        assert!(matches!(b2, AuthDecision::Accepted(m) if m.login == "ali"));
    }

    #[test]
    fn admission_open_by_default() {
        let mut fx = fixture();
        let dn = fx.alice.cert.tbs.subject.to_string();
        for t in 0..100 {
            assert!(fx.gw.admit(&dn, "gateway", t).is_none());
        }
        assert!(fx.gw.audit().is_empty(), "admissions are not audited");
    }

    #[test]
    fn rate_limit_refusals_audited_exactly_once() {
        let mut fx = fixture();
        let telemetry = Telemetry::disabled();
        fx.gw.set_telemetry(&telemetry);
        fx.gw
            .set_rate_limit(crate::ratelimit::RateLimitConfig::new(1, 3));
        let dn = fx.alice.cert.tbs.subject.to_string();
        let mut refused = 0;
        for _ in 0..10 {
            if fx.gw.admit(&dn, "gateway", 50).is_some() {
                refused += 1;
            }
        }
        assert_eq!(refused, 7, "burst of 3, then refusals");
        let audited = fx
            .gw
            .audit()
            .iter()
            .filter(|r| !r.accepted && r.detail == "rate limit exceeded")
            .count();
        assert_eq!(audited, refused, "every refusal audited exactly once");
        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("gateway.ratelimit.rejected"), 7);
        assert_eq!(snap.counter("gateway.ratelimit.allowed"), 3);

        // Recovery: a second later one token has refilled.
        assert!(fx.gw.admit(&dn, "gateway", 51).is_none());
    }

    #[test]
    fn revoked_dn_refused_until_reinstated() {
        let mut fx = fixture();
        let telemetry = Telemetry::disabled();
        fx.gw.set_telemetry(&telemetry);
        let dn = fx.alice.cert.tbs.subject.to_string();
        fx.gw.revoke_dn(dn.clone());
        assert!(fx.gw.is_dn_revoked(&dn));
        let reason = fx.gw.admit(&dn, "gateway", 10).unwrap();
        assert!(reason.contains("revoked"));
        let rec = fx.gw.audit().back().unwrap();
        assert!(!rec.accepted);
        assert_eq!(rec.detail, "certificate revoked");
        assert_eq!(
            telemetry
                .metrics_snapshot()
                .counter("gateway.sessions.revoked_rejects"),
            1
        );
        fx.gw.reinstate_dn(&dn);
        assert!(fx.gw.admit(&dn, "gateway", 11).is_none());
    }

    #[test]
    fn disabled_user_refused() {
        let mut fx = fixture();
        let dn_str = fx.alice.cert.tbs.subject.to_string();
        fx.gw.uudb_mut().disable(&dn_str);
        let d = fx.gw.authorize(&fx.alice.cert, "T3E", None, None, 50);
        assert!(matches!(d, AuthDecision::Refused(r) if r.contains("disabled")));
    }
}
