//! The connection-scale front door: accepts secure connections for a
//! Usite, tracks live sessions, admits or rejects by rate limit, and
//! enforces CRLs *live* — a revocation kills cached sessions and active
//! connections, not just future handshakes.

use crate::ratelimit::{RateLimitConfig, RateLimiter};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use unicore_certs::{CertError, CertificateRevocationList, Identity, TrustStore};
use unicore_crypto::CryptoRng;
use unicore_simnet::WireEnd;
use unicore_telemetry::{Counter, Gauge, Telemetry};
use unicore_transport::{server_handshake, Endpoint, SecureChannel, SessionCache, TransportError};

/// Why the front door turned a connection away.
#[derive(Debug)]
pub enum FrontDoorError {
    /// The handshake itself failed (bad cert, revoked, protocol error).
    Transport(TransportError),
    /// The DN exceeded its connection rate budget.
    RateLimited(String),
}

impl core::fmt::Display for FrontDoorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrontDoorError::Transport(e) => write!(f, "handshake failed: {e}"),
            FrontDoorError::RateLimited(dn) => write!(f, "rate limit exceeded for {dn}"),
        }
    }
}

impl From<TransportError> for FrontDoorError {
    fn from(e: TransportError) -> Self {
        FrontDoorError::Transport(e)
    }
}

/// What a revocation sweep touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RevocationSweep {
    /// Live connections killed.
    pub killed: usize,
    /// Cached (resumable) sessions invalidated.
    pub invalidated: usize,
}

/// An accepted front-door connection: the secure channel plus the kill
/// switch the door flips when the peer's certificate is revoked.
pub struct FrontDoorConn {
    /// The established secure channel.
    pub chan: SecureChannel,
    conn_id: u64,
    dn: String,
    killed: Arc<AtomicBool>,
}

impl FrontDoorConn {
    /// The peer's DN (rendered once at accept time).
    pub fn dn(&self) -> &str {
        &self.dn
    }

    /// The door-local connection id.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// Whether this session resumed a cached one.
    pub fn resumed(&self) -> bool {
        self.chan.resumed()
    }

    /// True once the door has revoked this connection. Serving loops
    /// must check this before (and while) processing polls: a revoked
    /// cert loses its in-flight work, not just its next handshake.
    pub fn revoked(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }
}

struct LiveEntry {
    dn: String,
    serial: u64,
    killed: Arc<AtomicBool>,
}

struct FrontMetrics {
    active: Gauge,
    full: Counter,
    resumed: Counter,
    failed: Counter,
    killed: Counter,
    invalidated: Counter,
    connect_allowed: Counter,
    connect_rejected: Counter,
}

impl FrontMetrics {
    fn detached() -> Self {
        FrontMetrics {
            active: Gauge::default(),
            full: Counter::detached(),
            resumed: Counter::detached(),
            failed: Counter::detached(),
            killed: Counter::detached(),
            invalidated: Counter::detached(),
            connect_allowed: Counter::detached(),
            connect_rejected: Counter::detached(),
        }
    }

    fn new(t: &Telemetry) -> Self {
        FrontMetrics {
            active: t.gauge("gateway.sessions.active"),
            full: t.counter("gateway.sessions.full"),
            resumed: t.counter("gateway.sessions.resumed"),
            failed: t.counter("gateway.sessions.failed"),
            killed: t.counter("gateway.sessions.killed"),
            invalidated: t.counter("gateway.sessions.invalidated"),
            connect_allowed: t.counter("gateway.ratelimit.connect.allowed"),
            connect_rejected: t.counter("gateway.ratelimit.connect.rejected"),
        }
    }
}

/// The front door of one Usite's gateway.
pub struct FrontDoor {
    identity: Arc<Identity>,
    trust: Arc<TrustStore>,
    cache: SessionCache,
    limiter: Option<RateLimiter>,
    ticket_ttl: u64,
    timeout: Duration,
    next_conn: u64,
    live: HashMap<u64, LiveEntry>,
    telemetry: Telemetry,
    metrics: FrontMetrics,
}

impl FrontDoor {
    /// A front door presenting `identity`, trusting `trust`, caching up
    /// to `session_capacity` resumable sessions.
    pub fn new(identity: Identity, trust: Arc<TrustStore>, session_capacity: usize) -> Self {
        FrontDoor {
            identity: Arc::new(identity),
            trust,
            cache: SessionCache::new(session_capacity),
            limiter: None,
            ticket_ttl: unicore_transport::DEFAULT_TICKET_TTL,
            timeout: Duration::from_secs(5),
            next_conn: 0,
            live: HashMap::new(),
            telemetry: Telemetry::disabled(),
            metrics: FrontMetrics::detached(),
        }
    }

    /// Publishes `gateway.sessions.*` / `gateway.ratelimit.connect.*`
    /// into `telemetry`'s registry.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.metrics = FrontMetrics::new(&telemetry);
        self.telemetry = telemetry;
    }

    /// Overrides the minted resumption-ticket lifetime.
    pub fn set_ticket_ttl(&mut self, ttl: u64) {
        self.ticket_ttl = ttl;
    }

    /// Installs (or replaces) the connection rate limit.
    pub fn set_rate_limit(&mut self, cfg: RateLimitConfig) {
        self.limiter = Some(RateLimiter::new(cfg));
    }

    /// Removes the rate limit.
    pub fn clear_rate_limit(&mut self) {
        self.limiter = None;
    }

    /// The resumable-session cache (shared with the handshakes).
    pub fn cache(&self) -> &SessionCache {
        &self.cache
    }

    /// The current trust store (swapped atomically by [`install_crl`]).
    ///
    /// [`install_crl`]: FrontDoor::install_crl
    pub fn trust(&self) -> &Arc<TrustStore> {
        &self.trust
    }

    /// Number of live (accepted, not yet disconnected) connections.
    pub fn active_sessions(&self) -> usize {
        self.live.len()
    }

    fn endpoint(&self, now: u64) -> Endpoint {
        Endpoint {
            identity: self.identity.clone(),
            intermediates: Vec::new(),
            trust: self.trust.clone(),
            now,
            timeout: self.timeout,
            ticket_ttl: self.ticket_ttl,
            telemetry: self.telemetry.clone(),
        }
    }

    /// Accepts one connection: runs the server handshake (full or
    /// ticket-resumed), charges the peer's DN against the rate limit,
    /// and registers the session for live revocation.
    pub fn accept(
        &mut self,
        wire: WireEnd,
        now: u64,
        rng: &mut CryptoRng,
    ) -> Result<FrontDoorConn, FrontDoorError> {
        let ep = self.endpoint(now);
        let mut chan = match server_handshake(wire, &ep, &self.cache, rng) {
            Ok(c) => c,
            Err(e) => {
                self.metrics.failed.inc();
                return Err(e.into());
            }
        };
        let dn = chan.peer().tbs.subject.to_string();
        if let Some(limiter) = &mut self.limiter {
            if !limiter.check(&dn, now) {
                self.metrics.connect_rejected.inc();
                chan.close();
                return Err(FrontDoorError::RateLimited(dn));
            }
            self.metrics.connect_allowed.inc();
        }
        let serial = chan.peer().tbs.serial;
        let killed = Arc::new(AtomicBool::new(false));
        let conn_id = self.next_conn;
        self.next_conn += 1;
        self.live.insert(
            conn_id,
            LiveEntry {
                dn: dn.clone(),
                serial,
                killed: killed.clone(),
            },
        );
        if chan.resumed() {
            self.metrics.resumed.inc();
        } else {
            self.metrics.full.inc();
        }
        self.metrics.active.add(1);
        Ok(FrontDoorConn {
            chan,
            conn_id,
            dn,
            killed,
        })
    }

    /// Deregisters a connection (normal disconnect or after a kill).
    pub fn disconnect(&mut self, conn: FrontDoorConn) {
        if self.live.remove(&conn.conn_id).is_some() {
            self.metrics.active.add(-1);
        }
        let mut chan = conn.chan;
        chan.close();
    }

    /// Installs a CRL and enforces it immediately: the trust store is
    /// swapped (new handshakes see it), every cached session whose cert
    /// is now revoked is invalidated (resumption dies), and every live
    /// connection on a revoked cert has its kill switch flipped
    /// (in-flight polls die at the next serve check).
    pub fn install_crl(
        &mut self,
        crl: CertificateRevocationList,
    ) -> Result<RevocationSweep, CertError> {
        let mut fresh = (*self.trust).clone();
        fresh.install_crl(crl.clone())?;
        self.trust = Arc::new(fresh);

        let invalidated = self
            .cache
            .invalidate_matching(|s| crl.is_revoked(s.peer.tbs.serial));
        self.metrics.invalidated.add(invalidated as u64);

        let mut killed = 0usize;
        for entry in self.live.values() {
            if crl.is_revoked(entry.serial) && !entry.killed.swap(true, Ordering::SeqCst) {
                killed += 1;
            }
        }
        self.metrics.killed.add(killed as u64);
        Ok(RevocationSweep {
            killed,
            invalidated,
        })
    }

    /// Drops every cached session that no longer validates at `now`
    /// (e.g. after certificates aged out). Returns how many.
    pub fn sweep_cache(&mut self, now: u64) -> usize {
        let dropped = self.cache.retain_valid(&self.trust, now);
        self.metrics.invalidated.add(dropped as u64);
        dropped
    }

    /// Invalidates every outstanding resumption ticket (administrative
    /// flush) without touching live connections.
    pub fn flush_tickets(&mut self) {
        self.cache.bump_epoch();
    }

    /// DNs of connections killed by revocation but not yet disconnected
    /// (monitoring hook).
    pub fn killed_dns(&self) -> Vec<String> {
        let mut dns: Vec<String> = self
            .live
            .values()
            .filter(|e| e.killed.load(Ordering::SeqCst))
            .map(|e| e.dn.clone())
            .collect();
        dns.sort();
        dns.dedup();
        dns
    }
}
