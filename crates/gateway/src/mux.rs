//! Poll multiplexing: many logical channels over one sealed connection.
//!
//! A JMC polling dozens of jobs used to open (or at least round-trip) one
//! sealed exchange per job. With multiplexing, each job's poll rides a
//! [`MuxFrame`] carrying a per-channel flow id, the frames of one poll
//! sweep travel in a single batched record (one HMAC + one ChaCha20 pass
//! for the whole sweep — see `unicore_transport::SecureChannel::
//! send_frames`), and the responses come back tagged with the same flow
//! ids so the client can fan them back out to per-job state.

use unicore_codec::{CodecError, DerCodec, Fields, Value};

/// One multiplexed frame: a logical-channel id plus an opaque payload
/// (typically a DER-encoded Envelope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxFrame {
    /// Logical channel ("flow") id, allocated by the client.
    pub flow: u64,
    /// The frame body.
    pub payload: Vec<u8>,
}

impl MuxFrame {
    /// A frame on `flow` carrying `payload`.
    pub fn new(flow: u64, payload: Vec<u8>) -> Self {
        MuxFrame { flow, payload }
    }
}

impl DerCodec for MuxFrame {
    fn to_value(&self) -> Value {
        Value::Sequence(vec![
            Value::Integer(self.flow as i64),
            Value::bytes(self.payload.clone()),
        ])
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let mut f = Fields::open(value, "MuxFrame")?;
        let flow = f.next_u64()?;
        let payload = f.next_bytes()?.to_vec();
        f.finish()?;
        Ok(MuxFrame { flow, payload })
    }
}

/// Encodes a sweep of frames for `SecureChannel::send_frames`.
pub fn encode_frames(frames: &[MuxFrame]) -> Vec<Vec<u8>> {
    frames.iter().map(|f| f.to_der()).collect()
}

/// Decodes the frames of one received batch. Any malformed frame fails
/// the whole batch — a sealed record is all-or-nothing anyway.
pub fn decode_frames(raw: &[Vec<u8>]) -> Result<Vec<MuxFrame>, CodecError> {
    raw.iter().map(|b| MuxFrame::from_der(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let f = MuxFrame::new(42, b"poll body".to_vec());
        assert_eq!(MuxFrame::from_der(&f.to_der()).unwrap(), f);
    }

    #[test]
    fn sweep_round_trip() {
        let sweep = vec![
            MuxFrame::new(1, b"a".to_vec()),
            MuxFrame::new(2, Vec::new()),
            MuxFrame::new(u64::MAX >> 1, vec![0u8; 300]),
        ];
        let wire = encode_frames(&sweep);
        assert_eq!(decode_frames(&wire).unwrap(), sweep);
    }

    #[test]
    fn malformed_frame_rejected() {
        let mut wire = encode_frames(&[MuxFrame::new(1, b"ok".to_vec())]);
        wire.push(b"junk".to_vec());
        assert!(decode_frames(&wire).is_err());
    }
}
