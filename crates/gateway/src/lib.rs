//! # unicore-gateway
//!
//! The UNICORE gateway — the "Java security servlet" of the paper's server
//! level (§4.2, §5.2): it maps the user's certificate (validated by the
//! transport layer) to the user's local login via the per-site UNICORE
//! user database, optionally runs site-specific additional authentication
//! (smart cards, DCE), and keeps an audit trail.
//!
//! The mapping design is what gives UNICORE its *site autonomy*: no
//! uniform uid/gid pairs across sites, no interference with local user
//! administration — each site's [`uudb::Uudb`] is independent.

//!
//! At connection scale the gateway is also the *front door*
//! ([`front_door`]): resumable secure sessions, JMC poll multiplexing
//! ([`mux`]), per-DN token-bucket rate limiting ([`ratelimit`]), and
//! live CRL enforcement that kills cached sessions and in-flight
//! connections, not just new handshakes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod front_door;
pub mod gateway;
pub mod mux;
pub mod ratelimit;
pub mod uudb;

pub use front_door::{FrontDoor, FrontDoorConn, FrontDoorError, RevocationSweep};
pub use gateway::{AuditRecord, AuthDecision, Gateway, SiteAuthHook};
pub use mux::{decode_frames, encode_frames, MuxFrame};
pub use ratelimit::{RateLimitConfig, RateLimiter};
pub use uudb::{MappedUser, MappingError, UserEntry, Uudb};
