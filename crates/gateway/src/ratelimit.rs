//! Deterministic token-bucket rate limiting keyed by DN.
//!
//! The bucket arithmetic runs on integer *millitokens* over simulation
//! seconds, so every replay of a seeded scenario makes identical
//! admit/reject decisions — a requirement for the churn soak's
//! byte-identical-outcome assertions.

use std::collections::HashMap;

/// Rate-limit policy: a steady refill rate plus a burst ceiling, with
/// optional per-tenant burst overrides (a paying tenant may ride out a
/// bigger spike than the default budget allows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateLimitConfig {
    /// Sustained request rate per DN, tokens (requests) per second.
    pub rate_per_sec: u64,
    /// Default burst budget in tokens: a fresh bucket starts full at
    /// this level and never refills beyond it.
    pub burst: u64,
    /// Per-tenant burst overrides: `(dn, burst)` pairs consulted before
    /// the default.
    pub tenant_burst: Vec<(String, u64)>,
}

impl RateLimitConfig {
    /// A config with the given sustained rate and burst, no overrides.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        RateLimitConfig {
            rate_per_sec,
            burst,
            tenant_burst: Vec::new(),
        }
    }

    /// Adds a per-tenant burst override.
    pub fn with_tenant_burst(mut self, dn: impl Into<String>, burst: u64) -> Self {
        self.tenant_burst.push((dn.into(), burst));
        self
    }

    fn burst_for(&self, dn: &str) -> u64 {
        self.tenant_burst
            .iter()
            .find(|(d, _)| d == dn)
            .map(|(_, b)| *b)
            .unwrap_or(self.burst)
            .max(1)
    }
}

struct Bucket {
    millitokens: u64,
    last: u64,
}

/// A token-bucket limiter with one bucket per DN.
pub struct RateLimiter {
    cfg: RateLimitConfig,
    buckets: HashMap<String, Bucket>,
}

impl RateLimiter {
    /// A limiter enforcing `cfg`.
    pub fn new(cfg: RateLimitConfig) -> Self {
        RateLimiter {
            cfg,
            buckets: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RateLimitConfig {
        &self.cfg
    }

    /// Charges one request for `dn` at time `now` (simulation seconds).
    /// Returns whether the request is admitted. Time moving backwards is
    /// treated as no elapsed time (no refill), never a panic.
    pub fn check(&mut self, dn: &str, now: u64) -> bool {
        let burst_mt = self.cfg.burst_for(dn).saturating_mul(1_000);
        let rate_mt = self.cfg.rate_per_sec.saturating_mul(1_000);
        let bucket = self.buckets.entry(dn.to_owned()).or_insert(Bucket {
            millitokens: burst_mt,
            last: now,
        });
        let elapsed = now.saturating_sub(bucket.last);
        bucket.last = bucket.last.max(now);
        bucket.millitokens = bucket
            .millitokens
            .saturating_add(elapsed.saturating_mul(rate_mt))
            .min(burst_mt);
        if bucket.millitokens >= 1_000 {
            bucket.millitokens -= 1_000;
            true
        } else {
            false
        }
    }

    /// Remaining whole tokens for `dn` without charging (0 for an unseen
    /// DN means "full burst available", reported as the burst budget).
    pub fn available(&self, dn: &str, now: u64) -> u64 {
        match self.buckets.get(dn) {
            None => self.cfg.burst_for(dn),
            Some(b) => {
                let burst_mt = self.cfg.burst_for(dn).saturating_mul(1_000);
                let rate_mt = self.cfg.rate_per_sec.saturating_mul(1_000);
                let elapsed = now.saturating_sub(b.last);
                b.millitokens
                    .saturating_add(elapsed.saturating_mul(rate_mt))
                    .min(burst_mt)
                    / 1_000
            }
        }
    }

    /// Drops all per-DN state (e.g. after a config change).
    pub fn reset(&mut self) {
        self.buckets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starvation_then_recovery() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(2, 5));
        // Full burst available immediately.
        for _ in 0..5 {
            assert!(rl.check("alice", 100));
        }
        assert!(!rl.check("alice", 100), "burst exhausted");
        // Two seconds later: 2/sec * 2s = 4 tokens refilled.
        for _ in 0..4 {
            assert!(rl.check("alice", 102));
        }
        assert!(!rl.check("alice", 102));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(10, 3));
        for _ in 0..3 {
            assert!(rl.check("bob", 0));
        }
        // A long quiet period refills to the cap, not beyond.
        for _ in 0..3 {
            assert!(rl.check("bob", 1_000));
        }
        assert!(!rl.check("bob", 1_000));
    }

    #[test]
    fn tenants_are_independent() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(1, 1));
        assert!(rl.check("alice", 0));
        assert!(!rl.check("alice", 0));
        assert!(rl.check("bob", 0), "alice's exhaustion must not hit bob");
    }

    #[test]
    fn tenant_burst_override() {
        let cfg = RateLimitConfig::new(1, 2).with_tenant_burst("vip", 10);
        let mut rl = RateLimiter::new(cfg);
        for _ in 0..10 {
            assert!(rl.check("vip", 0));
        }
        assert!(!rl.check("vip", 0));
        for _ in 0..2 {
            assert!(rl.check("standard", 0));
        }
        assert!(!rl.check("standard", 0));
    }

    #[test]
    fn fractional_rates_accumulate() {
        // 1 token per 2 seconds is representable? rate_per_sec is integral,
        // but millitoken arithmetic still hands out exactly rate*elapsed.
        let mut rl = RateLimiter::new(RateLimitConfig::new(1, 1));
        assert!(rl.check("carol", 0));
        assert!(!rl.check("carol", 0));
        assert!(rl.check("carol", 1));
        assert!(!rl.check("carol", 1));
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(1, 1));
        assert!(rl.check("dave", 100));
        assert!(!rl.check("dave", 50), "no refill from the past");
        assert!(rl.check("dave", 101));
    }

    #[test]
    fn available_reports_without_charging() {
        let mut rl = RateLimiter::new(RateLimitConfig::new(1, 4));
        assert_eq!(rl.available("eve", 0), 4);
        rl.check("eve", 0);
        assert_eq!(rl.available("eve", 0), 3);
        assert_eq!(rl.available("eve", 10), 4); // refilled to cap
    }

    #[test]
    fn deterministic_across_replays() {
        let run = || {
            let mut rl = RateLimiter::new(RateLimitConfig::new(3, 7));
            let mut decisions = Vec::new();
            for t in 0..50u64 {
                for _ in 0..2 {
                    decisions.push(rl.check("user", t / 3));
                }
            }
            decisions
        };
        assert_eq!(run(), run());
    }
}
