//! Batch job specifications and results.

use unicore_sim::SimTime;

/// Identifies a job within one batch system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BatchJobId(pub u64);

impl core::fmt::Display for BatchJobId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// What the job *actually* does when it runs — the simulator's stand-in for
/// real computation. The NJS fills this in during incarnation; the batch
/// system only sees resource usage and, on completion, surfaces the
/// declared outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkModel {
    /// True runtime in simulation ticks (may exceed the limit → job killed).
    pub actual_runtime: SimTime,
    /// Exit code the job would produce if it completes.
    pub exit_code: i32,
    /// Standard output produced.
    pub stdout: Vec<u8>,
    /// Standard error produced.
    pub stderr: Vec<u8>,
    /// Files the job writes into its working directory (Uspace), as
    /// `(name, content)` pairs.
    pub output_files: Vec<(String, Vec<u8>)>,
}

impl WorkModel {
    /// A trivially succeeding job of the given runtime.
    pub fn succeed_after(actual_runtime: SimTime) -> Self {
        WorkModel {
            actual_runtime,
            exit_code: 0,
            stdout: Vec::new(),
            stderr: Vec::new(),
            output_files: Vec::new(),
        }
    }

    /// A failing job.
    pub fn fail_after(actual_runtime: SimTime, exit_code: i32, stderr: &str) -> Self {
        WorkModel {
            actual_runtime,
            exit_code,
            stdout: Vec::new(),
            stderr: stderr.as_bytes().to_vec(),
            output_files: Vec::new(),
        }
    }
}

/// The queue classes a 1990s computing centre typically ran.
///
/// Express jobs jump the queue but must be short and narrow; long jobs
/// yield to everyone else. The class ordering is the scheduler's priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueClass {
    /// Short debugging/turnaround jobs: highest priority, tight limits.
    Express,
    /// Normal production work.
    #[default]
    Batch,
    /// Multi-day runs: lowest priority.
    Long,
}

impl QueueClass {
    /// Scheduler rank (lower runs first).
    pub fn rank(&self) -> u8 {
        match self {
            QueueClass::Express => 0,
            QueueClass::Batch => 1,
            QueueClass::Long => 2,
        }
    }

    /// The conventional queue name (used in submit scripts).
    pub fn name(&self) -> &'static str {
        match self {
            QueueClass::Express => "express",
            QueueClass::Batch => "batch",
            QueueClass::Long => "long",
        }
    }

    /// The class a job of `time_limit` belongs to under the standard site
    /// policy (≤ 15 min express, > 12 h long).
    pub fn for_time_limit(time_limit: SimTime) -> Self {
        const MIN15: SimTime = 15 * 60 * unicore_sim::SEC;
        const H12: SimTime = 12 * unicore_sim::HOUR;
        if time_limit <= MIN15 {
            QueueClass::Express
        } else if time_limit > H12 {
            QueueClass::Long
        } else {
            QueueClass::Batch
        }
    }
}

/// A job as submitted to a batch system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJobSpec {
    /// Job name (from the UNICORE task).
    pub name: String,
    /// Local login of the owner (after gateway mapping).
    pub owner: String,
    /// The incarnated submit script (vendor dialect).
    pub script: String,
    /// Processor elements requested.
    pub processors: u32,
    /// Wall-clock limit in ticks — the scheduler's guarantee horizon.
    pub time_limit: SimTime,
    /// Memory request in MB (admission-checked upstream; recorded here).
    pub memory_mb: u64,
    /// Queue class (defaults to `Batch`).
    pub queue: QueueClass,
    /// The simulated work.
    pub work: WorkModel,
}

/// Lifecycle state of a batch job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchStatus {
    /// Waiting in the queue.
    Queued,
    /// Held by operator/user request.
    Held,
    /// Executing since the given time.
    Running {
        /// Dispatch time.
        since: SimTime,
    },
    /// Finished.
    Completed(CompletedJob),
    /// Removed from the queue before running.
    Cancelled,
}

/// Result of a finished job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedJob {
    /// Exit code (`137` when killed at the time limit).
    pub exit_code: i32,
    /// True when the scheduler killed the job at its limit.
    pub timed_out: bool,
    /// Captured stdout.
    pub stdout: Vec<u8>,
    /// Captured stderr.
    pub stderr: Vec<u8>,
    /// Output files declared by the work model (empty if killed).
    pub output_files: Vec<(String, Vec<u8>)>,
    /// When it started.
    pub started_at: SimTime,
    /// When it ended.
    pub ended_at: SimTime,
}

impl CompletedJob {
    /// Success = exit code 0 and not timed out.
    pub fn is_success(&self) -> bool {
        self.exit_code == 0 && !self.timed_out
    }
}

/// One accounting line, written at job end (site accounting, §6 outlook).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountingRecord {
    /// The batch job.
    pub job: BatchJobId,
    /// Owner login.
    pub owner: String,
    /// Queue class the job ran under.
    pub queue: QueueClass,
    /// Processors held while running.
    pub processors: u32,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Dispatch time.
    pub started_at: SimTime,
    /// End time.
    pub ended_at: SimTime,
    /// Exit code.
    pub exit_code: i32,
}

impl AccountingRecord {
    /// Queue wait in ticks.
    pub fn wait_time(&self) -> SimTime {
        self.started_at - self.submitted_at
    }

    /// Node-seconds consumed (processors × runtime).
    pub fn node_seconds(&self) -> u64 {
        self.processors as u64 * ((self.ended_at - self.started_at) / unicore_sim::SEC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicore_sim::SEC;

    #[test]
    fn work_model_constructors() {
        let ok = WorkModel::succeed_after(5 * SEC);
        assert_eq!(ok.exit_code, 0);
        let bad = WorkModel::fail_after(SEC, 2, "segfault");
        assert_eq!(bad.exit_code, 2);
        assert_eq!(bad.stderr, b"segfault");
    }

    #[test]
    fn completed_success_rules() {
        let mut c = CompletedJob {
            exit_code: 0,
            timed_out: false,
            stdout: vec![],
            stderr: vec![],
            output_files: vec![],
            started_at: 0,
            ended_at: SEC,
        };
        assert!(c.is_success());
        c.timed_out = true;
        assert!(!c.is_success());
        c.timed_out = false;
        c.exit_code = 1;
        assert!(!c.is_success());
    }

    #[test]
    fn accounting_arithmetic() {
        let r = AccountingRecord {
            job: BatchJobId(1),
            owner: "u".into(),
            queue: QueueClass::Batch,
            processors: 16,
            submitted_at: 2 * SEC,
            started_at: 5 * SEC,
            ended_at: 15 * SEC,
            exit_code: 0,
        };
        assert_eq!(r.wait_time(), 3 * SEC);
        assert_eq!(r.node_seconds(), 160);
    }
}

#[cfg(test)]
mod queue_class_tests {
    use super::*;
    use unicore_sim::{HOUR, MINUTE, SEC};

    #[test]
    fn rank_ordering() {
        assert!(QueueClass::Express.rank() < QueueClass::Batch.rank());
        assert!(QueueClass::Batch.rank() < QueueClass::Long.rank());
    }

    #[test]
    fn policy_assignment() {
        assert_eq!(QueueClass::for_time_limit(5 * MINUTE), QueueClass::Express);
        assert_eq!(QueueClass::for_time_limit(15 * MINUTE), QueueClass::Express);
        assert_eq!(QueueClass::for_time_limit(16 * MINUTE), QueueClass::Batch);
        assert_eq!(QueueClass::for_time_limit(12 * HOUR), QueueClass::Batch);
        assert_eq!(QueueClass::for_time_limit(13 * HOUR), QueueClass::Long);
        let _ = SEC;
    }

    #[test]
    fn names() {
        assert_eq!(QueueClass::Express.name(), "express");
        assert_eq!(QueueClass::default(), QueueClass::Batch);
    }
}
