//! The batch system simulator: FCFS dispatch with EASY backfill.
//!
//! Tier 3 of the architecture. "Jobs delivered through UNICORE are treated
//! the same way any other batch job is treated on a system" (§5.5) — so the
//! simulator makes no distinction between UNICORE-submitted jobs and local
//! background load; both compete in the same queue under the same policy.
//!
//! The system is *clock-passive*: every method takes `now`, and a master
//! simulation (or test) advances it explicitly. This lets one experiment
//! drive many batch systems and a network from a single event loop.

use crate::job::{
    AccountingRecord, BatchJobId, BatchJobSpec, BatchStatus, CompletedJob, QueueClass,
};
use std::collections::HashMap;
use unicore_resources::Architecture;
use unicore_sim::SimTime;
use unicore_telemetry::{Counter, Histogram, Telemetry};

/// Exit code used when the scheduler kills a job at its time limit.
pub const EXIT_TIME_LIMIT: i32 = 137;
/// Exit code used when a running job is cancelled.
pub const EXIT_CANCELLED: i32 = 130;
/// Exit code used when the machine crashes under a running job.
pub const EXIT_NODE_FAILURE: i32 = 139;

/// Submission-time rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// More processors requested than the machine has.
    TooManyProcessors {
        /// Requested.
        requested: u32,
        /// Machine size.
        available: u32,
    },
    /// The submit script is empty.
    EmptyScript,
    /// The job requests zero processors.
    ZeroProcessors,
    /// The job violates its queue class's limits (express jobs must be
    /// short and narrow).
    QueueLimit {
        /// The offending queue class.
        queue: QueueClass,
        /// What was violated.
        what: &'static str,
    },
    /// The submit script does not speak this machine's batch dialect
    /// (strict mode; catches NJS mistranslation).
    DialectMismatch,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::TooManyProcessors {
                requested,
                available,
            } => write!(
                f,
                "{requested} processors requested, machine has {available}"
            ),
            SubmitError::EmptyScript => write!(f, "empty submit script"),
            SubmitError::ZeroProcessors => write!(f, "zero processors requested"),
            SubmitError::QueueLimit { queue, what } => {
                write!(f, "job violates {} queue limit: {what}", queue.name())
            }
            SubmitError::DialectMismatch => {
                write!(
                    f,
                    "submit script does not match this machine's batch dialect"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueuedEntry {
    id: BatchJobId,
    spec: BatchJobSpec,
    submitted_at: SimTime,
    /// Arrival sequence (FIFO order within a queue class).
    seq: u64,
    held: bool,
}

struct RunningEntry {
    id: BatchJobId,
    processors: u32,
    started_at: SimTime,
    /// When the job will actually end (min(actual, limit), or cancel time).
    ends_at: SimTime,
    /// Scheduler guarantee horizon (start + limit) used for backfill.
    guaranteed_end: SimTime,
    timed_out: bool,
    submitted_at: SimTime,
    spec: BatchJobSpec,
    cancelled: bool,
    crashed: bool,
}

/// One Vsite's batch system.
pub struct BatchSystem {
    name: String,
    arch: Architecture,
    total_nodes: u32,
    free_nodes: u32,
    next_id: u64,
    queue: Vec<QueuedEntry>,
    running: Vec<RunningEntry>,
    statuses: HashMap<BatchJobId, BatchStatus>,
    accounting: Vec<AccountingRecord>,
    busy_node_ticks: u128,
    last_advance: SimTime,
    /// Machine offline (maintenance/crash) until this time.
    offline_until: SimTime,
    /// Reject scripts that do not match this machine's dialect.
    strict_dialect: bool,
    metrics: BatchMetrics,
}

/// Queue/run telemetry, fetched once from the registry.
struct BatchMetrics {
    submitted: Counter,
    completed: Counter,
    wait_us: Histogram,
    run_us: Histogram,
}

impl Default for BatchMetrics {
    fn default() -> Self {
        BatchMetrics {
            submitted: Counter::detached(),
            completed: Counter::detached(),
            wait_us: Histogram::detached(),
            run_us: Histogram::detached(),
        }
    }
}

impl BatchSystem {
    /// A machine with `nodes` processor elements.
    pub fn new(name: impl Into<String>, arch: Architecture, nodes: u32) -> Self {
        assert!(nodes > 0, "machine must have nodes");
        BatchSystem {
            name: name.into(),
            arch,
            total_nodes: nodes,
            free_nodes: nodes,
            next_id: 1,
            queue: Vec::new(),
            running: Vec::new(),
            statuses: HashMap::new(),
            accounting: Vec::new(),
            busy_node_ticks: 0,
            last_advance: 0,
            offline_until: 0,
            strict_dialect: false,
            metrics: BatchMetrics::default(),
        }
    }

    /// Publishes this machine's queue/run metrics into `telemetry`'s
    /// registry (`batch.submitted`, `batch.completed`, `batch.wait.us`,
    /// `batch.run.us`).
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = BatchMetrics {
            submitted: telemetry.counter("batch.submitted"),
            completed: telemetry.counter("batch.completed"),
            wait_us: telemetry.histogram("batch.wait.us"),
            run_us: telemetry.histogram("batch.run.us"),
        };
    }

    /// Enables strict dialect checking: submitted scripts must contain
    /// this machine's own batch directives and no foreign ones.
    pub fn set_strict_dialect(&mut self, strict: bool) {
        self.strict_dialect = strict;
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Machine architecture.
    pub fn architecture(&self) -> Architecture {
        self.arch
    }

    /// Total processor elements.
    pub fn total_nodes(&self) -> u32 {
        self.total_nodes
    }

    /// Currently idle processor elements.
    pub fn free_nodes(&self) -> u32 {
        self.free_nodes
    }

    /// Jobs waiting (including held).
    pub fn queue_length(&self) -> usize {
        self.queue.len()
    }

    /// Jobs executing.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Submits a job at `now`; it may start immediately.
    pub fn submit(&mut self, spec: BatchJobSpec, now: SimTime) -> Result<BatchJobId, SubmitError> {
        if spec.processors == 0 {
            return Err(SubmitError::ZeroProcessors);
        }
        if spec.processors > self.total_nodes {
            return Err(SubmitError::TooManyProcessors {
                requested: spec.processors,
                available: self.total_nodes,
            });
        }
        if spec.script.trim().is_empty() {
            return Err(SubmitError::EmptyScript);
        }
        if self.strict_dialect && !crate::script::script_matches_dialect(&spec.script, self.arch) {
            return Err(SubmitError::DialectMismatch);
        }
        // Express-queue policy: short (≤ 1 h) and narrow (≤ 1/4 machine).
        if spec.queue == QueueClass::Express {
            if spec.time_limit > unicore_sim::HOUR {
                return Err(SubmitError::QueueLimit {
                    queue: spec.queue,
                    what: "time limit above one hour",
                });
            }
            if spec.processors > (self.total_nodes / 4).max(1) {
                return Err(SubmitError::QueueLimit {
                    queue: spec.queue,
                    what: "more than a quarter of the machine",
                });
            }
        }
        self.advance_to(now);
        let id = BatchJobId(self.next_id);
        self.next_id += 1;
        self.statuses.insert(id, BatchStatus::Queued);
        let seq = id.0;
        let entry = QueuedEntry {
            id,
            spec,
            submitted_at: now,
            seq,
            held: false,
        };
        // Keep the queue ordered by (class rank, arrival): priority
        // scheduling with FIFO fairness inside each class.
        let key = (entry.spec.queue.rank(), entry.seq);
        let pos = self
            .queue
            .partition_point(|q| (q.spec.queue.rank(), q.seq) <= key);
        self.queue.insert(pos, entry);
        self.metrics.submitted.inc();
        self.schedule(now);
        Ok(id)
    }

    /// Current status of a job (`None` for unknown ids).
    pub fn status(&self, id: BatchJobId) -> Option<&BatchStatus> {
        self.statuses.get(&id)
    }

    /// Time of the next job completion, if any job is running.
    pub fn next_completion_time(&self) -> Option<SimTime> {
        self.running.iter().map(|r| r.ends_at).min()
    }

    /// The next instant at which this machine's state can change: a job
    /// completion, or crash recovery while work is queued.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let completion = self.next_completion_time();
        let recovery = (self.offline_until > self.last_advance && !self.queue.is_empty())
            .then_some(self.offline_until);
        match (completion, recovery) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Advances the simulation clock to `now`, completing jobs and
    /// dispatching from the queue as capacity frees up.
    pub fn advance_to(&mut self, now: SimTime) {
        loop {
            let next_end = match self.next_completion_time() {
                Some(t) if t <= now => t,
                _ => break,
            };
            self.accumulate_busy(next_end);
            // Complete every job ending exactly at next_end.
            let ending: Vec<usize> = self
                .running
                .iter()
                .enumerate()
                .filter(|(_, r)| r.ends_at == next_end)
                .map(|(i, _)| i)
                .collect();
            for idx in ending.into_iter().rev() {
                let entry = self.running.swap_remove(idx);
                self.finish(entry);
            }
            self.schedule(next_end);
        }
        self.accumulate_busy(now);
        if self.offline_until > 0 && now >= self.offline_until {
            self.schedule(now);
        }
    }

    fn accumulate_busy(&mut self, to: SimTime) {
        if to > self.last_advance {
            let busy = (self.total_nodes - self.free_nodes) as u128;
            self.busy_node_ticks += busy * (to - self.last_advance) as u128;
            self.last_advance = to;
        }
    }

    fn finish(&mut self, entry: RunningEntry) {
        self.free_nodes += entry.processors;
        let (exit_code, stdout, stderr, outputs) = if entry.crashed {
            (
                EXIT_NODE_FAILURE,
                Vec::new(),
                b"node failure".to_vec(),
                Vec::new(),
            )
        } else if entry.cancelled {
            (
                EXIT_CANCELLED,
                Vec::new(),
                b"cancelled".to_vec(),
                Vec::new(),
            )
        } else if entry.timed_out {
            (
                EXIT_TIME_LIMIT,
                Vec::new(),
                b"job killed: wall clock limit exceeded".to_vec(),
                Vec::new(),
            )
        } else {
            (
                entry.spec.work.exit_code,
                entry.spec.work.stdout.clone(),
                entry.spec.work.stderr.clone(),
                entry.spec.work.output_files.clone(),
            )
        };
        let completed = CompletedJob {
            exit_code,
            timed_out: entry.timed_out,
            stdout,
            stderr,
            output_files: outputs,
            started_at: entry.started_at,
            ended_at: entry.ends_at,
        };
        self.metrics.completed.inc();
        self.metrics
            .wait_us
            .record(entry.started_at.saturating_sub(entry.submitted_at));
        self.metrics
            .run_us
            .record(entry.ends_at.saturating_sub(entry.started_at));
        self.accounting.push(AccountingRecord {
            job: entry.id,
            owner: entry.spec.owner.clone(),
            queue: entry.spec.queue,
            processors: entry.processors,
            submitted_at: entry.submitted_at,
            started_at: entry.started_at,
            ended_at: entry.ends_at,
            exit_code,
        });
        self.statuses
            .insert(entry.id, BatchStatus::Completed(completed));
    }

    fn start(&mut self, entry: QueuedEntry, now: SimTime) {
        let actual = entry.spec.work.actual_runtime;
        let limit = entry.spec.time_limit;
        let timed_out = actual > limit;
        let runtime = actual.min(limit);
        self.free_nodes -= entry.spec.processors;
        self.statuses
            .insert(entry.id, BatchStatus::Running { since: now });
        self.running.push(RunningEntry {
            id: entry.id,
            processors: entry.spec.processors,
            started_at: now,
            ends_at: now + runtime,
            guaranteed_end: now + limit,
            timed_out,
            submitted_at: entry.submitted_at,
            spec: entry.spec,
            cancelled: false,
            crashed: false,
        });
    }

    /// FCFS + EASY backfill dispatch at time `now`.
    fn schedule(&mut self, now: SimTime) {
        if now < self.offline_until {
            return;
        }
        // Phase 1: start jobs from the head while they fit.
        loop {
            let Some(head_pos) = self.queue.iter().position(|q| !q.held) else {
                return;
            };
            if self.queue[head_pos].spec.processors <= self.free_nodes {
                let entry = self.queue.remove(head_pos);
                self.start(entry, now);
            } else {
                break;
            }
        }

        // Phase 2: EASY backfill around the blocked head.
        let head_pos = self
            .queue
            .iter()
            .position(|q| !q.held)
            .expect("phase 2 only with a blocked head");
        let head_procs = self.queue[head_pos].spec.processors;

        // Shadow time: when enough nodes free up for the head, assuming
        // running jobs hold nodes until their guaranteed end.
        let mut ends: Vec<(SimTime, u32)> = self
            .running
            .iter()
            .map(|r| (r.guaranteed_end, r.processors))
            .collect();
        ends.sort_unstable();
        let mut avail = self.free_nodes;
        let mut shadow_time = SimTime::MAX;
        let mut extra = 0u32;
        for (t, procs) in ends {
            avail += procs;
            if avail >= head_procs {
                shadow_time = t;
                extra = avail - head_procs;
                break;
            }
        }

        // Scan behind the head for backfill candidates.
        let mut i = head_pos + 1;
        while i < self.queue.len() {
            let q = &self.queue[i];
            if q.held || q.spec.processors > self.free_nodes {
                i += 1;
                continue;
            }
            let fits_before_shadow = now.saturating_add(q.spec.time_limit) <= shadow_time;
            let fits_beside_head = q.spec.processors <= extra;
            if fits_before_shadow || fits_beside_head {
                if !fits_before_shadow {
                    extra -= q.spec.processors;
                }
                let entry = self.queue.remove(i);
                self.start(entry, now);
                // A start may have freed… no: starts consume nodes. Head
                // still blocked; continue scanning at the same index.
            } else {
                i += 1;
            }
        }
    }

    /// Cancels a job at `now`. Queued jobs leave the queue; running jobs
    /// are killed immediately.
    pub fn cancel(&mut self, id: BatchJobId, now: SimTime) -> bool {
        self.advance_to(now);
        if let Some(pos) = self.queue.iter().position(|q| q.id == id) {
            self.queue.remove(pos);
            self.statuses.insert(id, BatchStatus::Cancelled);
            self.schedule(now);
            return true;
        }
        if let Some(r) = self.running.iter_mut().find(|r| r.id == id) {
            r.cancelled = true;
            r.timed_out = false;
            r.ends_at = now;
            // Completion is processed on the next advance; do it now.
            self.advance_to(now);
            return true;
        }
        false
    }

    /// Crashes the machine at `now`: every running job dies with
    /// [`EXIT_NODE_FAILURE`], queued jobs survive, and nothing dispatches
    /// until `now + downtime`. Returns the number of jobs killed.
    pub fn crash(&mut self, now: SimTime, downtime: SimTime) -> usize {
        self.advance_to(now);
        let killed = self.running.len();
        for r in &mut self.running {
            r.crashed = true;
            r.timed_out = false;
            r.ends_at = now;
        }
        self.offline_until = now.saturating_add(downtime);
        // Process the deaths immediately; dispatch stays blocked by
        // offline_until inside schedule().
        self.advance_to(now);
        killed
    }

    /// When the machine comes back after a crash (0 = online).
    pub fn offline_until(&self) -> SimTime {
        self.offline_until
    }

    /// Holds a queued job (no-op for running/finished jobs).
    pub fn hold(&mut self, id: BatchJobId) -> bool {
        if let Some(q) = self.queue.iter_mut().find(|q| q.id == id) {
            q.held = true;
            self.statuses.insert(id, BatchStatus::Held);
            true
        } else {
            false
        }
    }

    /// Releases a held job at `now`.
    pub fn release(&mut self, id: BatchJobId, now: SimTime) -> bool {
        if let Some(q) = self.queue.iter_mut().find(|q| q.id == id && q.held) {
            q.held = false;
            self.statuses.insert(id, BatchStatus::Queued);
            self.schedule(now);
            true
        } else {
            false
        }
    }

    /// Runs the system until every submitted job has finished; returns the
    /// time of the last completion.
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some(t) = self.next_completion_time() {
            self.advance_to(t);
        }
        self.last_advance
    }

    /// Accounting records so far.
    pub fn accounting(&self) -> &[AccountingRecord] {
        &self.accounting
    }

    /// The accounting record for one job, if it has finished.
    ///
    /// Scans from the rear: callers typically ask about a job that just
    /// completed, which sits at or near the end of the log.
    pub fn accounting_for(&self, id: BatchJobId) -> Option<&AccountingRecord> {
        self.accounting.iter().rev().find(|r| r.job == id)
    }

    /// Machine utilisation over `[0, now]`: busy node-ticks / total.
    ///
    /// Counts the not-yet-accumulated span since the last `advance_to`
    /// at the current occupancy, so a next-event-driven caller (which
    /// only advances this machine when something completes) reads the
    /// same value as one that advances every tick.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == 0 {
            return 0.0;
        }
        let mut ticks = self.busy_node_ticks;
        if now > self.last_advance {
            let busy = (self.total_nodes - self.free_nodes) as u128;
            ticks += busy * (now - self.last_advance) as u128;
        }
        ticks as f64 / (self.total_nodes as u128 * now as u128) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkModel;
    use unicore_sim::SEC;

    fn spec(name: &str, procs: u32, limit: SimTime, actual: SimTime) -> BatchJobSpec {
        BatchJobSpec {
            name: name.into(),
            owner: "alice".into(),
            script: "#!/bin/sh\n./a.out\n".into(),
            processors: procs,
            time_limit: limit,
            memory_mb: 64,
            queue: crate::job::QueueClass::Batch,
            work: WorkModel::succeed_after(actual),
        }
    }

    fn machine(nodes: u32) -> BatchSystem {
        BatchSystem::new("t3e", Architecture::CrayT3e, nodes)
    }

    #[test]
    fn immediate_start_when_free() {
        let mut m = machine(8);
        let id = m.submit(spec("j", 4, 10 * SEC, 5 * SEC), 0).unwrap();
        assert!(matches!(
            m.status(id),
            Some(BatchStatus::Running { since: 0 })
        ));
        assert_eq!(m.free_nodes(), 4);
        m.advance_to(5 * SEC);
        let BatchStatus::Completed(c) = m.status(id).unwrap() else {
            panic!("not completed");
        };
        assert!(c.is_success());
        assert_eq!(c.ended_at, 5 * SEC);
        assert_eq!(m.free_nodes(), 8);
    }

    #[test]
    fn fcfs_ordering() {
        let mut m = machine(4);
        let a = m.submit(spec("a", 4, 10 * SEC, 10 * SEC), 0).unwrap();
        let b = m.submit(spec("b", 4, 10 * SEC, 10 * SEC), 0).unwrap();
        assert!(matches!(m.status(a), Some(BatchStatus::Running { .. })));
        assert!(matches!(m.status(b), Some(BatchStatus::Queued)));
        m.advance_to(10 * SEC);
        assert!(matches!(m.status(b), Some(BatchStatus::Running { since }) if *since == 10 * SEC));
    }

    #[test]
    fn backfill_small_short_job() {
        let mut m = machine(8);
        // Long job takes 6 nodes for 100 s.
        m.submit(spec("big", 6, 100 * SEC, 100 * SEC), 0).unwrap();
        // Head of queue needs all 8 → blocked until 100 s.
        let head = m.submit(spec("head", 8, 10 * SEC, 10 * SEC), 0).unwrap();
        // Small short job (2 nodes, ends before shadow) backfills now.
        let small = m.submit(spec("small", 2, 50 * SEC, 50 * SEC), 0).unwrap();
        assert!(matches!(m.status(head), Some(BatchStatus::Queued)));
        assert!(matches!(m.status(small), Some(BatchStatus::Running { .. })));
    }

    #[test]
    fn backfill_does_not_delay_head() {
        let mut m = machine(8);
        m.submit(spec("big", 6, 100 * SEC, 100 * SEC), 0).unwrap();
        let head = m.submit(spec("head", 8, 10 * SEC, 10 * SEC), 0).unwrap();
        // 2-node job with a 200 s limit would push the head past its
        // 100 s shadow → must NOT backfill (and doesn't fit beside the
        // head, which needs all 8 nodes).
        let long_small = m.submit(spec("ls", 2, 200 * SEC, 200 * SEC), 0).unwrap();
        assert!(matches!(m.status(long_small), Some(BatchStatus::Queued)));
        // Head starts exactly at the shadow time.
        m.advance_to(100 * SEC);
        assert!(
            matches!(m.status(head), Some(BatchStatus::Running { since }) if *since == 100 * SEC)
        );
    }

    #[test]
    fn backfill_beside_head() {
        let mut m = machine(8);
        m.submit(spec("big", 4, 100 * SEC, 100 * SEC), 0).unwrap();
        // Head needs 6: blocked (only 4 free). Shadow = 100 s, extra = 8-6 = 2.
        let head = m.submit(spec("head", 6, 10 * SEC, 10 * SEC), 0).unwrap();
        // A 2-node job with a long limit fits beside the head forever.
        let beside = m
            .submit(spec("beside", 2, 500 * SEC, 500 * SEC), 0)
            .unwrap();
        assert!(matches!(
            m.status(beside),
            Some(BatchStatus::Running { .. })
        ));
        m.advance_to(100 * SEC);
        assert!(
            matches!(m.status(head), Some(BatchStatus::Running { since }) if *since == 100 * SEC)
        );
    }

    #[test]
    fn time_limit_kills_job() {
        let mut m = machine(2);
        let id = m.submit(spec("over", 1, 5 * SEC, 60 * SEC), 0).unwrap();
        m.advance_to(5 * SEC);
        let BatchStatus::Completed(c) = m.status(id).unwrap() else {
            panic!()
        };
        assert!(c.timed_out);
        assert_eq!(c.exit_code, EXIT_TIME_LIMIT);
        assert!(!c.is_success());
        assert!(c.output_files.is_empty());
    }

    #[test]
    fn failing_job_reports_exit_code() {
        let mut m = machine(2);
        let mut s = spec("bad", 1, 10 * SEC, 2 * SEC);
        s.work = WorkModel::fail_after(2 * SEC, 3, "floating point exception");
        let id = m.submit(s, 0).unwrap();
        m.advance_to(10 * SEC);
        let BatchStatus::Completed(c) = m.status(id).unwrap() else {
            panic!()
        };
        assert_eq!(c.exit_code, 3);
        assert_eq!(c.stderr, b"floating point exception");
    }

    #[test]
    fn submit_validation() {
        let mut m = machine(4);
        assert!(matches!(
            m.submit(spec("z", 0, SEC, SEC), 0),
            Err(SubmitError::ZeroProcessors)
        ));
        assert!(matches!(
            m.submit(spec("big", 5, SEC, SEC), 0),
            Err(SubmitError::TooManyProcessors { .. })
        ));
        let mut empty = spec("e", 1, SEC, SEC);
        empty.script = "  \n".into();
        assert!(matches!(m.submit(empty, 0), Err(SubmitError::EmptyScript)));
    }

    #[test]
    fn cancel_queued_job() {
        let mut m = machine(2);
        m.submit(spec("a", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        let b = m.submit(spec("b", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        assert!(m.cancel(b, SEC));
        assert!(matches!(m.status(b), Some(BatchStatus::Cancelled)));
        m.advance_to(30 * SEC);
        // Never ran.
        assert!(matches!(m.status(b), Some(BatchStatus::Cancelled)));
    }

    #[test]
    fn cancel_running_job_frees_nodes() {
        let mut m = machine(2);
        let a = m.submit(spec("a", 2, 100 * SEC, 100 * SEC), 0).unwrap();
        assert!(m.cancel(a, 10 * SEC));
        let BatchStatus::Completed(c) = m.status(a).unwrap() else {
            panic!()
        };
        assert_eq!(c.exit_code, EXIT_CANCELLED);
        assert_eq!(c.ended_at, 10 * SEC);
        assert_eq!(m.free_nodes(), 2);
    }

    #[test]
    fn hold_and_release() {
        let mut m = machine(2);
        let a = m.submit(spec("a", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        let b = m.submit(spec("b", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        assert!(m.hold(b));
        m.advance_to(10 * SEC); // a finishes
                                // b is held: not started.
        assert!(matches!(m.status(b), Some(BatchStatus::Held)));
        assert!(m.release(b, 12 * SEC));
        assert!(matches!(m.status(b), Some(BatchStatus::Running { .. })));
        let _ = a;
    }

    #[test]
    fn held_head_does_not_block_queue() {
        let mut m = machine(2);
        let a = m.submit(spec("a", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        let b = m.submit(spec("b", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        let c = m.submit(spec("c", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        m.hold(b);
        m.advance_to(10 * SEC);
        // c starts even though b (ahead of it) is held.
        assert!(matches!(m.status(c), Some(BatchStatus::Running { .. })));
        let _ = a;
    }

    #[test]
    fn run_to_completion_drains_everything() {
        let mut m = machine(4);
        let mut ids = Vec::new();
        for i in 0..20 {
            ids.push(
                m.submit(
                    spec(
                        &format!("j{i}"),
                        1 + (i % 4),
                        20 * SEC,
                        (1 + i as u64) * SEC,
                    ),
                    0,
                )
                .unwrap(),
            );
        }
        let end = m.run_to_completion();
        assert!(end > 0);
        for id in ids {
            assert!(matches!(m.status(id), Some(BatchStatus::Completed(_))));
        }
        assert_eq!(m.accounting().len(), 20);
        assert_eq!(m.free_nodes(), 4);
    }

    #[test]
    fn utilization_accounting() {
        let mut m = machine(4);
        // 2 nodes busy for 10 s of a 20 s window = 25%.
        m.submit(spec("half", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        m.advance_to(20 * SEC);
        let u = m.utilization(20 * SEC);
        assert!((u - 0.25).abs() < 1e-9, "{u}");
    }

    #[test]
    fn accounting_wait_times() {
        let mut m = machine(2);
        m.submit(spec("a", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        m.submit(spec("b", 2, 10 * SEC, 10 * SEC), 0).unwrap();
        m.run_to_completion();
        let acc = m.accounting();
        assert_eq!(acc[0].wait_time(), 0);
        assert_eq!(acc[1].wait_time(), 10 * SEC);
    }
}

#[cfg(test)]
mod queue_priority_tests {
    use super::*;
    use crate::job::{QueueClass, WorkModel};
    use unicore_resources::Architecture;
    use unicore_sim::{MINUTE, SEC};

    fn spec_q(name: &str, procs: u32, limit: SimTime, queue: QueueClass) -> BatchJobSpec {
        BatchJobSpec {
            name: name.into(),
            owner: "u".into(),
            script: "#$ -pe mpi 1\nrun\n".into(),
            processors: procs,
            time_limit: limit,
            memory_mb: 1,
            queue,
            work: WorkModel::succeed_after(limit / 2),
        }
    }

    #[test]
    fn express_jumps_the_queue() {
        let mut m = BatchSystem::new("m", Architecture::Generic, 4);
        // Occupy the machine, then queue a batch job, then an express one.
        m.submit(spec_q("running", 4, 10 * MINUTE, QueueClass::Batch), 0)
            .unwrap();
        let batch = m
            .submit(
                spec_q("waiting-batch", 4, 10 * MINUTE, QueueClass::Batch),
                SEC,
            )
            .unwrap();
        let express = m
            .submit(
                spec_q("urgent", 1, 5 * MINUTE, QueueClass::Express),
                2 * SEC,
            )
            .unwrap();
        m.run_to_completion();
        let (BatchStatus::Completed(b), BatchStatus::Completed(e)) =
            (m.status(batch).unwrap(), m.status(express).unwrap())
        else {
            panic!()
        };
        // The express job started before the earlier-submitted batch job.
        assert!(e.started_at < b.started_at);
    }

    #[test]
    fn long_yields_to_batch() {
        let mut m = BatchSystem::new("m", Architecture::Generic, 4);
        m.submit(spec_q("running", 4, 10 * MINUTE, QueueClass::Batch), 0)
            .unwrap();
        let long = m
            .submit(spec_q("long", 4, 10 * MINUTE, QueueClass::Long), SEC)
            .unwrap();
        let batch = m
            .submit(spec_q("batch", 4, 10 * MINUTE, QueueClass::Batch), 2 * SEC)
            .unwrap();
        m.run_to_completion();
        let (BatchStatus::Completed(l), BatchStatus::Completed(b)) =
            (m.status(long).unwrap(), m.status(batch).unwrap())
        else {
            panic!()
        };
        assert!(b.started_at < l.started_at);
    }

    #[test]
    fn fifo_within_class() {
        let mut m = BatchSystem::new("m", Architecture::Generic, 2);
        m.submit(spec_q("running", 2, 10 * MINUTE, QueueClass::Batch), 0)
            .unwrap();
        let first = m
            .submit(spec_q("b1", 2, 10 * MINUTE, QueueClass::Batch), SEC)
            .unwrap();
        let second = m
            .submit(spec_q("b2", 2, 10 * MINUTE, QueueClass::Batch), 2 * SEC)
            .unwrap();
        m.run_to_completion();
        let (BatchStatus::Completed(a), BatchStatus::Completed(b)) =
            (m.status(first).unwrap(), m.status(second).unwrap())
        else {
            panic!()
        };
        assert!(a.started_at < b.started_at);
    }

    #[test]
    fn express_limits_enforced() {
        let mut m = BatchSystem::new("m", Architecture::Generic, 16);
        // Too long for express.
        assert!(matches!(
            m.submit(spec_q("slow", 1, 2 * 60 * MINUTE, QueueClass::Express), 0),
            Err(SubmitError::QueueLimit { .. })
        ));
        // Too wide for express (> 16/4 = 4).
        assert!(matches!(
            m.submit(spec_q("wide", 5, 5 * MINUTE, QueueClass::Express), 0),
            Err(SubmitError::QueueLimit { .. })
        ));
        // Within both limits.
        m.submit(spec_q("ok", 4, 5 * MINUTE, QueueClass::Express), 0)
            .unwrap();
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use crate::job::{QueueClass, WorkModel};
    use unicore_resources::Architecture;
    use unicore_sim::{MINUTE, SEC};

    fn spec(name: &str, procs: u32, runtime: SimTime) -> BatchJobSpec {
        BatchJobSpec {
            name: name.into(),
            owner: "u".into(),
            script: "#$ -pe mpi 1\nrun\n".into(),
            processors: procs,
            time_limit: runtime * 2,
            memory_mb: 1,
            queue: QueueClass::Batch,
            work: WorkModel::succeed_after(runtime),
        }
    }

    #[test]
    fn crash_kills_running_preserves_queued() {
        let mut m = BatchSystem::new("m", Architecture::Generic, 4);
        let running = m.submit(spec("running", 4, 10 * MINUTE), 0).unwrap();
        let queued = m.submit(spec("queued", 4, 5 * MINUTE), 0).unwrap();

        let killed = m.crash(MINUTE, 10 * MINUTE);
        assert_eq!(killed, 1);
        let BatchStatus::Completed(c) = m.status(running).unwrap() else {
            panic!()
        };
        assert_eq!(c.exit_code, EXIT_NODE_FAILURE);
        assert_eq!(c.ended_at, MINUTE);
        // The queued job is still queued during the outage...
        assert!(matches!(m.status(queued), Some(BatchStatus::Queued)));
        m.advance_to(5 * MINUTE);
        assert!(matches!(m.status(queued), Some(BatchStatus::Queued)));
        // ...and dispatches at recovery.
        m.advance_to(11 * MINUTE);
        assert!(
            matches!(m.status(queued), Some(BatchStatus::Running { since }) if *since == 11 * MINUTE)
        );
        m.run_to_completion();
        let BatchStatus::Completed(c) = m.status(queued).unwrap() else {
            panic!()
        };
        assert!(c.is_success());
    }

    #[test]
    fn next_event_time_includes_recovery() {
        let mut m = BatchSystem::new("m", Architecture::Generic, 2);
        m.submit(spec("j", 2, 10 * MINUTE), 0).unwrap();
        let q = m.submit(spec("waiting", 2, 10 * MINUTE), 0).unwrap();
        m.crash(SEC, 2 * MINUTE);
        // Nothing running; the next event is the recovery instant.
        assert_eq!(m.next_event_time(), Some(SEC + 2 * MINUTE));
        m.advance_to(SEC + 2 * MINUTE);
        assert!(matches!(m.status(q), Some(BatchStatus::Running { .. })));
    }

    #[test]
    fn submissions_during_outage_wait() {
        let mut m = BatchSystem::new("m", Architecture::Generic, 2);
        m.crash(0, 5 * MINUTE);
        let id = m.submit(spec("early", 1, MINUTE), MINUTE).unwrap();
        assert!(matches!(m.status(id), Some(BatchStatus::Queued)));
        m.advance_to(5 * MINUTE);
        assert!(matches!(m.status(id), Some(BatchStatus::Running { .. })));
    }

    #[test]
    fn crash_with_nothing_running() {
        let mut m = BatchSystem::new("m", Architecture::Generic, 2);
        assert_eq!(m.crash(MINUTE, MINUTE), 0);
        assert_eq!(m.offline_until(), 2 * MINUTE);
        // Fully recovers.
        let id = m.submit(spec("after", 1, MINUTE), 3 * MINUTE).unwrap();
        m.run_to_completion();
        assert!(matches!(m.status(id), Some(BatchStatus::Completed(_))));
    }
}

#[cfg(test)]
mod dialect_tests {
    use super::*;
    use crate::job::{QueueClass, WorkModel};
    use crate::script::processors_directive;
    use unicore_resources::Architecture;
    use unicore_sim::MINUTE;

    fn spec_with(script: String) -> BatchJobSpec {
        BatchJobSpec {
            name: "d".into(),
            owner: "u".into(),
            script,
            processors: 1,
            time_limit: 10 * MINUTE,
            memory_mb: 1,
            queue: QueueClass::Batch,
            work: WorkModel::succeed_after(MINUTE),
        }
    }

    #[test]
    fn strict_mode_rejects_foreign_dialect() {
        let mut m = BatchSystem::new("t3e", Architecture::CrayT3e, 8);
        m.set_strict_dialect(true);
        // LoadLeveler directives on an NQE machine.
        let foreign = format!("{}\nrun\n", processors_directive(Architecture::IbmSp2, 1));
        assert!(matches!(
            m.submit(spec_with(foreign), 0),
            Err(SubmitError::DialectMismatch)
        ));
        // Its own dialect passes.
        let native = format!("{}\nrun\n", processors_directive(Architecture::CrayT3e, 1));
        m.submit(spec_with(native), 0).unwrap();
    }

    #[test]
    fn lax_mode_accepts_anything_nonempty() {
        let mut m = BatchSystem::new("t3e", Architecture::CrayT3e, 8);
        m.submit(spec_with("whatever\n".into()), 0).unwrap();
    }
}
