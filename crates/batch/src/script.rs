//! Vendor submit-script dialects.
//!
//! Each 1999 target system spoke its own batch language — exactly the
//! "system and site specific idiosyncrasies" UNICORE hides. The NJS's
//! translation tables (in `unicore-njs`) render abstract resources into
//! these dialects; this module knows what each dialect looks like so the
//! batch simulator can *validate* that a submitted script matches the
//! machine it was sent to.

use unicore_resources::Architecture;

/// The directive prefix each dialect uses (start of a directive line).
pub fn directive_prefix(arch: Architecture) -> &'static str {
    match arch {
        Architecture::CrayT3e => "#QSUB",
        Architecture::FujitsuVpp700 => "#@$",
        Architecture::IbmSp2 => "#@",
        Architecture::NecSx4 => "#PBS",
        Architecture::Generic => "#$",
    }
}

/// How the dialect spells a processor request (format hook used by the
/// NJS translation tables).
pub fn processors_directive(arch: Architecture, n: u32) -> String {
    match arch {
        Architecture::CrayT3e => format!("#QSUB -l mpp_p={n}"),
        Architecture::FujitsuVpp700 => format!("#@$-q vpp -eo -lP {n}"),
        Architecture::IbmSp2 => format!("#@ node = {n}"),
        Architecture::NecSx4 => format!("#PBS -l cpunum_job={n}"),
        Architecture::Generic => format!("#$ -pe mpi {n}"),
    }
}

/// How the dialect spells a wall-clock limit in seconds.
pub fn time_directive(arch: Architecture, secs: u64) -> String {
    match arch {
        Architecture::CrayT3e => format!("#QSUB -l mpp_t={secs}"),
        Architecture::FujitsuVpp700 => format!("#@$-lT {secs}"),
        Architecture::IbmSp2 => {
            let h = secs / 3600;
            let m = (secs % 3600) / 60;
            let s = secs % 60;
            format!("#@ wall_clock_limit = {h:02}:{m:02}:{s:02}")
        }
        Architecture::NecSx4 => format!("#PBS -l elapstim_req={secs}"),
        Architecture::Generic => format!("#$ -l h_rt={secs}"),
    }
}

/// How the dialect spells a memory request in MB.
pub fn memory_directive(arch: Architecture, mb: u64) -> String {
    match arch {
        Architecture::CrayT3e => format!("#QSUB -l mpp_m={mb}mw"),
        Architecture::FujitsuVpp700 => format!("#@$-lM {mb}mb"),
        Architecture::IbmSp2 => format!("#@ requirements = (Memory >= {mb})"),
        Architecture::NecSx4 => format!("#PBS -l memsz_job={mb}mb"),
        Architecture::Generic => format!("#$ -l mem_free={mb}M"),
    }
}

/// Checks that `script` plausibly targets `arch`: it must contain at least
/// one directive line with the machine's own prefix and no directive lines
/// from a different dialect.
pub fn script_matches_dialect(script: &str, arch: Architecture) -> bool {
    let mut saw_own = false;
    for line in script.lines() {
        let line = line.trim_start();
        // Prefix collisions matter ("#@$" for the VPP starts with the
        // SP-2's "#@"), so classify each directive line by its *longest*
        // matching dialect prefix.
        let best = Architecture::ALL
            .iter()
            .filter(|a| line.starts_with(directive_prefix(**a)))
            .max_by_key(|a| directive_prefix(**a).len());
        match best {
            Some(&a) if a == arch => saw_own = true,
            Some(_) => return false, // foreign directive: mistranslation
            None => {}               // plain script line
        }
    }
    saw_own
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_distinct() {
        let set: std::collections::HashSet<_> = Architecture::ALL
            .iter()
            .map(|a| directive_prefix(*a))
            .collect();
        assert_eq!(set.len(), Architecture::ALL.len());
    }

    #[test]
    fn directives_mention_values() {
        for arch in Architecture::ALL {
            assert!(processors_directive(arch, 128).contains("128"), "{arch:?}");
            assert!(memory_directive(arch, 512).contains("512"), "{arch:?}");
        }
        // SP-2 formats time as HH:MM:SS.
        assert!(time_directive(Architecture::IbmSp2, 3_661).contains("01:01:01"));
        assert!(time_directive(Architecture::CrayT3e, 60).contains("60"));
    }

    #[test]
    fn dialect_match_accepts_own() {
        for arch in Architecture::ALL {
            let script = format!(
                "{}\n{}\n./a.out\n",
                processors_directive(arch, 4),
                time_directive(arch, 600)
            );
            assert!(script_matches_dialect(&script, arch), "{arch:?}");
        }
    }

    #[test]
    fn dialect_match_rejects_foreign() {
        // A T3E (NQE) script sent to the SP-2 (LoadLeveler) must fail.
        let t3e_script = format!(
            "{}\n./a.out\n",
            processors_directive(Architecture::CrayT3e, 4)
        );
        assert!(!script_matches_dialect(&t3e_script, Architecture::IbmSp2));
        // And a plain script with no directives matches nothing.
        assert!(!script_matches_dialect("./a.out\n", Architecture::CrayT3e));
    }

    #[test]
    fn vpp_script_not_misread_as_sp2() {
        // VPP's "#@$" starts with SP-2's "#@": a VPP script must not be
        // accepted by the VPP check *because of* the SP-2 prefix rules,
        // and an SP-2 check of a VPP script must reject.
        let vpp = format!(
            "{}\n./a.out\n",
            processors_directive(Architecture::FujitsuVpp700, 4)
        );
        assert!(script_matches_dialect(&vpp, Architecture::FujitsuVpp700));
    }
}
