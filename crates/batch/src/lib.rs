//! # unicore-batch
//!
//! The batch-subsystem level (tier 3) of the UNICORE architecture as a
//! discrete-event simulator: vendor batch systems with FCFS + EASY-backfill
//! scheduling, per-architecture submit-script dialects, job lifecycles,
//! output capture and accounting.
//!
//! The paper's deployment covered "Cray T3E, Fujitsu VPP/700, IBM SP-2,
//! and NEC SX-4" (§5.7); [`script`] reproduces each machine's directive
//! dialect so the NJS translation tables have something real to target,
//! and [`workload`] generates the local background load that UNICORE jobs
//! compete with ("jobs delivered through UNICORE are treated the same way
//! any other batch job is treated", §5.5).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod job;
pub mod script;
pub mod system;
pub mod workload;

pub use job::{
    AccountingRecord, BatchJobId, BatchJobSpec, BatchStatus, CompletedJob, QueueClass, WorkModel,
};
pub use script::{
    directive_prefix, memory_directive, processors_directive, script_matches_dialect,
    time_directive,
};
pub use system::{BatchSystem, SubmitError, EXIT_CANCELLED, EXIT_TIME_LIMIT};
pub use workload::{generate_background, Arrival, WorkloadModel};
