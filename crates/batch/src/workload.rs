//! Synthetic local workload for deployment experiments.
//!
//! UNICORE jobs "are treated the same way any other batch job is treated"
//! (§5.5) — so realistic experiments need the *other* batch jobs too. This
//! generator produces a classic supercomputer-centre load: Poisson
//! arrivals, log-normal runtimes, power-of-two parallelism.

use crate::job::{BatchJobSpec, WorkModel};
use crate::script::{processors_directive, time_directive};
use unicore_crypto::rng::CryptoRng;
use unicore_resources::Architecture;
use unicore_sim::dist;
use unicore_sim::{secs_f64, SimTime, SEC};

/// Parameters of the background-load model.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadModel {
    /// Mean inter-arrival time in seconds.
    pub mean_interarrival_secs: f64,
    /// Log-normal runtime parameter mu (log-seconds).
    pub runtime_mu: f64,
    /// Log-normal runtime parameter sigma.
    pub runtime_sigma: f64,
    /// Maximum power-of-two processor request (2^k).
    pub max_procs_log2: u32,
    /// Fraction of jobs that fail with a nonzero exit code.
    pub failure_rate: f64,
    /// Users overestimate limits by this factor on average.
    pub limit_overestimate: f64,
}

impl WorkloadModel {
    /// A moderately loaded centre: ~1 job/2 min, runtimes centred at ~8 min.
    pub fn moderate() -> Self {
        WorkloadModel {
            mean_interarrival_secs: 120.0,
            runtime_mu: 6.2, // e^6.2 ≈ 490 s
            runtime_sigma: 1.2,
            max_procs_log2: 6,
            failure_rate: 0.05,
            limit_overestimate: 3.0,
        }
    }

    /// A heavily loaded centre.
    pub fn heavy() -> Self {
        WorkloadModel {
            mean_interarrival_secs: 30.0,
            ..Self::moderate()
        }
    }
}

/// One generated arrival.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Arrival (submission) time.
    pub at: SimTime,
    /// The job.
    pub spec: BatchJobSpec,
}

/// Generates background arrivals over `[0, horizon)` for a machine of the
/// given architecture and size.
pub fn generate_background(
    model: &WorkloadModel,
    arch: Architecture,
    machine_nodes: u32,
    horizon: SimTime,
    rng: &mut CryptoRng,
) -> Vec<Arrival> {
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    let horizon_secs = horizon as f64 / SEC as f64;
    let mut n = 0u64;
    loop {
        t += dist::exponential(rng, model.mean_interarrival_secs);
        if t >= horizon_secs {
            break;
        }
        n += 1;
        let procs_log2 = dist::uniform_int(rng, 0, model.max_procs_log2 as u64) as u32;
        let procs = (1u32 << procs_log2).min(machine_nodes);
        let runtime_secs =
            dist::lognormal(rng, model.runtime_mu, model.runtime_sigma).clamp(1.0, 86_400.0);
        let limit_secs = (runtime_secs * dist::uniform(rng, 1.0, model.limit_overestimate))
            .clamp(runtime_secs, 172_800.0);
        let fails = rng.next_f64() < model.failure_rate;
        let work = if fails {
            WorkModel::fail_after(secs_f64(runtime_secs), 1, "application error")
        } else {
            WorkModel::succeed_after(secs_f64(runtime_secs))
        };
        let script = format!(
            "{}\n{}\n./background_{n}\n",
            processors_directive(arch, procs),
            time_directive(arch, limit_secs as u64)
        );
        arrivals.push(Arrival {
            at: secs_f64(t),
            spec: BatchJobSpec {
                name: format!("bg{n}"),
                owner: format!("local{}", n % 17),
                script,
                processors: procs,
                time_limit: secs_f64(limit_secs),
                memory_mb: 64 * procs as u64,
                queue: {
                    // Same policy the NJS applies: short jobs go express
                    // unless they exceed the express width cap.
                    let mut q = crate::job::QueueClass::for_time_limit(secs_f64(limit_secs));
                    if q == crate::job::QueueClass::Express && procs > (machine_nodes / 4).max(1) {
                        q = crate::job::QueueClass::Batch;
                    }
                    q
                },
                work,
            },
        });
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::BatchSystem;
    use unicore_sim::MINUTE;

    #[test]
    fn arrivals_are_ordered_and_within_horizon() {
        let mut rng = CryptoRng::from_u64(1);
        let horizon = 60 * MINUTE;
        let arrivals = generate_background(
            &WorkloadModel::moderate(),
            Architecture::CrayT3e,
            512,
            horizon,
            &mut rng,
        );
        assert!(!arrivals.is_empty());
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(arrivals.iter().all(|a| a.at < horizon));
    }

    #[test]
    fn specs_are_submittable() {
        let mut rng = CryptoRng::from_u64(2);
        let mut machine = BatchSystem::new("t3e", Architecture::CrayT3e, 512);
        let arrivals = generate_background(
            &WorkloadModel::moderate(),
            Architecture::CrayT3e,
            512,
            30 * MINUTE,
            &mut rng,
        );
        for a in &arrivals {
            machine.submit(a.spec.clone(), a.at).unwrap();
        }
        machine.run_to_completion();
        assert_eq!(machine.accounting().len(), arrivals.len());
    }

    #[test]
    fn scripts_match_dialect() {
        let mut rng = CryptoRng::from_u64(3);
        for arch in Architecture::ALL {
            let arrivals =
                generate_background(&WorkloadModel::moderate(), arch, 64, 10 * MINUTE, &mut rng);
            for a in &arrivals {
                assert!(
                    crate::script::script_matches_dialect(&a.spec.script, arch),
                    "{arch:?}: {}",
                    a.spec.script
                );
            }
        }
    }

    #[test]
    fn heavy_load_produces_more_jobs() {
        let mut r1 = CryptoRng::from_u64(4);
        let mut r2 = CryptoRng::from_u64(4);
        let h = 60 * MINUTE;
        let moderate = generate_background(
            &WorkloadModel::moderate(),
            Architecture::Generic,
            8,
            h,
            &mut r1,
        );
        let heavy = generate_background(
            &WorkloadModel::heavy(),
            Architecture::Generic,
            8,
            h,
            &mut r2,
        );
        assert!(heavy.len() > moderate.len());
    }

    #[test]
    fn determinism_per_seed() {
        let gen = |seed| {
            let mut rng = CryptoRng::from_u64(seed);
            generate_background(
                &WorkloadModel::moderate(),
                Architecture::NecSx4,
                32,
                20 * MINUTE,
                &mut rng,
            )
            .iter()
            .map(|a| (a.at, a.spec.processors, a.spec.work.actual_runtime))
            .collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
