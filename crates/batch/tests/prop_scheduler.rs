//! Property tests for the batch scheduler: conservation, completion, and
//! the EASY guarantee that backfilling never delays the queue head.

use proptest::prelude::*;
use unicore_batch::{BatchJobSpec, BatchStatus, BatchSystem, QueueClass, WorkModel};
use unicore_resources::Architecture;
use unicore_sim::{SimTime, SEC};

#[derive(Debug, Clone)]
struct JobInput {
    procs: u32,
    limit: SimTime,
    actual: SimTime,
    submit_at: SimTime,
}

fn jobs_strategy(machine_nodes: u32) -> impl Strategy<Value = Vec<JobInput>> {
    proptest::collection::vec(
        (1u32..=machine_nodes, 1u64..600, 1u64..900, 0u64..3_600).prop_map(
            |(procs, limit_s, actual_s, at_s)| JobInput {
                procs,
                limit: limit_s * SEC,
                actual: actual_s * SEC,
                submit_at: at_s * SEC,
            },
        ),
        1..40,
    )
    .prop_map(|mut v| {
        v.sort_by_key(|j| j.submit_at);
        v
    })
}

fn spec(j: &JobInput, i: usize) -> BatchJobSpec {
    BatchJobSpec {
        name: format!("p{i}"),
        owner: "prop".into(),
        script: "#QSUB -l mpp_p=1\nrun\n".into(),
        processors: j.procs,
        time_limit: j.limit,
        memory_mb: 1,
        queue: QueueClass::Batch,
        work: WorkModel::succeed_after(j.actual),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_jobs_complete_and_nodes_conserved(jobs in jobs_strategy(16)) {
        let mut m = BatchSystem::new("m", Architecture::Generic, 16);
        let mut ids = Vec::new();
        for (i, j) in jobs.iter().enumerate() {
            ids.push(m.submit(spec(j, i), j.submit_at).unwrap());
        }
        m.run_to_completion();
        prop_assert_eq!(m.free_nodes(), 16);
        for id in ids {
            let status = m.status(id).unwrap();
            prop_assert!(matches!(status, BatchStatus::Completed(_)), "{:?}", status);
        }
        prop_assert_eq!(m.accounting().len(), jobs.len());
    }

    #[test]
    fn starts_never_precede_submissions(jobs in jobs_strategy(8)) {
        let mut m = BatchSystem::new("m", Architecture::Generic, 8);
        for (i, j) in jobs.iter().enumerate() {
            m.submit(spec(j, i), j.submit_at).unwrap();
        }
        m.run_to_completion();
        for rec in m.accounting() {
            prop_assert!(rec.started_at >= rec.submitted_at);
            prop_assert!(rec.ended_at >= rec.started_at);
        }
    }

    #[test]
    fn concurrent_usage_never_exceeds_capacity(jobs in jobs_strategy(8)) {
        let mut m = BatchSystem::new("m", Architecture::Generic, 8);
        for (i, j) in jobs.iter().enumerate() {
            m.submit(spec(j, i), j.submit_at).unwrap();
        }
        m.run_to_completion();
        // Reconstruct usage from accounting via event sweep.
        let mut events: Vec<(SimTime, i64)> = Vec::new();
        for rec in m.accounting() {
            events.push((rec.started_at, rec.processors as i64));
            events.push((rec.ended_at, -(rec.processors as i64)));
        }
        events.sort_by_key(|&(t, delta)| (t, delta)); // frees (-) before allocs (+) at ties
        let mut usage = 0i64;
        for (_, delta) in events {
            usage += delta;
            prop_assert!(usage <= 8, "usage {usage} exceeded capacity");
            prop_assert!(usage >= 0);
        }
    }

    #[test]
    fn fifo_among_equal_full_machine_jobs(n in 2usize..8) {
        // Jobs all needing the full machine must run strictly in
        // submission order — backfill has no room to reorder them.
        let mut m = BatchSystem::new("m", Architecture::Generic, 4);
        let mut ids = Vec::new();
        for i in 0..n {
            let j = JobInput {
                procs: 4,
                limit: 10 * SEC,
                actual: 5 * SEC,
                submit_at: i as u64 * SEC,
            };
            ids.push(m.submit(spec(&j, i), j.submit_at).unwrap());
        }
        m.run_to_completion();
        let mut starts: Vec<SimTime> = Vec::new();
        for id in &ids {
            if let Some(BatchStatus::Completed(c)) = m.status(*id) {
                starts.push(c.started_at);
            }
        }
        for w in starts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
