//! The receiving half of a transfer: idempotent chunk acceptance and the
//! cumulative watermark the receiver acks.

use crate::manifest::TransferManifest;

/// What happened to an arriving chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkDisposition {
    /// New chunk, verified and accepted — the caller should store it.
    Fresh,
    /// Already held (retransmission or duplicate) — ack again, store nothing.
    Duplicate,
    /// Failed length or checksum verification — discard, do not ack it.
    Corrupt,
    /// Index beyond the manifest's chunk count — discard.
    OutOfRange,
}

/// Receiver-side bookkeeping for one transfer.
///
/// Storage is the caller's concern (the NJS writes into a Uspace partial
/// file; tests use a plain buffer): this struct only decides whether a
/// chunk is fresh, and tracks the contiguous watermark that goes into the
/// cumulative `ChunkAck`. Every mutation here is idempotent, because the
/// E14 machinery may re-deliver any chunk after a drop, a duplicate, or a
/// crash that wiped the dedup cache.
#[derive(Debug, Clone)]
pub struct ReceiverState {
    manifest: TransferManifest,
    received: Vec<bool>,
    /// Contiguous received prefix — the value we ack, and the resume point
    /// we offer a reconnecting sender.
    watermark: u64,
    bytes_received: u64,
}

impl ReceiverState {
    /// A fresh receiver for `manifest`.
    pub fn new(manifest: TransferManifest) -> Self {
        let n = manifest.num_chunks() as usize;
        ReceiverState {
            manifest,
            received: vec![false; n],
            watermark: 0,
            bytes_received: 0,
        }
    }

    /// The transfer's manifest.
    pub fn manifest(&self) -> &TransferManifest {
        &self.manifest
    }

    /// Classifies an arriving chunk. On [`ChunkDisposition::Fresh`] the
    /// caller must store `data` at the chunk's byte range before acking.
    pub fn accept_chunk(&mut self, index: u64, data: &[u8]) -> ChunkDisposition {
        if index >= self.manifest.num_chunks() {
            return ChunkDisposition::OutOfRange;
        }
        if self.received[index as usize] {
            return ChunkDisposition::Duplicate;
        }
        if !self.manifest.verify_chunk(index, data) {
            return ChunkDisposition::Corrupt;
        }
        self.mark_received(index);
        ChunkDisposition::Fresh
    }

    /// Marks chunk `index` held without verification — journal replay,
    /// where the bytes were already verified before being logged.
    pub fn mark_received(&mut self, index: u64) {
        let i = index as usize;
        if i >= self.received.len() || self.received[i] {
            return;
        }
        self.received[i] = true;
        self.bytes_received += self.manifest.chunk_range(index).len() as u64;
        while (self.watermark as usize) < self.received.len()
            && self.received[self.watermark as usize]
        {
            self.watermark += 1;
        }
    }

    /// Whether chunk `index` is already held (lets a caller skip storage
    /// work before calling [`ReceiverState::accept_chunk`]).
    pub fn is_received(&self, index: u64) -> bool {
        self.received.get(index as usize).copied().unwrap_or(false)
    }

    /// The cumulative ack value: contiguous chunks stored so far.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Chunks held (contiguous or not).
    pub fn chunks_received(&self) -> u64 {
        self.received.iter().filter(|r| **r).count() as u64
    }

    /// Bytes held across all received chunks.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Whether every chunk is held.
    pub fn is_complete(&self) -> bool {
        self.watermark >= self.manifest.num_chunks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unicore_ajo::{ActionId, JobId, VsiteAddress};
    use unicore_crypto::sha256;

    fn setup(len: usize, chunk: u32) -> (TransferManifest, Arc<[u8]>) {
        let data: Arc<[u8]> = (0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>().into();
        let m = TransferManifest::for_bytes(
            "FZJ",
            JobId(1),
            ActionId(1),
            VsiteAddress::new("RUS", "VPP"),
            "f",
            "dn",
            false,
            &data,
            chunk,
        );
        (m, data)
    }

    #[test]
    fn in_order_delivery() {
        let (m, data) = setup(100, 30);
        let mut r = ReceiverState::new(m.clone());
        for i in 0..m.num_chunks() {
            assert_eq!(
                r.accept_chunk(i, &data[m.chunk_range(i)]),
                ChunkDisposition::Fresh
            );
            assert_eq!(r.watermark(), i + 1);
        }
        assert!(r.is_complete());
        assert_eq!(r.bytes_received(), 100);
    }

    #[test]
    fn out_of_order_holds_watermark() {
        let (m, data) = setup(100, 30);
        let mut r = ReceiverState::new(m.clone());
        assert_eq!(
            r.accept_chunk(2, &data[m.chunk_range(2)]),
            ChunkDisposition::Fresh
        );
        // Chunk 0 not yet here: nothing contiguous to ack.
        assert_eq!(r.watermark(), 0);
        r.accept_chunk(0, &data[m.chunk_range(0)]);
        assert_eq!(r.watermark(), 1);
        r.accept_chunk(1, &data[m.chunk_range(1)]);
        // Watermark jumps over the already-held chunk 2.
        assert_eq!(r.watermark(), 3);
    }

    #[test]
    fn duplicates_and_corruption() {
        let (m, data) = setup(100, 30);
        let mut r = ReceiverState::new(m.clone());
        r.accept_chunk(0, &data[m.chunk_range(0)]);
        assert_eq!(
            r.accept_chunk(0, &data[m.chunk_range(0)]),
            ChunkDisposition::Duplicate
        );
        let mut bad = data[m.chunk_range(1)].to_vec();
        bad[0] ^= 0xff;
        assert_eq!(r.accept_chunk(1, &bad), ChunkDisposition::Corrupt);
        assert_eq!(
            r.accept_chunk(99, &data[0..30]),
            ChunkDisposition::OutOfRange
        );
        assert_eq!(r.watermark(), 1);
        assert_eq!(r.chunks_received(), 1);
    }

    #[test]
    fn replay_restores_watermark() {
        let (m, _) = setup(100, 30);
        let mut r = ReceiverState::new(m);
        // Journal said chunks 0, 1 and 3 were stored before the crash.
        for i in [0, 1, 3, 1] {
            r.mark_received(i);
        }
        assert_eq!(r.watermark(), 2);
        assert_eq!(r.chunks_received(), 3);
        assert_eq!(r.bytes_received(), 70);
    }

    #[test]
    fn whole_file_checksum_closes_the_loop() {
        let (m, data) = setup(100, 30);
        assert_eq!(sha256(&data), m.file_sum);
    }
}
