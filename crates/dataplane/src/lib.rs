//! # unicore-dataplane
//!
//! The Uspace data plane: chunked, resumable, backpressured streaming of
//! Import/Export/Transfer files between Usites.
//!
//! The paper's §5 data model makes per-job Uspaces, site Xspaces, and the
//! Import/Export/Transfer tasks the *only* crossings between user data and
//! the grid. Until now those crossings moved whole files inside a single
//! protocol message; production grids (Streit et al., "UNICORE — From
//! Project Results to Production Grids") live or die on restartable,
//! bounded-memory staging. This crate supplies the transfer engine:
//!
//! - [`TransferManifest`] — the contract for one file crossing: identity,
//!   length, chunk geometry, per-chunk SHA-256 sums and the whole-file sum.
//! - [`SenderState`] — sliding-window sender: at most `window` chunks
//!   un-acked at a time, resume-from-last-acked-chunk on reconnect.
//! - [`ReceiverState`] — idempotent receiver: verifies each chunk sum,
//!   absorbs duplicates, tracks the contiguous watermark it acks.
//!
//! The states are transport-agnostic: the `core` server drives the sender
//! over Envelope-framed requests (each chunk rides the E14 seq/ack retry
//! machinery), the NJS drives the receiver into a Uspace partial write,
//! and `unicore-store` journals receiver progress so a crash-restarted
//! Usite resumes mid-stream instead of restarting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod manifest;
pub mod receiver;
pub mod sender;

pub use manifest::{TransferKey, TransferManifest, DEFAULT_CHUNK_SIZE};
pub use receiver::{ChunkDisposition, ReceiverState};
pub use sender::{SenderState, DEFAULT_WINDOW};
