//! The sending half of a transfer: sliding-window chunk emission with
//! resume-from-last-acked-chunk.

use crate::manifest::TransferManifest;
use std::sync::Arc;

/// Default backpressure window: at most this many chunks may be in flight
/// (sent but not covered by the receiver's cumulative ack) at once.
pub const DEFAULT_WINDOW: u64 = 4;

/// Sliding-window sender state for one transfer.
///
/// The sender holds the file as `Arc<[u8]>` (no copy of the Uspace data)
/// and emits chunk indices to send; the driving server turns each index
/// into a `TransferChunk` request. Acks are cumulative: the receiver
/// reports the contiguous prefix it has durably stored, and the window
/// slides forward from there. After a stall or re-offer, [`begin`]
/// restarts cleanly from whatever resume point the receiver reports.
///
/// [`begin`]: SenderState::begin
#[derive(Debug, Clone)]
pub struct SenderState {
    manifest: TransferManifest,
    data: Arc<[u8]>,
    /// Contiguous chunk prefix the receiver has acked.
    acked: u64,
    /// Next chunk index to emit.
    next: u64,
    window: u64,
}

impl SenderState {
    /// A sender for `data` described by `manifest`.
    pub fn new(manifest: TransferManifest, data: Arc<[u8]>, window: u64) -> Self {
        debug_assert_eq!(manifest.total_len, data.len() as u64);
        SenderState {
            manifest,
            data,
            acked: 0,
            next: 0,
            window: window.max(1),
        }
    }

    /// The transfer's manifest.
    pub fn manifest(&self) -> &TransferManifest {
        &self.manifest
    }

    /// (Re)starts the stream from the receiver's resume point. Returns the
    /// initial window of chunk indices to send, in order.
    pub fn begin(&mut self, resume_from: u64) -> Vec<u64> {
        let total = self.manifest.num_chunks();
        self.acked = resume_from.min(total);
        self.next = self.acked;
        self.fill_window()
    }

    /// Applies a cumulative ack (`upto` = contiguous chunks stored).
    /// Returns further chunk indices now admitted by the window.
    pub fn on_ack(&mut self, upto: u64) -> Vec<u64> {
        let total = self.manifest.num_chunks();
        if upto > self.acked {
            self.acked = upto.min(total);
            if self.next < self.acked {
                self.next = self.acked;
            }
        }
        self.fill_window()
    }

    fn fill_window(&mut self) -> Vec<u64> {
        let total = self.manifest.num_chunks();
        let limit = (self.acked + self.window).min(total);
        let out: Vec<u64> = (self.next..limit).collect();
        self.next = limit;
        out
    }

    /// The payload bytes of chunk `index`.
    pub fn chunk_payload(&self, index: u64) -> Vec<u8> {
        self.data[self.manifest.chunk_range(index)].to_vec()
    }

    /// Whether every chunk has been acked.
    pub fn is_complete(&self) -> bool {
        self.acked >= self.manifest.num_chunks()
    }

    /// Chunks acked so far (the resume point if we stall here).
    pub fn acked_chunks(&self) -> u64 {
        self.acked
    }

    /// Bytes covered by the acked prefix.
    pub fn bytes_acked(&self) -> u64 {
        (self.acked * self.manifest.chunk_size as u64).min(self.manifest.total_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicore_ajo::{ActionId, JobId, VsiteAddress};

    fn sender(len: usize, chunk: u32, window: u64) -> SenderState {
        let data: Arc<[u8]> = (0..len).map(|i| i as u8).collect::<Vec<_>>().into();
        let m = TransferManifest::for_bytes(
            "FZJ",
            JobId(1),
            ActionId(1),
            VsiteAddress::new("RUS", "VPP"),
            "f",
            "dn",
            false,
            &data,
            chunk,
        );
        SenderState::new(m, data, window)
    }

    #[test]
    fn window_limits_inflight() {
        let mut s = sender(100, 10, 4);
        assert_eq!(s.begin(0), vec![0, 1, 2, 3]);
        // No ack progress: nothing more admitted.
        assert!(s.on_ack(0).is_empty());
        // Ack 2 chunks: window slides by 2.
        assert_eq!(s.on_ack(2), vec![4, 5]);
        assert_eq!(s.on_ack(6), vec![6, 7, 8, 9]);
        assert!(!s.is_complete());
        assert!(s.on_ack(10).is_empty());
        assert!(s.is_complete());
    }

    #[test]
    fn resume_skips_acked_prefix() {
        let mut s = sender(100, 10, 4);
        s.begin(0);
        // Receiver reports 7 chunks stored; re-offer resumes from there.
        assert_eq!(s.begin(7), vec![7, 8, 9]);
        assert_eq!(s.acked_chunks(), 7);
        assert_eq!(s.bytes_acked(), 70);
    }

    #[test]
    fn stale_ack_ignored() {
        let mut s = sender(100, 10, 2);
        s.begin(0);
        s.on_ack(5);
        // A late, smaller ack must not move the window backwards.
        assert!(s.on_ack(3).is_empty());
        assert_eq!(s.acked_chunks(), 5);
    }

    #[test]
    fn empty_file_is_immediately_complete() {
        let mut s = sender(0, 10, 4);
        assert!(s.begin(0).is_empty());
        assert!(s.is_complete());
    }

    #[test]
    fn payload_matches_range() {
        let s = sender(25, 10, 4);
        assert_eq!(s.chunk_payload(2), vec![20, 21, 22, 23, 24]);
    }
}
