//! Per-transfer manifests: what is being moved, in which chunks, with
//! which checksums.

use std::ops::Range;
use unicore_ajo::{ActionId, JobId, VsiteAddress};
use unicore_codec::{CodecError, DerCodec, Fields, Value};
use unicore_crypto::sha256;

/// Default chunk size: 64 KiB keeps per-record memory bounded while still
/// amortising the per-record framing cost over a 1999 WAN.
pub const DEFAULT_CHUNK_SIZE: u32 = 64 * 1024;

/// Identity of one transfer, unique grid-wide: the sending Usite plus the
/// (job, node) of the Transfer task that initiated it. A re-offer after a
/// sender crash carries the same key, which is what lets the receiver
/// answer with its resume point instead of starting over.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransferKey {
    /// The sending Usite's name.
    pub origin: String,
    /// The job whose Transfer task is sending.
    pub origin_job: JobId,
    /// The Transfer task node within that job.
    pub origin_node: ActionId,
}

/// The contract for one streamed file: identity, destination, length,
/// chunk geometry and checksums. Sent once in the `TransferOffer`; both
/// endpoints hold it for the life of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferManifest {
    /// The sending Usite's name.
    pub origin: String,
    /// The job whose Transfer task is sending.
    pub origin_job: JobId,
    /// The Transfer task node within that job.
    pub origin_node: ActionId,
    /// Destination Vsite whose Xspace receives the file.
    pub to_vsite: VsiteAddress,
    /// File name at the destination (under the incoming prefix).
    pub dest_name: String,
    /// DN of the transferring user (authorisation at the receiver).
    pub user_dn: String,
    /// Total file length in bytes.
    pub total_len: u64,
    /// Chunk size in bytes (last chunk may be shorter).
    pub chunk_size: u32,
    /// SHA-256 of each chunk, in order.
    pub chunk_sums: Vec<[u8; 32]>,
    /// SHA-256 of the whole file (final integrity gate).
    pub file_sum: [u8; 32],
    /// Whether the delivered file is world-readable at the destination.
    pub world_readable: bool,
}

impl TransferManifest {
    /// Builds a manifest for `data`, computing all checksums.
    #[allow(clippy::too_many_arguments)]
    pub fn for_bytes(
        origin: impl Into<String>,
        origin_job: JobId,
        origin_node: ActionId,
        to_vsite: VsiteAddress,
        dest_name: impl Into<String>,
        user_dn: impl Into<String>,
        world_readable: bool,
        data: &[u8],
        chunk_size: u32,
    ) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let chunk_sums = data.chunks(chunk_size as usize).map(sha256).collect();
        TransferManifest {
            origin: origin.into(),
            origin_job,
            origin_node,
            to_vsite,
            dest_name: dest_name.into(),
            user_dn: user_dn.into(),
            total_len: data.len() as u64,
            chunk_size,
            chunk_sums,
            file_sum: sha256(data),
            world_readable,
        }
    }

    /// The transfer's grid-wide identity.
    pub fn key(&self) -> TransferKey {
        TransferKey {
            origin: self.origin.clone(),
            origin_job: self.origin_job,
            origin_node: self.origin_node,
        }
    }

    /// Number of chunks (zero for an empty file).
    pub fn num_chunks(&self) -> u64 {
        self.total_len.div_ceil(self.chunk_size as u64)
    }

    /// Byte range of chunk `index` within the file.
    pub fn chunk_range(&self, index: u64) -> Range<usize> {
        let start = index * self.chunk_size as u64;
        let end = (start + self.chunk_size as u64).min(self.total_len);
        start as usize..end as usize
    }

    /// Checks `data` against chunk `index`'s recorded length and checksum.
    pub fn verify_chunk(&self, index: u64, data: &[u8]) -> bool {
        if index >= self.num_chunks() {
            return false;
        }
        let range = self.chunk_range(index);
        data.len() == range.len() && sha256(data) == self.chunk_sums[index as usize]
    }

    /// Internal consistency: chunk count matches the declared length.
    pub fn well_formed(&self) -> bool {
        self.chunk_size > 0 && self.chunk_sums.len() as u64 == self.num_chunks()
    }
}

fn sum_from(bytes: &[u8]) -> Result<[u8; 32], CodecError> {
    bytes
        .try_into()
        .map_err(|_| CodecError::BadValue("sha-256 checksum must be 32 bytes"))
}

impl DerCodec for TransferManifest {
    fn to_value(&self) -> Value {
        Value::Sequence(vec![
            Value::string(&self.origin),
            Value::Integer(self.origin_job.0 as i64),
            Value::Integer(self.origin_node.0 as i64),
            self.to_vsite.to_value(),
            Value::string(&self.dest_name),
            Value::string(&self.user_dn),
            Value::Integer(self.total_len as i64),
            Value::Integer(self.chunk_size as i64),
            Value::Sequence(
                self.chunk_sums
                    .iter()
                    .map(|s| Value::bytes(s.to_vec()))
                    .collect(),
            ),
            Value::bytes(self.file_sum.to_vec()),
            Value::Boolean(self.world_readable),
        ])
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let mut f = Fields::open(value, "TransferManifest")?;
        let origin = f.next_string()?;
        let origin_job = JobId(f.next_u64()?);
        let origin_node = ActionId(f.next_u64()?);
        let to_vsite = VsiteAddress::from_value(f.next_value()?)?;
        let dest_name = f.next_string()?;
        let user_dn = f.next_string()?;
        let total_len = f.next_u64()?;
        let chunk_size = f.next_u32()?;
        let chunk_sums = f
            .next_sequence()?
            .iter()
            .map(|v| {
                v.as_bytes()
                    .ok_or(CodecError::BadValue("chunk checksum"))
                    .and_then(sum_from)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let file_sum = sum_from(f.next_bytes()?)?;
        let world_readable = f.next_bool()?;
        f.finish()?;
        let m = TransferManifest {
            origin,
            origin_job,
            origin_node,
            to_vsite,
            dest_name,
            user_dn,
            total_len,
            chunk_size,
            chunk_sums,
            file_sum,
            world_readable,
        };
        if !m.well_formed() {
            return Err(CodecError::BadValue("manifest chunk count mismatch"));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(data: &[u8], chunk: u32) -> TransferManifest {
        TransferManifest::for_bytes(
            "FZJ",
            JobId(7),
            ActionId(3),
            VsiteAddress::new("RUS", "VPP"),
            "fields.grb",
            "C=DE, CN=alice",
            true,
            data,
            chunk,
        )
    }

    #[test]
    fn geometry() {
        let m = manifest(&[0u8; 100], 30);
        assert_eq!(m.num_chunks(), 4);
        assert_eq!(m.chunk_range(0), 0..30);
        assert_eq!(m.chunk_range(3), 90..100);
        assert!(m.well_formed());

        let empty = manifest(&[], 30);
        assert_eq!(empty.num_chunks(), 0);
        assert!(empty.well_formed());
    }

    #[test]
    fn chunk_verification() {
        let data: Vec<u8> = (0..100u8).collect();
        let m = manifest(&data, 30);
        assert!(m.verify_chunk(0, &data[0..30]));
        assert!(m.verify_chunk(3, &data[90..100]));
        // Wrong bytes, wrong length, out-of-range index all fail.
        assert!(!m.verify_chunk(0, &data[30..60]));
        assert!(!m.verify_chunk(0, &data[0..29]));
        assert!(!m.verify_chunk(4, &data[0..30]));
    }

    #[test]
    fn der_round_trip() {
        let data: Vec<u8> = (0..255u8).collect();
        let m = manifest(&data, 64);
        let der = m.to_der();
        let back = TransferManifest::from_der(&der).unwrap();
        assert_eq!(m, back);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(back.to_der(), der);
    }

    #[test]
    fn malformed_manifest_rejected() {
        let mut m = manifest(&[0u8; 100], 30);
        m.chunk_sums.pop();
        let der = m.to_der();
        assert!(TransferManifest::from_der(&der).is_err());
    }
}
