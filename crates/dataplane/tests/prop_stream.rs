//! Property tests: whatever the network does to chunk order — drops that
//! force retransmission, duplicates, reorders, a mid-stream restart from
//! an arbitrary resume point — the assembled file is byte-identical to
//! the source and the sender/receiver watermarks agree.

use proptest::prelude::*;
use std::sync::Arc;
use unicore_ajo::{ActionId, JobId, VsiteAddress};
use unicore_codec::DerCodec;
use unicore_crypto::sha256;
use unicore_dataplane::{ChunkDisposition, ReceiverState, SenderState, TransferManifest};

fn manifest_for(data: &[u8], chunk: u32) -> TransferManifest {
    TransferManifest::for_bytes(
        "FZJ",
        JobId(9),
        ActionId(2),
        VsiteAddress::new("RUS", "VPP"),
        "staged.bin",
        "C=DE, CN=prop",
        false,
        data,
        chunk,
    )
}

/// Drives a full transfer through a hostile scheduler: each in-flight
/// chunk may be delivered, duplicated, or deferred (reordered) according
/// to `schedule`, and the receiver writes fresh chunks into `out`.
fn run_transfer(
    data: &[u8],
    chunk: u32,
    window: u64,
    resume_from: u64,
    schedule: &[u8],
) -> (Vec<u8>, ReceiverState) {
    let m = manifest_for(data, chunk);
    let arc: Arc<[u8]> = data.to_vec().into();
    let mut sender = SenderState::new(m.clone(), arc, window);
    let mut recv = ReceiverState::new(m.clone());
    let mut out = vec![0u8; data.len()];

    // The "already transferred" prefix a resuming sender skips: the
    // receiver really holds those chunks (journal replay).
    let resume = resume_from.min(m.num_chunks());
    for i in 0..resume {
        let range = m.chunk_range(i);
        out[range.clone()].copy_from_slice(&data[range]);
        recv.mark_received(i);
    }

    let mut inflight: Vec<u64> = sender.begin(recv.watermark());
    let mut step = 0usize;
    // Each loop iteration delivers one chunk from the in-flight set; the
    // schedule byte picks which (reorder) and whether to also duplicate.
    let mut guard = 0u32;
    while !sender.is_complete() {
        guard += 1;
        assert!(guard < 100_000, "transfer failed to converge");
        if inflight.is_empty() {
            // Window stalled with nothing in flight can only mean the
            // sender is complete; `while` catches that.
            break;
        }
        let b = schedule.get(step).copied().unwrap_or(0);
        step = step.wrapping_add(1);
        let pick = (b as usize) % inflight.len();
        let idx = inflight.remove(pick);
        let repeats = if b & 0x80 != 0 { 2 } else { 1 };
        for _ in 0..repeats {
            let payload = sender.chunk_payload(idx);
            let disp = recv.accept_chunk(idx, &payload);
            if disp == ChunkDisposition::Fresh {
                let range = m.chunk_range(idx);
                out[range].copy_from_slice(&payload);
            }
            assert_ne!(disp, ChunkDisposition::Corrupt);
            inflight.extend(sender.on_ack(recv.watermark()));
        }
    }
    (out, recv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hostile_delivery_assembles_identically(
        data in proptest::collection::vec(any::<u8>(), 0..2_000),
        chunk in 1u32..257,
        window in 1u64..9,
        schedule in proptest::collection::vec(any::<u8>(), 64),
    ) {
        let (out, recv) = run_transfer(&data, chunk, window, 0, &schedule);
        prop_assert_eq!(&out, &data);
        prop_assert!(recv.is_complete());
        prop_assert_eq!(sha256(&out), recv.manifest().file_sum);
    }

    #[test]
    fn resume_from_any_prefix_assembles_identically(
        data in proptest::collection::vec(any::<u8>(), 1..2_000),
        chunk in 1u32..129,
        resume in 0u64..40,
        schedule in proptest::collection::vec(any::<u8>(), 64),
    ) {
        let (out, recv) = run_transfer(&data, chunk, 4, resume, &schedule);
        prop_assert_eq!(&out, &data);
        prop_assert_eq!(recv.watermark(), recv.manifest().num_chunks());
    }

    #[test]
    fn manifest_der_round_trips(
        data in proptest::collection::vec(any::<u8>(), 0..1_000),
        chunk in 1u32..300,
        world in any::<bool>(),
    ) {
        let mut m = manifest_for(&data, chunk);
        m.world_readable = world;
        let der = m.to_der();
        let back = TransferManifest::from_der(&der).unwrap();
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(back.to_der(), der);
    }
}
