//! NJS errors.

use core::fmt;
use unicore_ajo::{AjoError, JobId};
use unicore_batch::SubmitError;
use unicore_resources::Violation;
use unicore_uspace::SpaceError;

/// Errors from consignment and job management.
#[derive(Debug)]
pub enum NjsError {
    /// The AJO failed validation.
    Validation(AjoError),
    /// The destination Vsite is not served by this NJS.
    UnknownVsite {
        /// The requested Vsite name.
        vsite: String,
        /// This NJS's Usite.
        usite: String,
    },
    /// A job addressed to another Usite was consigned here directly.
    WrongUsite {
        /// Where the job wanted to go.
        wanted: String,
        /// This NJS's Usite.
        usite: String,
    },
    /// A task's resource request violates the Vsite's limits.
    Admission {
        /// The offending task name.
        task: String,
        /// The violated limits.
        violations: Vec<Violation>,
    },
    /// A data-space operation failed.
    Space(SpaceError),
    /// The batch system rejected a submission.
    Batch(SubmitError),
    /// No such job at this NJS.
    UnknownJob(JobId),
    /// The requesting user does not own the job.
    NotOwner {
        /// The job.
        job: JobId,
        /// Who asked.
        dn: String,
    },
    /// The durable job journal failed (write or replay).
    Store(unicore_store::StoreError),
    /// A data-plane chunk arrived for a transfer this NJS has no open
    /// receiver state for (the sender must re-offer).
    UnknownTransfer,
    /// A data-plane chunk failed its manifest checksum.
    CorruptChunk {
        /// The chunk index.
        index: u64,
    },
    /// A transfer offer's manifest was internally inconsistent.
    BadManifest,
}

impl fmt::Display for NjsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NjsError::Validation(e) => write!(f, "AJO validation failed: {e}"),
            NjsError::UnknownVsite { vsite, usite } => {
                write!(f, "Vsite {vsite} not served by Usite {usite}")
            }
            NjsError::WrongUsite { wanted, usite } => {
                write!(f, "job destined for {wanted} consigned to {usite}")
            }
            NjsError::Admission { task, violations } => {
                write!(f, "task '{task}' rejected:")?;
                for v in violations {
                    write!(f, " {v};")?;
                }
                Ok(())
            }
            NjsError::Space(e) => write!(f, "data space error: {e}"),
            NjsError::Batch(e) => write!(f, "batch submission failed: {e}"),
            NjsError::UnknownJob(j) => write!(f, "unknown job {j}"),
            NjsError::NotOwner { job, dn } => write!(f, "{dn} does not own {job}"),
            NjsError::Store(e) => write!(f, "job store error: {e}"),
            NjsError::UnknownTransfer => write!(f, "no open transfer for this key"),
            NjsError::CorruptChunk { index } => {
                write!(f, "chunk {index} failed its manifest checksum")
            }
            NjsError::BadManifest => write!(f, "transfer manifest is malformed"),
        }
    }
}

impl From<unicore_store::StoreError> for NjsError {
    fn from(e: unicore_store::StoreError) -> Self {
        NjsError::Store(e)
    }
}

impl std::error::Error for NjsError {}

impl From<AjoError> for NjsError {
    fn from(e: AjoError) -> Self {
        NjsError::Validation(e)
    }
}

impl From<SpaceError> for NjsError {
    fn from(e: SpaceError) -> Self {
        NjsError::Space(e)
    }
}

impl From<SubmitError> for NjsError {
    fn from(e: SubmitError) -> Self {
        NjsError::Batch(e)
    }
}
