//! The Network Job Supervisor engine.
//!
//! One NJS serves one Usite and "can support multiple destination systems
//! (Vsites)" (§4.3). Its duties, straight from §5.5: transform the
//! abstract job, split it into job groups for different sites, distribute
//! and control them, translate abstract specifications via translation
//! tables, submit batch jobs, create the UNICORE job directory, collect
//! stdout/stderr, and initiate all data transfers.
//!
//! The NJS is clock-passive like the batch substrate: callers drive it
//! with [`Njs::step`] as simulated time advances, and drain
//! [`Njs::take_outbox`] for work addressed to peer Usites (sub-AJOs and
//! file transfers), which the federation layer in `unicore` routes.

use crate::error::NjsError;
use crate::oracle::{DeterministicOracle, WorkOracle};
use crate::shard::CrossShardItem;
use crate::translation::TranslationTable;
use crossbeam::channel::Sender;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use unicore_ajo::{
    AbstractJob, ActionId, ActionStatus, ControlOp, DataLocation, DependencyIndex, DetailLevel,
    FileKind, GraphNode, JobId, JobOutcome, JobSummary, MonitorReport, OutcomeNode, TaskKind,
    TaskOutcome, VsiteAddress, VsiteHealth,
};
use unicore_batch::{BatchJobId, BatchJobSpec, BatchStatus, BatchSystem};
use unicore_codec::DerCodec;
use unicore_dataplane::{ReceiverState, TransferKey, TransferManifest};
use unicore_gateway::MappedUser;
use unicore_resources::{check_request, ResourcePage};
use unicore_sim::SimTime;
use unicore_store::{EventStore, ForeignOrigin, OwnerRecord, StoreError, StoreEvent};
use unicore_telemetry::{
    ActiveSpan, Counter, FlightRecorder, Histogram, SpanContext, Telemetry, DEFAULT_FLIGHT_CAPACITY,
};
use unicore_uspace::Vspace;

/// Xspace directory where incoming site-to-site transfers land.
pub const INCOMING_PREFIX: &str = "/unicore/incoming/";

/// One destination system managed by this NJS.
pub struct VsiteRuntime {
    /// The batch system.
    pub batch: BatchSystem,
    /// The Vsite's data space.
    pub vspace: Vspace,
    /// Site-configured translation table.
    pub table: TranslationTable,
    /// Published resource page.
    pub page: ResourcePage,
}

/// Work the NJS needs the federation layer to carry to a peer Usite.
pub enum OutgoingItem {
    /// A job group destined for another Usite.
    SubJob {
        /// The local parent job.
        parent: JobId,
        /// The node within the parent this sub-job fills.
        node: ActionId,
        /// The extracted, now-top-level AJO (portfolio populated with edge
        /// files and any workstation imports the subtree needs).
        ajo: AbstractJob,
        /// Uspace files the peer must return with the outcome (the files
        /// named on this node's outgoing dependency edges).
        return_files: Vec<String>,
    },
    /// A file push to another Usite's Vsite (lands in its incoming area).
    Transfer {
        /// The local job that produced the file.
        from_job: JobId,
        /// The transfer task's node id (for outcome completion).
        node: ActionId,
        /// Destination Vsite.
        to_vsite: VsiteAddress,
        /// Name at the destination.
        dest_name: String,
        /// The bytes, shared with the Uspace entry (cloning the item is a
        /// refcount bump; the chunking sender slices this in place).
        data: Arc<[u8]>,
        /// Whether the source file was world-readable; the receiver
        /// commits the delivered file with the same flag.
        world_readable: bool,
    },
}

/// Receiver-side bookkeeping for one incoming chunked transfer: the
/// dataplane state machine plus where its staged partial lives.
struct IncomingTransfer {
    state: ReceiverState,
    /// Xspace login owning the staged partial.
    login: String,
    /// Destination Vsite name within this Usite.
    vsite: String,
    /// Final Xspace path; the partial stages invisibly at the same path
    /// and flips visible atomically on commit.
    path: String,
}

/// Journal metadata a caller (the server layer) attaches to a consign.
///
/// The NJS writes it into the job's `JobConsigned` event so that a
/// recovered server can rebuild its idempotency index and its map of
/// jobs owed to remote parents.
#[derive(Debug, Default, Clone)]
pub struct ConsignMeta {
    /// Idempotency key identifying the consign request (empty = none).
    pub idem_key: Vec<u8>,
    /// Set when the job was consigned by a peer server on behalf of a
    /// remote parent job.
    pub foreign: Option<ForeignOrigin>,
    /// Trace context of the request that carried this consign, so the
    /// job's span tree hangs off the caller's trace. Not journalled:
    /// a recovered job starts a fresh trace.
    pub trace: Option<SpanContext>,
}

/// What [`Njs::recover`] rebuilt from the journal.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Jobs alive again after replay (consigned, not purged).
    pub jobs: Vec<JobId>,
    /// Idempotency keys of live jobs, for the server's dedup index.
    pub idem: Vec<(Vec<u8>, JobId)>,
    /// Live jobs owed to remote parents, with their origin bookkeeping.
    pub foreign: Vec<(JobId, ForeignOrigin)>,
    /// Whether the newest log segment ended in a torn record.
    pub torn_tail: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeState {
    Waiting,
    // The vsite name is shared (`Arc<str>`) so the per-step poll scan can
    // capture it without allocating a fresh String per poll.
    InBatch {
        vsite: Arc<str>,
        batch_id: BatchJobId,
    },
    ChildJob {
        child: JobId,
    },
    Remote,
    Terminal,
}

/// One in-flight node found by the per-step state scan, captured so the
/// polling pass can mutate `self` without re-walking the state map.
enum PollTarget {
    Batch {
        vsite: Arc<str>,
        batch_id: BatchJobId,
    },
    Child(JobId),
}

struct JobRuntime {
    job: AbstractJob,
    /// Precomputed predecessor adjacency for `job`'s top level: the step
    /// loop's dependency check borrows slices instead of allocating.
    preds: DependencyIndex,
    user: MappedUser,
    parent: Option<(JobId, ActionId)>,
    portfolio: Arc<HashMap<String, Arc<[u8]>>>,
    states: HashMap<ActionId, NodeState>,
    outcome: JobOutcome,
    held: bool,
    done: bool,
    consigned_at: SimTime,
    finished_at: Option<SimTime>,
    /// Open `njs.job` span, ended when the job completes.
    span: Option<ActiveSpan>,
    /// This job's trace context; parents all spans emitted on its behalf.
    trace: Option<SpanContext>,
}

impl JobRuntime {
    fn node_status(&self, id: ActionId) -> ActionStatus {
        self.outcome
            .child(id)
            .map(|n| n.status())
            .unwrap_or(ActionStatus::Pending)
    }

    fn set_task_outcome(&mut self, id: ActionId, outcome: TaskOutcome) {
        if let Some(node) = self.outcome.child_mut(id) {
            *node = OutcomeNode::Task(outcome);
        }
    }
}

/// The NJS for one Usite.
pub struct Njs {
    usite: String,
    vsites: HashMap<String, VsiteRuntime>,
    vsite_order: Vec<String>,
    jobs: HashMap<JobId, JobRuntime>,
    job_order: Vec<JobId>,
    next_job: u64,
    oracle: Box<dyn WorkOracle>,
    outbox: Vec<OutgoingItem>,
    /// Count of incarnations performed (metrics).
    incarnations: u64,
    /// Durable event journal (crash recovery), when attached.
    store: Option<EventStore>,
    /// Journalled events awaiting the next group commit. Non-consign
    /// events buffer here and go to the backend as ONE durable write at
    /// the end of the operation that produced them (`step`, abort,
    /// purge, remote completion); consign flushes synchronously because
    /// its record is the strict write-ahead one.
    pending: Vec<StoreEvent>,
    /// Per-step scratch (in-flight nodes to poll), kept on the NJS so
    /// steady-state stepping allocates nothing.
    poll_scratch: Vec<(ActionId, PollTarget)>,
    /// Per-step scratch (nodes waiting on predecessors).
    waiting_scratch: Vec<ActionId>,
    /// True while `recover` replays the journal, so replayed operations
    /// are not journalled a second time.
    recovering: bool,
    /// Last simulated time seen, used to stamp journal events emitted
    /// from state transitions that have no `now` parameter of their own.
    clock: SimTime,
    /// Telemetry handle; disabled by default.
    telemetry: Telemetry,
    metrics: NjsMetrics,
    /// Per-job lifecycle rings, attached to failing outcomes. Enabled
    /// together with telemetry; disabled is free.
    flight: FlightRecorder,
    /// Slow-dispatch watchdog: a consigned job with nothing dispatched
    /// after this long is flagged as stuck in the monitor report.
    watchdog_threshold: SimTime,
    /// Incoming chunked transfers, keyed by the sender's identity. Kept
    /// after completion so late re-offers and retransmitted chunks are
    /// acked as done instead of re-opening the transfer.
    incoming: HashMap<TransferKey, IncomingTransfer>,
    /// Times an incoming offer resumed from a non-zero journaled
    /// watermark instead of restarting at chunk zero.
    transfer_resumes: u64,
    /// Job-id allocation stride. A standalone NJS allocates 1, 2, 3…;
    /// shard k of an N-shard [`crate::ShardedNjs`] allocates k+1,
    /// k+1+N, k+1+2N… so ids never collide and `(id-1) % N` names the
    /// owning shard.
    job_stride: u64,
    /// Vsites owned by *sibling shards* of the same sharded NJS, mapped
    /// to the owning shard index. Work addressed to one of these is not
    /// remote (same Usite) but must cross a shard boundary, so it is
    /// emitted on `cross_tx` instead of being applied in place.
    siblings: HashMap<String, usize>,
    /// Channel to the sharded facade's merge phase. `None` when this
    /// NJS runs standalone.
    cross_tx: Option<Sender<CrossShardItem>>,
    /// Next-event heap over Vsite batch systems: `(next event time,
    /// vsite index, generation)`. `step` only advances Vsites whose
    /// next event is due, so idle Vsites cost nothing per tick.
    batch_heap: BinaryHeap<Reverse<(SimTime, usize, u64)>>,
    /// Per-Vsite heap-entry generation; stale heap entries (older
    /// generation) are skipped on pop.
    batch_gen: Vec<u64>,
    /// Vsite indices whose batch state changed outside the heap's view
    /// (submit, cancel, external mutation) and need re-keying.
    batch_dirty: Vec<usize>,
}

/// Default slow-dispatch watchdog threshold: a healthy NJS dispatches a
/// ready node on the very next step, so a minute of sitting fully
/// undispatched means the site is wedged, not busy.
pub const DEFAULT_WATCHDOG_THRESHOLD: SimTime = 60 * unicore_sim::SEC;

/// NJS counters/histograms, fetched once from the registry.
struct NjsMetrics {
    consigned: Counter,
    incarnations: Counter,
    completed: Counter,
    duration_us: Histogram,
    transfer_chunks: Counter,
    transfer_bytes: Counter,
    transfers_received: Counter,
}

impl Default for NjsMetrics {
    fn default() -> Self {
        NjsMetrics {
            consigned: Counter::detached(),
            incarnations: Counter::detached(),
            completed: Counter::detached(),
            duration_us: Histogram::detached(),
            transfer_chunks: Counter::detached(),
            transfer_bytes: Counter::detached(),
            transfers_received: Counter::detached(),
        }
    }
}

impl Njs {
    /// An NJS for `usite` with the default deterministic work oracle.
    pub fn new(usite: impl Into<String>) -> Self {
        Self::with_oracle(usite, Box::new(DeterministicOracle::default()))
    }

    /// An NJS with a custom work oracle.
    pub fn with_oracle(usite: impl Into<String>, oracle: Box<dyn WorkOracle>) -> Self {
        Njs {
            usite: usite.into(),
            vsites: HashMap::new(),
            vsite_order: Vec::new(),
            jobs: HashMap::new(),
            job_order: Vec::new(),
            next_job: 1,
            oracle,
            outbox: Vec::new(),
            incarnations: 0,
            store: None,
            pending: Vec::new(),
            poll_scratch: Vec::new(),
            waiting_scratch: Vec::new(),
            recovering: false,
            clock: 0,
            telemetry: Telemetry::disabled(),
            metrics: NjsMetrics::default(),
            flight: FlightRecorder::disabled(),
            watchdog_threshold: DEFAULT_WATCHDOG_THRESHOLD,
            incoming: HashMap::new(),
            transfer_resumes: 0,
            job_stride: 1,
            siblings: HashMap::new(),
            cross_tx: None,
            batch_heap: BinaryHeap::new(),
            batch_gen: Vec::new(),
            batch_dirty: Vec::new(),
        }
    }

    /// Configures strided job-id allocation: this NJS hands out
    /// `base, base+stride, base+2·stride, …`. Used by the sharded facade
    /// so shards allocate from disjoint id classes; a standalone NJS
    /// keeps the default `(1, 1)`.
    pub(crate) fn set_id_allocation(&mut self, base: u64, stride: u64) {
        debug_assert!(stride >= 1 && base >= 1 && base <= stride);
        self.next_job = base;
        self.job_stride = stride;
    }

    /// Registers a Vsite owned by a sibling shard, so work addressed to
    /// it is routed over the cross-shard channel instead of failing as
    /// an unknown Vsite.
    pub(crate) fn register_sibling(&mut self, vsite: impl Into<String>, shard: usize) {
        self.siblings.insert(vsite.into(), shard);
    }

    /// Wires the cross-shard effect channel to the sharded facade.
    pub(crate) fn set_cross_shard(&mut self, tx: Sender<CrossShardItem>) {
        self.cross_tx = Some(tx);
    }

    /// Emits a cross-shard effect for the facade's merge phase.
    fn cross_send(&self, item: CrossShardItem) {
        if let Some(tx) = &self.cross_tx {
            let _ = tx.send(item);
        }
    }

    /// Replaces the flight recorder. The sharded facade points every
    /// shard at one shared recorder so cross-shard job traces land in a
    /// single ring.
    pub(crate) fn set_flight(&mut self, flight: FlightRecorder) {
        self.flight = flight;
    }

    /// Wires this NJS (and its attached store and batch systems) to a
    /// telemetry handle. Jobs consigned from now on get `njs.job` spans;
    /// counters land in `telemetry`'s registry under `njs.*`,
    /// `store.wal.*`, and `batch.*`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.metrics = NjsMetrics {
            consigned: telemetry.counter("njs.consigned"),
            incarnations: telemetry.counter("njs.incarnations"),
            completed: telemetry.counter("njs.jobs.completed"),
            duration_us: telemetry.histogram("njs.job.duration.us"),
            transfer_chunks: telemetry.counter("dataplane.chunks.received"),
            transfer_bytes: telemetry.counter("dataplane.bytes.received"),
            transfers_received: telemetry.counter("dataplane.transfers.received"),
        };
        if let Some(store) = self.store.as_mut() {
            store.set_telemetry(&telemetry);
        }
        for name in &self.vsite_order {
            if let Some(v) = self.vsites.get_mut(name) {
                v.batch.set_telemetry(&telemetry);
            }
        }
        if telemetry.is_enabled() && !self.flight.is_enabled() {
            self.flight = FlightRecorder::bounded(DEFAULT_FLIGHT_CAPACITY);
        }
        self.telemetry = telemetry;
    }

    /// The flight recorder holding recent per-job lifecycle events.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Overrides the slow-dispatch watchdog threshold.
    pub fn set_watchdog_threshold(&mut self, threshold: SimTime) {
        self.watchdog_threshold = threshold;
    }

    /// Jobs flagged by the slow-dispatch watchdog at `now`, per Vsite:
    /// consigned, not held, and with **no** node dispatched yet after
    /// the threshold has elapsed — the signature of a wedged site rather
    /// than a busy one.
    pub fn stuck_jobs_by_vsite(&self, now: SimTime) -> HashMap<String, i64> {
        let mut stuck: HashMap<String, i64> = HashMap::new();
        for rt in self.jobs.values() {
            if rt.done || rt.held {
                continue;
            }
            if now.saturating_sub(rt.consigned_at) <= self.watchdog_threshold {
                continue;
            }
            if rt.states.values().all(|s| *s == NodeState::Waiting) {
                *stuck.entry(rt.job.vsite.vsite.clone()).or_default() += 1;
            }
        }
        stuck
    }

    /// WAL tail repairs performed by the attached store (0 without one).
    /// Surfaced separately from the metrics registry so the monitor
    /// report shows the repair even when telemetry was never enabled.
    pub fn wal_repairs(&self) -> u64 {
        self.store
            .as_ref()
            .map(|s| s.recovered_torn() as u64)
            .unwrap_or(0)
    }

    /// The Monitor service: this site's health report — a metrics
    /// snapshot (with the WAL repair counter overlaid), the span
    /// breakdown, and per-Vsite gauges including the slow-dispatch
    /// watchdog count.
    pub fn monitor_report(&self, now: SimTime) -> MonitorReport {
        let stuck = self.stuck_jobs_by_vsite(now);
        let total_stuck: i64 = stuck.values().sum();
        self.telemetry.gauge("njs.watchdog.stuck").set(total_stuck);
        let mut metrics = self.telemetry.metrics_snapshot();
        metrics
            .counters
            .insert("store.wal.repairs".into(), self.wal_repairs());
        let vsites = self
            .vsite_order
            .iter()
            .map(|name| {
                let v = &self.vsites[name];
                VsiteHealth {
                    vsite: name.clone(),
                    free_nodes: v.batch.free_nodes() as i64,
                    queue_length: v.batch.queue_length() as i64,
                    running: v.batch.running_count() as i64,
                    stuck_jobs: stuck.get(name).copied().unwrap_or(0),
                }
            })
            .collect();
        MonitorReport {
            usite: self.usite.clone(),
            metrics,
            spans: self.telemetry.breakdown(),
            vsites,
            epoch: None,
        }
    }

    /// The telemetry handle this NJS reports into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The trace context of a consigned job, if tracing was enabled when
    /// it arrived. The server stamps this onto outbound peer requests so
    /// remote sub-jobs continue the same trace.
    pub fn trace_of(&self, job: JobId) -> Option<SpanContext> {
        self.jobs.get(&job).and_then(|rt| rt.trace)
    }

    /// Attaches a durable event store. From now on every consign, node
    /// completion, job completion, and purge is journalled, and
    /// [`Njs::recover`] can rebuild the job table after a restart.
    pub fn attach_store(&mut self, mut store: EventStore) {
        // Only wire a live handle: attaching under the default disabled
        // telemetry would consume the store's once-only torn-tail repair
        // signal into a registry nobody reads.
        if self.telemetry.is_enabled() {
            store.set_telemetry(&self.telemetry);
        }
        self.store = Some(store);
    }

    /// The attached event store, for compaction and inspection.
    pub fn store_mut(&mut self) -> Option<&mut EventStore> {
        self.store.as_mut()
    }

    /// Whether a store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Journals an event (best-effort: a dead backend means the machine
    /// is going down anyway; consign's own write is the strict one).
    ///
    /// The event is buffered, not written: [`Njs::flush_events`] group
    /// commits everything an operation produced in one backend write.
    /// A crash before the flush loses the buffered tail as a unit —
    /// recovery then sees the same prefix a crash mid-write would leave,
    /// and re-dispatches the in-flight work.
    fn log_event(&mut self, event: StoreEvent) {
        if self.recovering || self.store.is_none() {
            return;
        }
        self.pending.push(event);
    }

    /// Group commits every buffered event as one durable backend write.
    /// Called at the end of each event-producing operation; best-effort
    /// like the individual appends it replaces.
    fn flush_events(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        if let Some(store) = self.store.as_mut() {
            let _ = store.append_batch(&self.pending);
        }
        self.pending.clear();
    }

    /// Journals a broker placement decision for a sub-job node and
    /// commits it at once: the decision must be durable *before* the
    /// forward leaves, so two runs of the same seed leave byte-identical
    /// placement trails even when one of them crashes mid-campaign.
    pub fn journal_placement(
        &mut self,
        job: JobId,
        node: ActionId,
        chosen: &str,
        excluded: &[String],
        attempt: u32,
    ) {
        self.log_event(StoreEvent::PlacementDecided {
            job,
            node,
            chosen: chosen.to_owned(),
            excluded: excluded.to_vec(),
            attempt,
            at: self.clock,
        });
        self.flush_events();
    }

    /// Journals a node's terminal outcome plus the files it deposited.
    fn log_terminal(&mut self, job: JobId, node: ActionId, files: Vec<(String, Vec<u8>)>) {
        if self.recovering || self.store.is_none() {
            return;
        }
        let Some(rt) = self.jobs.get(&job) else {
            return;
        };
        let Some(outcome) = rt.outcome.child(node) else {
            return;
        };
        let event = StoreEvent::TaskStateChanged {
            job,
            node,
            outcome_der: outcome.to_der(),
            files,
            at: self.clock,
        };
        self.log_event(event);
    }

    /// Journals a finished job's outcome tree and full uspace manifest.
    fn log_job_done(&mut self, job: JobId) {
        if self.recovering || self.store.is_none() {
            return;
        }
        let manifest = self.uspace_manifest(job);
        let Some(rt) = self.jobs.get(&job) else {
            return;
        };
        let event = StoreEvent::OutcomeStored {
            job,
            outcome_der: rt.outcome.to_der(),
            manifest,
            at: self.clock,
        };
        self.log_event(event);
    }

    /// What a just-finished file task deposited into the job's Uspace
    /// (successful Imports put one file there; Exports and Transfers
    /// write elsewhere).
    fn deposited_by_file_task(&self, job: JobId, node: ActionId) -> Vec<(String, Vec<u8>)> {
        if self.store.is_none() || self.recovering {
            return Vec::new();
        }
        let Some(rt) = self.jobs.get(&job) else {
            return Vec::new();
        };
        let Some(GraphNode::Task(task)) = rt.job.node(node) else {
            return Vec::new();
        };
        let TaskKind::File(FileKind::Import { uspace_name, .. }) = &task.kind else {
            return Vec::new();
        };
        if !rt.node_status(node).is_success() {
            return Vec::new();
        }
        let Some(v) = self.vsites.get(&rt.job.vsite.vsite) else {
            return Vec::new();
        };
        match v.vspace.read_for_transfer(job, uspace_name, &rt.user.login) {
            Ok(data) => vec![(uspace_name.clone(), data)],
            Err(_) => Vec::new(),
        }
    }

    /// Everything currently in the job's Uspace (name, contents).
    fn uspace_manifest(&self, job: JobId) -> Vec<(String, Vec<u8>)> {
        let Some(rt) = self.jobs.get(&job) else {
            return Vec::new();
        };
        let Some(v) = self.vsites.get(&rt.job.vsite.vsite) else {
            return Vec::new();
        };
        let Ok(fs) = v.vspace.uspace(job) else {
            return Vec::new();
        };
        fs.list("")
            .into_iter()
            .filter_map(|name| {
                v.vspace
                    .read_for_transfer(job, name, &rt.user.login)
                    .ok()
                    .map(|d| (name.to_owned(), d))
            })
            .collect()
    }

    /// This NJS's Usite name.
    pub fn usite(&self) -> &str {
        &self.usite
    }

    /// Registers a Vsite from its resource page and translation table.
    ///
    /// # Panics
    /// Panics if the page's Usite does not match this NJS.
    pub fn add_vsite(&mut self, page: ResourcePage, table: TranslationTable) {
        assert_eq!(page.vsite.usite, self.usite, "page Usite mismatch");
        let name = page.vsite.vsite.clone();
        let mut batch = BatchSystem::new(name.clone(), page.architecture, page.performance.nodes);
        // Every script the NJS submits comes from the translation tables;
        // strict dialect checking turns any mistranslation into a loud
        // submission error instead of a silently wrong job.
        batch.set_strict_dialect(true);
        if self.telemetry.is_enabled() {
            batch.set_telemetry(&self.telemetry);
        }
        self.vsites.insert(
            name.clone(),
            VsiteRuntime {
                batch,
                vspace: Vspace::new(),
                table,
                page,
            },
        );
        self.batch_gen.push(0);
        self.batch_dirty.push(self.vsite_order.len());
        self.vsite_order.push(name);
    }

    /// Names of the Vsites served here.
    pub fn vsite_names(&self) -> &[String] {
        &self.vsite_order
    }

    /// Access to a Vsite's runtime (tests, site administration).
    pub fn vsite_mut(&mut self, name: &str) -> Option<&mut VsiteRuntime> {
        // External mutation can change the batch timeline; re-key this
        // Vsite in the next-event heap on the next step.
        if let Some(idx) = self.vsite_order.iter().position(|n| n == name) {
            self.batch_dirty.push(idx);
        }
        self.vsites.get_mut(name)
    }

    /// Marks a Vsite's next-event heap entry stale after its batch
    /// state changed (submit, cancel).
    fn mark_batch_dirty(&mut self, name: &str) {
        if let Some(idx) = self.vsite_order.iter().position(|n| n == name) {
            self.batch_dirty.push(idx);
        }
    }

    /// Read access to a Vsite's runtime.
    pub fn vsite(&self, name: &str) -> Option<&VsiteRuntime> {
        self.vsites.get(name)
    }

    /// Total incarnations performed.
    pub fn incarnation_count(&self) -> u64 {
        self.incarnations
    }

    /// Consigns a top-level AJO for `user` at `now`.
    pub fn consign(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        now: SimTime,
    ) -> Result<JobId, NjsError> {
        self.consign_with_meta(job, user, now, ConsignMeta::default())
    }

    /// Consigns a top-level AJO with journal metadata attached.
    pub fn consign_with_meta(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        now: SimTime,
        meta: ConsignMeta,
    ) -> Result<JobId, NjsError> {
        job.validate()?;
        // The payload bytes are shared with the AJO: building the staged
        // map is a refcount bump per file, not a copy (the last full copy
        // on the consign admission path — now gone).
        let portfolio: HashMap<String, Arc<[u8]>> = job
            .portfolio
            .iter()
            .map(|p| (p.name.clone(), p.data.clone()))
            .collect();
        self.consign_internal(job, user, Arc::new(portfolio), Vec::new(), None, now, meta)
    }

    /// Consigns a job group arriving from a peer NJS (already mapped by
    /// this site's gateway). The AJO's portfolio carries edge files.
    pub fn consign_from_peer(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        now: SimTime,
    ) -> Result<JobId, NjsError> {
        self.consign_from_peer_with_meta(job, user, now, ConsignMeta::default())
    }

    /// Peer consign with journal metadata (origin bookkeeping, dedup key).
    pub fn consign_from_peer_with_meta(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        now: SimTime,
        meta: ConsignMeta,
    ) -> Result<JobId, NjsError> {
        // Peer-forwarded job groups carry their staged files as portfolio;
        // stage every portfolio file into the Uspace directly (files flow
        // along dependency edges, not via Import tasks). The payloads are
        // moved out of the AJO, not copied — one clone remains because the
        // journal (staged) and the runtime (portfolio) each own the bytes.
        job.validate()?;
        let mut job = job;
        let shared: Vec<(String, Arc<[u8]>)> = std::mem::take(&mut job.portfolio)
            .into_iter()
            .map(|p| (p.name, p.data))
            .collect();
        // The journal's staged record owns its bytes (the WAL cannot hold
        // refcounts); the runtime map shares the AJO payloads for free.
        let staged: Vec<(String, Vec<u8>)> = shared
            .iter()
            .map(|(n, d)| (n.clone(), d.to_vec()))
            .collect();
        let portfolio: HashMap<String, Arc<[u8]>> = shared.into_iter().collect();
        self.consign_internal(job, user, Arc::new(portfolio), staged, None, now, meta)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn consign_internal(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        portfolio: Arc<HashMap<String, Arc<[u8]>>>,
        staged: Vec<(String, Vec<u8>)>,
        parent: Option<(JobId, ActionId)>,
        now: SimTime,
        meta: ConsignMeta,
    ) -> Result<JobId, NjsError> {
        self.clock = self.clock.max(now);
        let parent_ctx = meta.trace;
        if job.vsite.usite != self.usite {
            return Err(NjsError::WrongUsite {
                wanted: job.vsite.usite.clone(),
                usite: self.usite.clone(),
            });
        }
        if !self.vsites.contains_key(&job.vsite.vsite) {
            return Err(NjsError::UnknownVsite {
                vsite: job.vsite.vsite.clone(),
                usite: self.usite.clone(),
            });
        }
        // Admission: every direct execute task against this job's page.
        let page = &self.vsites[&job.vsite.vsite].page;
        for (_, node) in &job.nodes {
            if let GraphNode::Task(task) = node {
                if task.is_execute() {
                    let violations = check_request(&task.resources, page);
                    if !violations.is_empty() {
                        return Err(NjsError::Admission {
                            task: task.name.clone(),
                            violations,
                        });
                    }
                }
            }
        }

        let id = JobId(self.next_job);
        self.next_job += self.job_stride;

        // Job directory with a quota covering declared disk + payloads.
        let disk_mb: u64 = job
            .nodes
            .iter()
            .filter_map(|(_, n)| match n {
                GraphNode::Task(t) => {
                    Some(t.resources.disk_permanent_mb + t.resources.disk_temporary_mb)
                }
                GraphNode::SubJob(_) => None,
            })
            .sum();
        let payload: u64 = portfolio.values().map(|d| d.len() as u64).sum::<u64>()
            + staged.iter().map(|(_, d)| d.len() as u64).sum::<u64>();
        let quota = disk_mb * 1_048_576 + payload + (64 << 20);
        let vspace = &mut self
            .vsites
            .get_mut(&job.vsite.vsite)
            .expect("checked above")
            .vspace;
        vspace.create_uspace(id, quota)?;
        for (name, data) in &staged {
            vspace.write_uspace_file(id, name, data.clone(), &user.login)?;
        }

        // Write-ahead: the job is only accepted once its consign record
        // is durable. A failed journal write rolls the admission back.
        // Any events buffered by the surrounding operation ride along in
        // the same group commit, keeping the journal in program order.
        let recovering = self.recovering;
        if let Some(store) = self.store.as_mut().filter(|_| !recovering) {
            let event = StoreEvent::JobConsigned {
                job: id,
                ajo_der: job.to_der(),
                user: OwnerRecord {
                    dn: user.dn.clone(),
                    login: user.login.clone(),
                    account_group: user.account_group.clone(),
                },
                staged,
                idem_key: meta.idem_key,
                parent,
                foreign: meta.foreign,
                at: now,
            };
            self.pending.push(event);
            let result = store.append_batch(&self.pending);
            self.pending.clear();
            if let Err(e) = result {
                if let Some(v) = self.vsites.get_mut(&job.vsite.vsite) {
                    let _ = v.vspace.destroy_uspace(id);
                }
                self.next_job -= self.job_stride;
                return Err(NjsError::Store(e));
            }
        }

        // Prime the outcome tree and node states.
        let mut outcome = JobOutcome {
            status: ActionStatus::Consigned,
            children: Vec::with_capacity(job.nodes.len()),
        };
        let mut states = HashMap::with_capacity(job.nodes.len());
        for (nid, node) in &job.nodes {
            let child = match node {
                GraphNode::Task(_) => OutcomeNode::Task(TaskOutcome::pending()),
                GraphNode::SubJob(_) => OutcomeNode::Job(JobOutcome {
                    status: ActionStatus::Pending,
                    children: Vec::new(),
                }),
            };
            outcome.children.push((*nid, child));
            states.insert(*nid, NodeState::Waiting);
        }

        // Replayed jobs do not restart spans or recount consigns: their
        // first life already did.
        let span = if self.recovering {
            None
        } else {
            self.metrics.consigned.inc();
            let mut sp = self.telemetry.span("njs.job", parent_ctx, now);
            sp.attr("job", id);
            sp.attr("vsite", &job.vsite.vsite);
            Some(sp)
        };
        let trace = span.as_ref().and_then(|s| s.ctx());
        if !self.recovering {
            self.flight.record(
                id.0,
                now,
                "njs.consign",
                format!("vsite {}", job.vsite.vsite),
            );
        }
        let preds = job.dependency_index();
        self.jobs.insert(
            id,
            JobRuntime {
                job,
                preds,
                user,
                parent,
                portfolio,
                states,
                outcome,
                held: false,
                done: false,
                consigned_at: now,
                finished_at: None,
                span,
                trace,
            },
        );
        self.job_order.push(id);
        Ok(id)
    }

    /// Replays the attached journal, rebuilding the job table as it was
    /// at the crash, then resumes dependency-ordered dispatch.
    ///
    /// Recovery semantics:
    /// * every `JobConsigned` job is re-admitted under its original
    ///   [`JobId`], with its Uspace re-created and staged inputs restored;
    /// * nodes with a journalled terminal outcome come back `Terminal`
    ///   with their outcome and deposited files intact — they are **never
    ///   re-submitted to batch**;
    /// * finished jobs come back `done` with their outcome tree and full
    ///   Uspace manifest, ready for the client to poll and fetch;
    /// * purged jobs stay gone;
    /// * nodes that were in flight (queued or running in batch, which
    ///   died with the machine) reset to `Waiting` and are re-dispatched
    ///   by the next [`Njs::step`];
    /// * local parent–child links are re-wired so sub-job polling
    ///   continues where it left off.
    ///
    /// Call after the Vsites are registered and the store is attached,
    /// before the first `step`. A missing store recovers nothing.
    pub fn recover(&mut self, now: SimTime) -> Result<RecoveryReport, NjsError> {
        let Some(store) = &self.store else {
            return Ok(RecoveryReport::default());
        };
        let replay = store.replay().map_err(NjsError::Store)?;
        self.clock = self.clock.max(now);
        self.recovering = true;
        let orig_next = self.next_job;
        let mut max_job = 0u64;
        let mut report = RecoveryReport {
            // The open() repair already trimmed a torn tail if there was
            // one; surface either signal to the caller.
            torn_tail: replay.torn_tail || store.recovered_torn(),
            ..RecoveryReport::default()
        };
        // (child, parent job, parent node) links to re-wire afterwards.
        let mut links: Vec<(JobId, JobId, ActionId)> = Vec::new();

        let result = (|| -> Result<(), NjsError> {
            for event in &replay.events {
                match event {
                    StoreEvent::JobConsigned {
                        job,
                        ajo_der,
                        user,
                        staged,
                        idem_key,
                        parent,
                        foreign,
                        at,
                    } => {
                        let ajo = AbstractJob::from_der(ajo_der)
                            .map_err(|e| NjsError::Store(StoreError::Codec(e)))?;
                        let mapped = MappedUser {
                            dn: user.dn.clone(),
                            login: user.login.clone(),
                            account_group: user.account_group.clone(),
                        };
                        // Child jobs share their parent's portfolio (the
                        // parent was consigned earlier in the log); others
                        // rebuild it from the AJO and the staged files.
                        let portfolio: Arc<HashMap<String, Arc<[u8]>>> = match parent {
                            Some((pjob, _)) => self
                                .jobs
                                .get(pjob)
                                .map(|p| p.portfolio.clone())
                                .unwrap_or_default(),
                            None => {
                                let mut m: HashMap<String, Arc<[u8]>> = ajo
                                    .portfolio
                                    .iter()
                                    .map(|p| (p.name.clone(), p.data.clone()))
                                    .collect();
                                for (name, data) in staged {
                                    m.insert(name.clone(), data.as_slice().into());
                                }
                                Arc::new(m)
                            }
                        };
                        self.next_job = job.0;
                        let got = self.consign_internal(
                            ajo,
                            mapped,
                            portfolio,
                            staged.clone(),
                            *parent,
                            *at,
                            ConsignMeta::default(),
                        )?;
                        debug_assert_eq!(got, *job, "journal replay must keep job ids");
                        max_job = max_job.max(job.0);
                        report.jobs.push(*job);
                        if !idem_key.is_empty() {
                            report.idem.push((idem_key.clone(), *job));
                        }
                        if let Some(f) = foreign {
                            report.foreign.push((*job, f.clone()));
                        }
                        if let Some((pjob, pnode)) = parent {
                            links.push((*job, *pjob, *pnode));
                        }
                    }
                    // Incarnations are informational: in-flight batch work
                    // died with the machine and is re-dispatched fresh.
                    StoreEvent::JobIncarnated { .. } => {}
                    // Placements likewise: a restarted server re-derives
                    // them from the same seed; the journal is the audit
                    // trail the determinism tests compare.
                    StoreEvent::PlacementDecided { .. } => {}
                    StoreEvent::TaskStateChanged {
                        job,
                        node,
                        outcome_der,
                        files,
                        ..
                    } => {
                        let outcome = OutcomeNode::from_der(outcome_der)
                            .map_err(|e| NjsError::Store(StoreError::Codec(e)))?;
                        if let Some(rt) = self.jobs.get_mut(job) {
                            if let Some(slot) = rt.outcome.child_mut(*node) {
                                *slot = outcome;
                            }
                            rt.states.insert(*node, NodeState::Terminal);
                            let (vsite, login) =
                                (rt.job.vsite.vsite.clone(), rt.user.login.clone());
                            if let Some(v) = self.vsites.get_mut(&vsite) {
                                for (name, data) in files {
                                    let _ = v.vspace.write_uspace_file(
                                        *job,
                                        name,
                                        data.clone(),
                                        &login,
                                    );
                                }
                            }
                        }
                    }
                    StoreEvent::OutcomeStored {
                        job,
                        outcome_der,
                        manifest,
                        at,
                    } => {
                        let outcome = JobOutcome::from_der(outcome_der)
                            .map_err(|e| NjsError::Store(StoreError::Codec(e)))?;
                        if let Some(rt) = self.jobs.get_mut(job) {
                            rt.outcome = outcome;
                            let ids: Vec<ActionId> = rt.states.keys().copied().collect();
                            for nid in ids {
                                rt.states.insert(nid, NodeState::Terminal);
                            }
                            rt.done = true;
                            rt.finished_at = Some(*at);
                            let (vsite, login) =
                                (rt.job.vsite.vsite.clone(), rt.user.login.clone());
                            if let Some(v) = self.vsites.get_mut(&vsite) {
                                for (name, data) in manifest {
                                    let _ = v.vspace.write_uspace_file(
                                        *job,
                                        name,
                                        data.clone(),
                                        &login,
                                    );
                                }
                            }
                        }
                    }
                    StoreEvent::TransferOpened {
                        manifest_der,
                        login,
                        ..
                    } => {
                        let manifest = TransferManifest::from_der(manifest_der)
                            .map_err(|e| NjsError::Store(StoreError::Codec(e)))?;
                        let key = manifest.key();
                        let path = format!("{INCOMING_PREFIX}{}", manifest.dest_name);
                        let vsite = manifest.to_vsite.vsite.clone();
                        if let Some(v) = self.vsites.get_mut(&vsite) {
                            let _ =
                                v.vspace
                                    .xspace()
                                    .begin_partial(&path, manifest.total_len, login);
                            self.incoming.insert(
                                key.clone(),
                                IncomingTransfer {
                                    state: ReceiverState::new(manifest),
                                    login: login.clone(),
                                    vsite,
                                    path,
                                },
                            );
                            // A zero-length transfer is complete at open.
                            if self.incoming[&key].state.is_complete() {
                                let _ = self.finalize_incoming(&key);
                            }
                        }
                    }
                    StoreEvent::TransferChunkStored {
                        origin,
                        origin_job,
                        origin_node,
                        index,
                        data,
                        ..
                    } => {
                        let key = TransferKey {
                            origin: origin.clone(),
                            origin_job: *origin_job,
                            origin_node: *origin_node,
                        };
                        let Some(entry) = self.incoming.get_mut(&key) else {
                            continue;
                        };
                        if entry.state.is_received(*index) {
                            continue;
                        }
                        let offset = entry.state.manifest().chunk_range(*index).start as u64;
                        let (vsite, path, login) =
                            (entry.vsite.clone(), entry.path.clone(), entry.login.clone());
                        if let Some(v) = self.vsites.get_mut(&vsite) {
                            // Bytes were verified against the manifest
                            // before being journalled; replay trusts them.
                            let _ = v.vspace.xspace().write_partial(&path, offset, data, &login);
                            let entry = self.incoming.get_mut(&key).expect("inserted above");
                            entry.state.mark_received(*index);
                            if entry.state.is_complete() {
                                let _ = self.finalize_incoming(&key);
                            }
                        }
                    }
                    StoreEvent::JobPurged { job, .. } => {
                        if let Some(rt) = self.jobs.remove(job) {
                            if let Some(v) = self.vsites.get_mut(&rt.job.vsite.vsite) {
                                let _ = v.vspace.destroy_uspace(*job);
                            }
                            self.job_order.retain(|j| j != job);
                        }
                        report.jobs.retain(|j| j != job);
                        report.idem.retain(|(_, j)| j != job);
                        report.foreign.retain(|(j, _)| j != job);
                    }
                }
            }
            Ok(())
        })();

        // Re-wire surviving parent→child links so the parents poll their
        // children instead of re-consigning them.
        for (child, pjob, pnode) in links {
            if !self.jobs.contains_key(&child) {
                continue;
            }
            if let Some(parent_rt) = self.jobs.get_mut(&pjob) {
                if parent_rt.states.get(&pnode) != Some(&NodeState::Terminal) {
                    parent_rt
                        .states
                        .insert(pnode, NodeState::ChildJob { child });
                }
            }
        }
        // Resume allocation after the highest replayed id, staying in
        // this NJS's id class (replayed ids share its base and stride).
        self.next_job = if max_job == 0 {
            orig_next
        } else {
            orig_next.max(max_job + self.job_stride)
        };
        self.recovering = false;
        result?;
        Ok(report)
    }

    /// Earliest future event (batch completion or crash recovery) across
    /// this NJS's Vsites.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.vsites
            .values()
            .filter_map(|v| v.batch.next_event_time())
            .min()
    }

    /// Re-keys dirty Vsites in the next-event heap, then advances every
    /// Vsite whose next batch event is due at `now`. Idle Vsites (no
    /// queued or running work, no pending recovery) have no heap entry
    /// and cost nothing — the point of the heap at 100-site scale.
    fn advance_batches(&mut self, now: SimTime) {
        // Re-key Vsites whose batch state changed since the last step.
        while let Some(idx) = self.batch_dirty.pop() {
            let name = &self.vsite_order[idx];
            let batch = &self.vsites[name].batch;
            self.batch_gen[idx] += 1;
            if let Some(t) = batch.next_event_time() {
                self.batch_heap.push(Reverse((t, idx, self.batch_gen[idx])));
            }
        }
        // Pop due events; each advance can schedule the next one.
        while let Some(&Reverse((t, idx, gen))) = self.batch_heap.peek() {
            if t > now {
                break;
            }
            self.batch_heap.pop();
            if gen != self.batch_gen[idx] {
                continue; // stale entry, superseded by a re-key
            }
            let name = &self.vsite_order[idx];
            let batch = &mut self.vsites.get_mut(name).expect("known vsite").batch;
            batch.advance_to(now);
            self.batch_gen[idx] += 1;
            if let Some(next) = batch.next_event_time() {
                self.batch_heap
                    .push(Reverse((next, idx, self.batch_gen[idx])));
            }
        }
    }

    /// Drives all jobs forward to `now`. Call repeatedly as time advances.
    pub fn step(&mut self, now: SimTime) {
        self.clock = self.clock.max(now);
        self.advance_batches(now);
        // Instantaneous operations (staging, dispatch of freed nodes) can
        // cascade; iterate to a fixpoint. Each pass covers the jobs that
        // existed when it started (children consigned mid-pass are picked
        // up by the next pass, as before), indexed to avoid cloning the
        // whole order every iteration.
        loop {
            let mut progressed = false;
            let jobs_at_start = self.job_order.len();
            for i in 0..jobs_at_start {
                let id = self.job_order[i];
                progressed |= self.step_job(id, now);
            }
            if !progressed {
                break;
            }
        }
        self.flush_events();
    }

    fn step_job(&mut self, id: JobId, now: SimTime) -> bool {
        // One pass over the node states classifies everything; the common
        // no-progress call allocates nothing (the scratch vectors keep
        // their capacity across steps).
        let mut poll = std::mem::take(&mut self.poll_scratch);
        let mut waiting = std::mem::take(&mut self.waiting_scratch);
        poll.clear();
        waiting.clear();
        let (held, all_terminal) = {
            let Some(rt) = self.jobs.get(&id) else {
                self.poll_scratch = poll;
                self.waiting_scratch = waiting;
                return false;
            };
            if rt.done {
                self.poll_scratch = poll;
                self.waiting_scratch = waiting;
                return false;
            }
            let mut all_terminal = true;
            for (nid, _) in &rt.job.nodes {
                match rt.states.get(nid) {
                    Some(NodeState::Terminal) => {}
                    Some(NodeState::Waiting) => {
                        waiting.push(*nid);
                        all_terminal = false;
                    }
                    Some(NodeState::InBatch { vsite, batch_id }) => {
                        poll.push((
                            *nid,
                            PollTarget::Batch {
                                vsite: vsite.clone(),
                                batch_id: *batch_id,
                            },
                        ));
                        all_terminal = false;
                    }
                    Some(NodeState::ChildJob { child }) => {
                        poll.push((*nid, PollTarget::Child(*child)));
                        all_terminal = false;
                    }
                    Some(NodeState::Remote) | None => all_terminal = false,
                }
            }
            (rt.held, all_terminal)
        };
        let mut progressed = false;

        // 1. Poll in-flight batch tasks and children.
        for (nid, target) in poll.drain(..) {
            match target {
                PollTarget::Batch { vsite, batch_id } => {
                    progressed |= self.poll_batch_node(id, nid, &vsite, batch_id);
                }
                PollTarget::Child(child) => {
                    progressed |= self.poll_child_node(id, nid, child);
                }
            }
        }

        // 2. Dispatch ready nodes (unless held). States are re-read live,
        //    so a node whose last predecessor completed in the poll above
        //    dispatches within this same step.
        if !held {
            for &nid in &waiting {
                let rt = self.jobs.get(&id).expect("job exists");
                if rt.states.get(&nid) != Some(&NodeState::Waiting) {
                    continue;
                }
                let preds = rt.preds.predecessors(nid);
                let mut ready = true;
                let mut any_failed = false;
                for p in preds {
                    if rt.states.get(p) != Some(&NodeState::Terminal) {
                        ready = false;
                        break;
                    }
                    any_failed |= !rt.node_status(*p).is_success();
                }
                if !ready {
                    continue;
                }
                if any_failed {
                    self.flight.record(
                        id.0,
                        now,
                        "njs.kill",
                        format!("node {}: predecessor failed", nid.0),
                    );
                    let rt = self.jobs.get_mut(&id).expect("job exists");
                    rt.states.insert(nid, NodeState::Terminal);
                    match rt.outcome.child_mut(nid) {
                        Some(OutcomeNode::Task(t)) => {
                            t.status = ActionStatus::Killed;
                            t.message = "predecessor failed".into();
                            t.flight = self.flight.trace(id.0);
                        }
                        Some(OutcomeNode::Job(j)) => j.status = ActionStatus::Killed,
                        None => {}
                    }
                    self.log_terminal(id, nid, Vec::new());
                    progressed = true;
                } else {
                    progressed |= self.dispatch_node(id, nid, now);
                }
            }
        }
        waiting.clear();
        self.poll_scratch = poll;
        self.waiting_scratch = waiting;

        // 3. Completion check — only when something changed this step or
        //    every node was already terminal (a node finished externally,
        //    e.g. a remote completion, between steps); an idle job's
        //    aggregate cannot have changed.
        if progressed || all_terminal {
            let rt = self.jobs.get_mut(&id).expect("job exists");
            rt.outcome.aggregate_status();
            let finished = !rt.done && rt.states.values().all(|s| *s == NodeState::Terminal);
            if finished {
                rt.done = true;
                rt.finished_at = Some(now);
                let consigned_at = rt.consigned_at;
                let span = rt.span.take();
                progressed = true;
                self.log_job_done(id);
                self.metrics.completed.inc();
                self.metrics
                    .duration_us
                    .record(now.saturating_sub(consigned_at));
                if let Some(span) = span {
                    self.telemetry.end(span, now);
                }
            }
        }
        progressed
    }

    fn poll_batch_node(
        &mut self,
        job: JobId,
        node: ActionId,
        vsite: &str,
        batch_id: BatchJobId,
    ) -> bool {
        // The overwhelmingly common poll sees a still-queued or running
        // batch job and changes nothing; classify by reference first so
        // that path clones neither status, accounting, nor telemetry.
        enum Seen {
            Queued,
            Running,
            Completed,
            Cancelled,
            Gone,
        }
        let seen = match self
            .vsites
            .get(vsite)
            .expect("known vsite")
            .batch
            .status(batch_id)
        {
            Some(BatchStatus::Queued) | Some(BatchStatus::Held) => Seen::Queued,
            Some(BatchStatus::Running { .. }) => Seen::Running,
            Some(BatchStatus::Completed(_)) => Seen::Completed,
            Some(BatchStatus::Cancelled) => Seen::Cancelled,
            None => Seen::Gone,
        };
        match seen {
            Seen::Gone => return false,
            Seen::Queued => {
                let rt = self.jobs.get_mut(&job).expect("job exists");
                if rt.node_status(node) != ActionStatus::Queued {
                    if let Some(OutcomeNode::Task(t)) = rt.outcome.child_mut(node) {
                        t.status = ActionStatus::Queued;
                        return true;
                    }
                }
                return false;
            }
            Seen::Running => {
                let rt = self.jobs.get_mut(&job).expect("job exists");
                if rt.node_status(node) != ActionStatus::Running {
                    if let Some(OutcomeNode::Task(t)) = rt.outcome.child_mut(node) {
                        t.status = ActionStatus::Running;
                        self.flight.record(
                            job.0,
                            self.clock,
                            "batch.running",
                            format!("node {} on {vsite}", node.0),
                        );
                        return true;
                    }
                }
                return false;
            }
            Seen::Completed | Seen::Cancelled => {}
        }
        let (status, acct) = {
            let v = self.vsites.get(vsite).expect("known vsite");
            (
                v.batch.status(batch_id).cloned(),
                v.batch.accounting_for(batch_id).cloned(),
            )
        };
        let tel = self.telemetry.clone();
        let rt = self.jobs.get_mut(&job).expect("job exists");
        match status {
            Some(BatchStatus::Queued)
            | Some(BatchStatus::Held)
            | Some(BatchStatus::Running { .. }) => false,
            Some(BatchStatus::Completed(c)) => {
                // Retroactive spans from the accounting record: the batch
                // tier is clock-passive, so queue wait and run time are
                // only knowable once the job has finished.
                if let Some(a) = &acct {
                    let parent = rt.trace;
                    tel.emit("batch.queue", parent, a.submitted_at, a.started_at);
                    tel.emit("batch.run", parent, a.started_at, a.ended_at);
                }
                let status = if c.is_success() {
                    ActionStatus::Successful
                } else {
                    ActionStatus::NotSuccessful
                };
                self.flight.record(
                    job.0,
                    self.clock,
                    "batch.exit",
                    format!(
                        "node {} exit code {}{}{}",
                        node.0,
                        c.exit_code,
                        if c.timed_out {
                            " (wall clock limit exceeded)"
                        } else {
                            ""
                        },
                        match std::str::from_utf8(&c.stderr) {
                            Ok(s) if !s.trim().is_empty() =>
                                format!(": {}", s.lines().next().unwrap_or("")),
                            _ => String::new(),
                        },
                    ),
                );
                let outcome = TaskOutcome {
                    status,
                    exit_code: Some(c.exit_code),
                    stdout: c.stdout.clone(),
                    stderr: c.stderr.clone(),
                    bytes_staged: 0,
                    message: if c.timed_out {
                        "wall clock limit exceeded".into()
                    } else {
                        String::new()
                    },
                    // A failing exit ships the job's recent lifecycle
                    // with the result, so the JMC can explain the red.
                    flight: if c.is_success() {
                        Vec::new()
                    } else {
                        self.flight.trace(job.0)
                    },
                };
                let login = rt.user.login.clone();
                rt.set_task_outcome(node, outcome);
                rt.states.insert(node, NodeState::Terminal);
                // Deposit output files into the job's Uspace.
                let journal = self.store.is_some() && !self.recovering;
                let mut deposited: Vec<(String, Vec<u8>)> = Vec::new();
                let vspace = &mut self.vsites.get_mut(vsite).expect("known vsite").vspace;
                for (name, data) in c.output_files {
                    let keep = journal.then(|| data.clone());
                    // Quota overflow turns the task's result into failure.
                    if vspace.write_uspace_file(job, &name, data, &login).is_err() {
                        self.flight.record(
                            job.0,
                            self.clock,
                            "njs.quota",
                            format!("node {}: output {name} exceeded job disk quota", node.0),
                        );
                        let rt = self.jobs.get_mut(&job).expect("job exists");
                        if let Some(OutcomeNode::Task(t)) = rt.outcome.child_mut(node) {
                            t.status = ActionStatus::NotSuccessful;
                            t.message = "output exceeded job disk quota".into();
                            t.flight = self.flight.trace(job.0);
                        }
                    } else if let Some(data) = keep {
                        deposited.push((name, data));
                    }
                }
                self.log_terminal(job, node, deposited);
                true
            }
            Some(BatchStatus::Cancelled) => {
                self.flight.record(
                    job.0,
                    self.clock,
                    "batch.cancelled",
                    format!("node {} on {vsite}", node.0),
                );
                rt.set_task_outcome(
                    node,
                    TaskOutcome {
                        status: ActionStatus::Killed,
                        message: "cancelled".into(),
                        flight: self.flight.trace(job.0),
                        ..Default::default()
                    },
                );
                rt.states.insert(node, NodeState::Terminal);
                self.log_terminal(job, node, Vec::new());
                true
            }
            None => false,
        }
    }

    fn poll_child_node(&mut self, job: JobId, node: ActionId, child: JobId) -> bool {
        let (done, child_outcome) = match self.jobs.get(&child) {
            Some(c) if c.done => (true, c.outcome.clone()),
            Some(c) => (false, c.outcome.clone()),
            None => return false,
        };
        let rt = self.jobs.get_mut(&job).expect("job exists");
        let changed = match rt.outcome.child(node) {
            Some(OutcomeNode::Job(j)) => *j != child_outcome,
            _ => true,
        };
        if changed {
            if let Some(slot) = rt.outcome.child_mut(node) {
                *slot = OutcomeNode::Job(child_outcome);
            }
        }
        if done {
            rt.states.insert(node, NodeState::Terminal);
            // Pull the files named on this node's outgoing edges from the
            // child's Uspace into the parent's, so successors can use them
            // ("UNICORE then guarantees that the specified data sets
            // created by the predecessor are available to the successor").
            let mut wanted: Vec<String> = Vec::new();
            for dep in &rt.job.dependencies {
                if dep.from == node {
                    for f in &dep.files {
                        if !wanted.contains(f) {
                            wanted.push(f.clone());
                        }
                    }
                }
            }
            let mut pulled: Vec<(String, Vec<u8>)> = Vec::new();
            if !wanted.is_empty() {
                let parent_vsite = rt.job.vsite.vsite.clone();
                let login = rt.user.login.clone();
                let child_vsite = self
                    .jobs
                    .get(&child)
                    .map(|c| c.job.vsite.vsite.clone())
                    .expect("child exists");
                for name in wanted {
                    let data = self
                        .vsites
                        .get(&child_vsite)
                        .and_then(|v| v.vspace.read_for_transfer(child, &name, &login).ok());
                    if let Some(data) = data {
                        if let Some(v) = self.vsites.get_mut(&parent_vsite) {
                            if v.vspace
                                .write_uspace_file(job, &name, data.clone(), &login)
                                .is_ok()
                            {
                                pulled.push((name, data));
                            }
                        }
                    }
                }
            }
            self.log_terminal(job, node, pulled);
            return true;
        }
        changed
    }

    fn dispatch_node(&mut self, job: JobId, node: ActionId, now: SimTime) -> bool {
        let rt = self.jobs.get(&job).expect("job exists");
        let graph_node = rt.job.node(node).expect("node exists").clone();
        match graph_node {
            GraphNode::Task(task) => match &task.kind {
                TaskKind::Execute(kind) => {
                    let vsite_name = rt.job.vsite.vsite.clone();
                    let login = rt.user.login.clone();
                    let trace = rt.trace;
                    let tel = self.telemetry.clone();
                    let mut ispan = tel.span("njs.incarnate", trace, now);
                    ispan.attr("task", &task.name);
                    ispan.attr("vsite", &vsite_name);
                    let vsite_idx = self.vsite_order.iter().position(|n| n == &vsite_name);
                    let v = self.vsites.get_mut(&vsite_name).expect("known vsite");
                    let time_limit = unicore_sim::secs(task.resources.run_time_secs);
                    // Standard site policy: short jobs go express — unless
                    // they are too wide for the express class's width cap.
                    let mut queue = unicore_batch::QueueClass::for_time_limit(time_limit);
                    let express_width = (v.page.performance.nodes / 4).max(1);
                    if queue == unicore_batch::QueueClass::Express
                        && task.resources.processors > express_width
                    {
                        queue = unicore_batch::QueueClass::Batch;
                    }
                    let script = crate::translation::incarnate_execute_in_queue(
                        &v.table,
                        kind,
                        &task.resources,
                        &login,
                        &job.to_string(),
                        queue.name(),
                    );
                    self.incarnations += 1;
                    self.metrics.incarnations.inc();
                    let work = self.oracle.work_for(&task, &task.resources);
                    let spec = BatchJobSpec {
                        name: task.name.clone(),
                        owner: login,
                        script,
                        processors: task.resources.processors,
                        time_limit,
                        memory_mb: task.resources.memory_mb,
                        queue,
                        work,
                    };
                    let queue_name = spec.queue.name();
                    match v.batch.submit(spec, now) {
                        Ok(batch_id) => {
                            let target = format!("{vsite_name}:{queue_name}");
                            self.flight.record(
                                job.0,
                                now,
                                "njs.dispatch",
                                format!("node {} -> {target}", node.0),
                            );
                            let rt = self.jobs.get_mut(&job).expect("job exists");
                            rt.states.insert(
                                node,
                                NodeState::InBatch {
                                    vsite: vsite_name.into(),
                                    batch_id,
                                },
                            );
                            if let Some(OutcomeNode::Task(t)) = rt.outcome.child_mut(node) {
                                t.status = ActionStatus::Queued;
                            }
                            self.log_event(StoreEvent::JobIncarnated {
                                job,
                                node,
                                target,
                                at: self.clock,
                            });
                        }
                        Err(e) => {
                            self.flight
                                .record(job.0, now, "njs.dispatch.error", e.to_string());
                            let mut failed = TaskOutcome::failure(e.to_string());
                            failed.flight = self.flight.trace(job.0);
                            let rt = self.jobs.get_mut(&job).expect("job exists");
                            rt.set_task_outcome(node, failed);
                            rt.states.insert(node, NodeState::Terminal);
                            self.log_terminal(job, node, Vec::new());
                        }
                    }
                    // The submit changed this Vsite's batch timeline;
                    // re-key it in the next-event heap.
                    if let Some(idx) = vsite_idx {
                        self.batch_dirty.push(idx);
                    }
                    // Incarnation is instantaneous in simulated time; the
                    // span's wall-clock side still measures translation
                    // plus submission cost.
                    tel.end(ispan, now);
                    true
                }
                TaskKind::File(file_kind) => {
                    let outcome = self.run_file_task(job, node, file_kind);
                    match outcome {
                        FileTaskResult::Done(mut o) => {
                            if !o.status.is_success() {
                                self.flight.record(
                                    job.0,
                                    now,
                                    "njs.file.error",
                                    format!("node {}: {}", node.0, o.message),
                                );
                                o.flight = self.flight.trace(job.0);
                            }
                            let rt = self.jobs.get_mut(&job).expect("job exists");
                            rt.set_task_outcome(node, o);
                            rt.states.insert(node, NodeState::Terminal);
                            let deposited = self.deposited_by_file_task(job, node);
                            self.log_terminal(job, node, deposited);
                        }
                        FileTaskResult::Remote => {
                            let rt = self.jobs.get_mut(&job).expect("job exists");
                            if let Some(OutcomeNode::Task(t)) = rt.outcome.child_mut(node) {
                                t.status = ActionStatus::Running;
                            }
                            rt.states.insert(node, NodeState::Remote);
                        }
                    }
                    true
                }
            },
            GraphNode::SubJob(sub) => {
                self.dispatch_subjob(job, node, sub, now);
                true
            }
        }
    }

    fn dispatch_subjob(&mut self, job: JobId, node: ActionId, sub: AbstractJob, now: SimTime) {
        // Gather edge files from predecessors out of the parent's Uspace.
        let (staged, user, portfolio, parent_vsite, parent_trace) = {
            let rt = self.jobs.get(&job).expect("job exists");
            let mut staged: Vec<(String, Vec<u8>)> = Vec::new();
            for &pred in rt.preds.predecessors(node) {
                for file in rt.job.edge_files(pred, node) {
                    let data = self
                        .vsites
                        .get(&rt.job.vsite.vsite)
                        .expect("known vsite")
                        .vspace
                        .read_for_transfer(job, file, &rt.user.login);
                    if let Ok(data) = data {
                        staged.push((file.clone(), data));
                    }
                }
            }
            (
                staged,
                rt.user.clone(),
                rt.portfolio.clone(),
                rt.job.vsite.vsite.clone(),
                rt.trace,
            )
        };
        let _ = parent_vsite;

        if sub.vsite.usite == self.usite {
            if let Some(&shard) = self.siblings.get(&sub.vsite.vsite) {
                // A sibling shard of the same Usite owns the target
                // Vsite: hand the child over on the cross-shard channel;
                // the facade's merge phase consigns it there and wires
                // the parent link back deterministically.
                self.flight.record(
                    job.0,
                    now,
                    "njs.forward",
                    format!("node {} -> shard {shard}", node.0),
                );
                self.cross_send(CrossShardItem::ConsignChild {
                    parent: job,
                    node,
                    shard,
                    ajo: Box::new(sub),
                    staged,
                    user,
                    portfolio,
                    trace: parent_trace,
                });
                let rt = self.jobs.get_mut(&job).expect("job exists");
                if let Some(OutcomeNode::Job(j)) = rt.outcome.child_mut(node) {
                    j.status = ActionStatus::Consigned;
                }
                rt.states.insert(node, NodeState::Remote);
                return;
            }
            // Local child at (possibly) another Vsite of this Usite.
            match self.consign_internal(
                sub,
                user,
                portfolio,
                staged,
                Some((job, node)),
                now,
                ConsignMeta {
                    trace: parent_trace,
                    ..ConsignMeta::default()
                },
            ) {
                Ok(child) => {
                    let rt = self.jobs.get_mut(&job).expect("job exists");
                    rt.states.insert(node, NodeState::ChildJob { child });
                }
                Err(e) => {
                    let rt = self.jobs.get_mut(&job).expect("job exists");
                    if let Some(OutcomeNode::Job(j)) = rt.outcome.child_mut(node) {
                        j.status = ActionStatus::NotSuccessful;
                    }
                    rt.states.insert(node, NodeState::Terminal);
                    self.log_terminal(job, node, Vec::new());
                    let _ = e;
                }
            }
        } else {
            // Remote job group: extract as a top-level AJO whose portfolio
            // carries the edge files plus any workstation imports its
            // subtree references.
            let mut ajo = sub;
            let mut carried: Vec<(String, Vec<u8>)> = staged;
            collect_workstation_imports(&ajo, &portfolio, &mut carried);
            ajo.portfolio = carried
                .into_iter()
                .map(|(name, data)| unicore_ajo::PortfolioFile {
                    name,
                    data: data.into(),
                })
                .collect();
            let return_files = {
                let rt = self.jobs.get(&job).expect("job exists");
                let mut files: Vec<String> = Vec::new();
                for dep in &rt.job.dependencies {
                    if dep.from == node {
                        for f in &dep.files {
                            if !files.contains(f) {
                                files.push(f.clone());
                            }
                        }
                    }
                }
                files
            };
            let dest_usite = ajo.vsite.usite.clone();
            self.flight.record(
                job.0,
                now,
                "njs.forward",
                format!("node {} -> usite {dest_usite}", node.0),
            );
            self.outbox.push(OutgoingItem::SubJob {
                parent: job,
                node,
                ajo,
                return_files,
            });
            let rt = self.jobs.get_mut(&job).expect("job exists");
            if let Some(OutcomeNode::Job(j)) = rt.outcome.child_mut(node) {
                j.status = ActionStatus::Consigned;
            }
            rt.states.insert(node, NodeState::Remote);
            self.log_event(StoreEvent::JobIncarnated {
                job,
                node,
                target: format!("peer:{dest_usite}"),
                at: self.clock,
            });
        }
    }

    fn run_file_task(&mut self, job: JobId, node: ActionId, kind: &FileKind) -> FileTaskResult {
        let (vsite_name, login) = {
            let rt = self.jobs.get(&job).expect("job exists");
            (rt.job.vsite.vsite.clone(), rt.user.login.clone())
        };
        match kind {
            FileKind::Import {
                source,
                uspace_name,
            } => {
                let result = match source {
                    DataLocation::Workstation { path } => {
                        let rt = self.jobs.get(&job).expect("job exists");
                        match rt.portfolio.get(path) {
                            Some(data) => {
                                let data = data.to_vec();
                                self.vsites
                                    .get_mut(&vsite_name)
                                    .expect("known vsite")
                                    .vspace
                                    .import_bytes(job, uspace_name, data, &login)
                            }
                            None => {
                                return FileTaskResult::Done(TaskOutcome::failure(format!(
                                    "portfolio file '{path}' missing"
                                )))
                            }
                        }
                    }
                    DataLocation::Xspace { vsite, path } => {
                        if vsite.usite != self.usite {
                            return FileTaskResult::Done(TaskOutcome::failure(
                                "import from a remote Usite's Xspace is not supported; \
                                 use a transfer"
                                    .to_string(),
                            ));
                        }
                        if vsite.vsite == vsite_name {
                            self.vsites
                                .get_mut(&vsite_name)
                                .expect("known vsite")
                                .vspace
                                .import_from_xspace(job, path, uspace_name, &login)
                        } else if let Some(&shard) = self.siblings.get(&vsite.vsite) {
                            // The source Vsite lives on a sibling shard;
                            // the facade's merge phase reads it there and
                            // finishes this node.
                            self.cross_send(CrossShardItem::ImportXspace {
                                job,
                                node,
                                shard,
                                src_vsite: vsite.vsite.clone(),
                                path: path.clone(),
                                uspace_name: uspace_name.clone(),
                                login: login.clone(),
                            });
                            return FileTaskResult::Remote;
                        } else {
                            // Cross-Vsite (same Usite): read there, write here.
                            let data = match self.vsites.get(&vsite.vsite) {
                                Some(v) => v
                                    .vspace
                                    .xspace_ref()
                                    .read(path, &login)
                                    .map(|f| f.data.clone()),
                                None => {
                                    return FileTaskResult::Done(TaskOutcome::failure(format!(
                                        "unknown Vsite {vsite}"
                                    )))
                                }
                            };
                            match data {
                                Ok(d) => self
                                    .vsites
                                    .get_mut(&vsite_name)
                                    .expect("known vsite")
                                    .vspace
                                    .import_bytes(job, uspace_name, d, &login),
                                Err(e) => {
                                    return FileTaskResult::Done(TaskOutcome::failure(
                                        e.to_string(),
                                    ))
                                }
                            }
                        }
                    }
                };
                FileTaskResult::Done(match result {
                    Ok(n) => TaskOutcome {
                        status: ActionStatus::Successful,
                        bytes_staged: n,
                        ..Default::default()
                    },
                    Err(e) => TaskOutcome::failure(e.to_string()),
                })
            }
            FileKind::Export {
                uspace_name,
                destination,
            } => {
                let DataLocation::Xspace { vsite, path } = destination else {
                    return FileTaskResult::Done(TaskOutcome::failure(
                        "export to workstation happens on JMC request, not in-job".to_string(),
                    ));
                };
                if vsite.usite != self.usite {
                    return FileTaskResult::Done(TaskOutcome::failure(
                        "export to a remote Usite's Xspace is not supported".to_string(),
                    ));
                }
                if vsite.vsite == vsite_name {
                    let result = self
                        .vsites
                        .get_mut(&vsite_name)
                        .expect("known vsite")
                        .vspace
                        .export_to_xspace(job, uspace_name, path, &login);
                    FileTaskResult::Done(match result {
                        Ok(n) => TaskOutcome {
                            status: ActionStatus::Successful,
                            bytes_staged: n,
                            ..Default::default()
                        },
                        Err(e) => TaskOutcome::failure(e.to_string()),
                    })
                } else {
                    // Cross-Vsite export within the Usite.
                    let data = self
                        .vsites
                        .get(&vsite_name)
                        .expect("known vsite")
                        .vspace
                        .read_for_transfer(job, uspace_name, &login);
                    match data {
                        Ok(d) => {
                            let len = d.len() as u64;
                            if let Some(&shard) = self.siblings.get(&vsite.vsite) {
                                // Destination Vsite is on a sibling shard:
                                // ship the bytes over the channel; the
                                // merge phase lands them in that Xspace.
                                self.cross_send(CrossShardItem::DeliverXspace {
                                    job,
                                    node,
                                    shard,
                                    to_vsite: vsite.vsite.clone(),
                                    path: path.clone(),
                                    data: d,
                                    bytes: len,
                                    login: login.clone(),
                                });
                                return FileTaskResult::Remote;
                            }
                            match self.vsites.get_mut(&vsite.vsite) {
                                Some(v) => match v.vspace.xspace().write(path, d, &login) {
                                    Ok(()) => FileTaskResult::Done(TaskOutcome {
                                        status: ActionStatus::Successful,
                                        bytes_staged: len,
                                        ..Default::default()
                                    }),
                                    Err(e) => {
                                        FileTaskResult::Done(TaskOutcome::failure(e.to_string()))
                                    }
                                },
                                None => FileTaskResult::Done(TaskOutcome::failure(format!(
                                    "unknown Vsite {vsite}"
                                ))),
                            }
                        }
                        Err(e) => FileTaskResult::Done(TaskOutcome::failure(e.to_string())),
                    }
                }
            }
            FileKind::Transfer {
                uspace_name,
                to_vsite,
                dest_name,
            } => {
                let entry = self
                    .vsites
                    .get(&vsite_name)
                    .expect("known vsite")
                    .vspace
                    .read_entry_for_transfer(job, uspace_name, &login);
                let (data, world_readable) = match entry {
                    Ok(e) => e,
                    Err(e) => return FileTaskResult::Done(TaskOutcome::failure(e.to_string())),
                };
                if to_vsite.usite == self.usite {
                    // Local delivery into the destination Vsite's incoming area.
                    let len = data.len() as u64;
                    if let Some(&shard) = self.siblings.get(&to_vsite.vsite) {
                        // The destination Vsite lives on a sibling shard;
                        // the merge phase delivers into its incoming area.
                        self.cross_send(CrossShardItem::DeliverIncoming {
                            job,
                            node,
                            shard,
                            to_vsite: to_vsite.vsite.clone(),
                            dest_name: dest_name.clone(),
                            data,
                            bytes: len,
                            login: login.clone(),
                        });
                        return FileTaskResult::Remote;
                    }
                    match self.vsites.get_mut(&to_vsite.vsite) {
                        Some(v) => {
                            let path = format!("{INCOMING_PREFIX}{dest_name}");
                            match v.vspace.xspace().write(&path, data, &login) {
                                Ok(()) => FileTaskResult::Done(TaskOutcome {
                                    status: ActionStatus::Successful,
                                    bytes_staged: len,
                                    ..Default::default()
                                }),
                                Err(e) => FileTaskResult::Done(TaskOutcome::failure(e.to_string())),
                            }
                        }
                        None => FileTaskResult::Done(TaskOutcome::failure(format!(
                            "unknown Vsite {to_vsite}"
                        ))),
                    }
                } else {
                    self.outbox.push(OutgoingItem::Transfer {
                        from_job: job,
                        node,
                        to_vsite: to_vsite.clone(),
                        dest_name: dest_name.clone(),
                        data: data.into(),
                        world_readable,
                    });
                    FileTaskResult::Remote
                }
            }
        }
    }

    /// Takes everything waiting for the federation layer.
    pub fn take_outbox(&mut self) -> Vec<OutgoingItem> {
        std::mem::take(&mut self.outbox)
    }

    /// Completes a node whose work happened at a peer Usite.
    pub fn complete_remote_node(&mut self, job: JobId, node: ActionId, outcome: OutcomeNode) {
        self.complete_remote_node_with_files(job, node, outcome, Vec::new());
    }

    /// Completes a remote node, depositing edge files returned by the peer
    /// into the parent job's Uspace so successors can consume them.
    pub fn complete_remote_node_with_files(
        &mut self,
        job: JobId,
        node: ActionId,
        outcome: OutcomeNode,
        files: Vec<(String, Vec<u8>)>,
    ) {
        let Some(rt) = self.jobs.get_mut(&job) else {
            return;
        };
        // A node can only terminate once: a late delivery for a node
        // already completed (aborted locally, or a duplicate/replayed
        // completion) must not overwrite its recorded outcome.
        if rt.states.get(&node) == Some(&NodeState::Terminal) {
            return;
        }
        if let Some(slot) = rt.outcome.child_mut(node) {
            *slot = outcome;
        }
        rt.states.insert(node, NodeState::Terminal);
        // Re-aggregate eagerly: `step` only re-aggregates jobs that make
        // progress, so an externally completed node must fold its status
        // into the tree here for clients polling before the next step.
        rt.outcome.aggregate_status();
        let (vsite, login) = (rt.job.vsite.vsite.clone(), rt.user.login.clone());
        if let Some(v) = self.vsites.get_mut(&vsite) {
            for (name, data) in &files {
                let _ = v.vspace.write_uspace_file(job, name, data.clone(), &login);
            }
        }
        self.log_terminal(job, node, files);
        self.flush_events();
    }

    /// Reads edge-result files from a (foreign) job's Uspace for return to
    /// the origin site. Missing files are skipped — the origin's successor
    /// tasks will then fail with file-not-found, mirroring reality.
    pub fn collect_return_files(&self, job: JobId, names: &[String]) -> Vec<(String, Vec<u8>)> {
        let Some(rt) = self.jobs.get(&job) else {
            return Vec::new();
        };
        let Some(v) = self.vsites.get(&rt.job.vsite.vsite) else {
            return Vec::new();
        };
        names
            .iter()
            .filter_map(|n| {
                v.vspace
                    .read_for_transfer(job, n, &rt.user.login)
                    .ok()
                    .map(|d| (n.clone(), d))
            })
            .collect()
    }

    // ---- Cross-shard merge-phase helpers (crate-internal) -------------
    //
    // The sharded facade applies queued [`CrossShardItem`]s between
    // parallel step rounds using these entry points. They mirror the
    // corresponding in-shard code paths exactly so terminal outcomes are
    // byte-identical whether a job's neighbours live on the same shard
    // or not.

    /// Whether this shard currently owns `job`.
    pub(crate) fn has_job(&self, job: JobId) -> bool {
        self.jobs.contains_key(&job)
    }

    /// Whether `node` of `job` has already reached a terminal state.
    /// Unknown jobs count as terminal (nothing left to do).
    pub(crate) fn node_is_terminal(&self, job: JobId, node: ActionId) -> bool {
        self.jobs
            .get(&job)
            .map(|rt| rt.states.get(&node) == Some(&NodeState::Terminal))
            .unwrap_or(true)
    }

    /// Re-marks a non-terminal node as awaiting an external completion
    /// (used when recovery rebuilds cross-shard parent links).
    pub(crate) fn mark_node_remote(&mut self, job: JobId, node: ActionId) {
        let Some(rt) = self.jobs.get_mut(&job) else {
            return;
        };
        if rt.states.get(&node) == Some(&NodeState::Terminal) {
            return;
        }
        if let Some(OutcomeNode::Job(j)) = rt.outcome.child_mut(node) {
            if j.status == ActionStatus::Pending {
                j.status = ActionStatus::Consigned;
            }
        }
        rt.states.insert(node, NodeState::Remote);
    }

    /// `(child, parent job, parent node)` for every job consigned on
    /// behalf of a parent, in consign order. The facade uses this to
    /// rebuild its cross-shard link registry after recovery.
    pub(crate) fn parent_links(&self) -> Vec<(JobId, JobId, ActionId)> {
        self.job_order
            .iter()
            .filter_map(|id| {
                let rt = self.jobs.get(id)?;
                rt.parent.map(|(pjob, pnode)| (*id, pjob, pnode))
            })
            .collect()
    }

    /// The files named on `node`'s outgoing dependency edges — what a
    /// finished child must hand back to the parent's Uspace. Mirrors the
    /// in-shard `poll_child_node` pull set, deduplicated in edge order.
    pub(crate) fn edge_return_files(&self, job: JobId, node: ActionId) -> Vec<String> {
        let Some(rt) = self.jobs.get(&job) else {
            return Vec::new();
        };
        let mut files: Vec<String> = Vec::new();
        for dep in &rt.job.dependencies {
            if dep.from == node {
                for f in &dep.files {
                    if !files.contains(f) {
                        files.push(f.clone());
                    }
                }
            }
        }
        files
    }

    /// Terminates a file-task node with `outcome`, exactly as the
    /// in-shard `dispatch_node` Done arm would have: failed outcomes get
    /// a flight annotation and trace, the outcome is recorded, deposits
    /// are journalled, and the group commit flushes.
    pub(crate) fn finish_file_node(
        &mut self,
        job: JobId,
        node: ActionId,
        mut outcome: TaskOutcome,
        now: SimTime,
    ) {
        self.clock = self.clock.max(now);
        if !self.jobs.contains_key(&job) || self.node_is_terminal(job, node) {
            return;
        }
        if !outcome.status.is_success() {
            self.flight.record(
                job.0,
                now,
                "njs.file.error",
                format!("node {}: {}", node.0, outcome.message),
            );
            outcome.flight = self.flight.trace(job.0);
        }
        let rt = self.jobs.get_mut(&job).expect("checked above");
        rt.set_task_outcome(node, outcome);
        rt.states.insert(node, NodeState::Terminal);
        // Eager re-aggregation, like `complete_remote_node_with_files`:
        // this runs between steps, so clients polling before the next
        // step must already see the folded status.
        rt.outcome.aggregate_status();
        let deposited = self.deposited_by_file_task(job, node);
        self.log_terminal(job, node, deposited);
        self.flush_events();
    }

    /// Fails a sub-job node whose cross-shard consign was rejected,
    /// mirroring the in-shard consign-error arm of `dispatch_subjob`.
    pub(crate) fn fail_subjob_node(&mut self, job: JobId, node: ActionId) {
        let Some(rt) = self.jobs.get_mut(&job) else {
            return;
        };
        if rt.states.get(&node) == Some(&NodeState::Terminal) {
            return;
        }
        if let Some(OutcomeNode::Job(j)) = rt.outcome.child_mut(node) {
            j.status = ActionStatus::NotSuccessful;
        }
        rt.states.insert(node, NodeState::Terminal);
        rt.outcome.aggregate_status();
        self.log_terminal(job, node, Vec::new());
        self.flush_events();
    }

    /// Completes a cross-shard Import by staging the fetched bytes into
    /// the job's Uspace (or failing the node with the read error).
    pub(crate) fn finish_import(
        &mut self,
        job: JobId,
        node: ActionId,
        uspace_name: &str,
        data: Result<Vec<u8>, String>,
        now: SimTime,
    ) {
        let outcome = match data {
            Ok(d) => {
                let Some((vsite, login)) = self
                    .jobs
                    .get(&job)
                    .map(|rt| (rt.job.vsite.vsite.clone(), rt.user.login.clone()))
                else {
                    return;
                };
                let result = self
                    .vsites
                    .get_mut(&vsite)
                    .expect("job's vsite exists")
                    .vspace
                    .import_bytes(job, uspace_name, d, &login);
                match result {
                    Ok(n) => TaskOutcome {
                        status: ActionStatus::Successful,
                        bytes_staged: n,
                        ..Default::default()
                    },
                    Err(e) => TaskOutcome::failure(e.to_string()),
                }
            }
            Err(e) => TaskOutcome::failure(e),
        };
        self.finish_file_node(job, node, outcome, now);
    }

    /// Reads a file from a Vsite's Xspace (cross-shard Import source).
    pub(crate) fn xspace_read(
        &self,
        vsite: &str,
        path: &str,
        login: &str,
    ) -> Result<Vec<u8>, String> {
        match self.vsites.get(vsite) {
            Some(v) => v
                .vspace
                .xspace_ref()
                .read(path, login)
                .map(|f| f.data.clone())
                .map_err(|e| e.to_string()),
            None => Err(format!("unknown Vsite {vsite}")),
        }
    }

    /// Writes a file into a Vsite's Xspace (cross-shard Export landing).
    pub(crate) fn xspace_write(
        &mut self,
        vsite: &str,
        path: &str,
        data: Vec<u8>,
        login: &str,
    ) -> Result<(), String> {
        match self.vsites.get_mut(vsite) {
            Some(v) => v
                .vspace
                .xspace()
                .write(path, data, login)
                .map_err(|e| e.to_string()),
            None => Err(format!("unknown Vsite {vsite}")),
        }
    }

    // -------------------------------------------------------------------

    /// Receives a file pushed from a peer Usite into `vsite`'s incoming
    /// Xspace area.
    pub fn receive_incoming_file(
        &mut self,
        vsite: &str,
        dest_name: &str,
        data: Vec<u8>,
        login: &str,
    ) -> Result<(), NjsError> {
        let v = self
            .vsites
            .get_mut(vsite)
            .ok_or_else(|| NjsError::UnknownVsite {
                vsite: vsite.to_owned(),
                usite: self.usite.clone(),
            })?;
        let path = format!("{INCOMING_PREFIX}{dest_name}");
        v.vspace.xspace().write(&path, data, login)?;
        Ok(())
    }

    /// Opens (or resumes) an incoming chunked transfer offered by a peer.
    ///
    /// Returns the chunk index the sender should resume from — the
    /// receiver's contiguous watermark, journaled chunk by chunk, so a
    /// re-offer after a drop, partition, or crash continues where the
    /// bytes actually got to instead of restarting. A return equal to
    /// the manifest's chunk count means the file is already fully
    /// delivered and committed.
    pub fn transfer_offer(
        &mut self,
        manifest: TransferManifest,
        login: &str,
    ) -> Result<u64, NjsError> {
        if manifest.to_vsite.usite != self.usite
            || !self.vsites.contains_key(&manifest.to_vsite.vsite)
        {
            return Err(NjsError::UnknownVsite {
                vsite: manifest.to_vsite.to_string(),
                usite: self.usite.clone(),
            });
        }
        if !manifest.well_formed() {
            return Err(NjsError::BadManifest);
        }
        let key = manifest.key();
        if let Some(entry) = self.incoming.get(&key) {
            if entry.state.manifest() == &manifest {
                let watermark = entry.state.watermark();
                if watermark > 0 && !entry.state.is_complete() {
                    self.transfer_resumes += 1;
                }
                return Ok(watermark);
            }
            // Same sender identity, different manifest: the sender
            // restarted with new content or geometry. Drop the stale
            // partial and start over.
            let (vsite, path) = (entry.vsite.clone(), entry.path.clone());
            if let Some(v) = self.vsites.get_mut(&vsite) {
                let _ = v.vspace.xspace().abort_partial(&path);
            }
            self.incoming.remove(&key);
        }
        let path = format!("{INCOMING_PREFIX}{}", manifest.dest_name);
        let vsite = manifest.to_vsite.vsite.clone();
        self.vsites
            .get_mut(&vsite)
            .expect("checked above")
            .vspace
            .xspace()
            .begin_partial(&path, manifest.total_len, login)?;
        self.log_event(StoreEvent::TransferOpened {
            origin: manifest.origin.clone(),
            origin_job: manifest.origin_job,
            origin_node: manifest.origin_node,
            manifest_der: manifest.to_der(),
            login: login.to_owned(),
            at: self.clock,
        });
        self.incoming.insert(
            key.clone(),
            IncomingTransfer {
                state: ReceiverState::new(manifest),
                login: login.to_owned(),
                vsite,
                path,
            },
        );
        // A zero-length file has no chunks to wait for.
        if self.incoming[&key].state.is_complete() {
            self.finalize_incoming(&key)?;
            self.metrics.transfers_received.inc();
        }
        self.flush_events();
        Ok(0)
    }

    /// Accepts one chunk of an open incoming transfer.
    ///
    /// Returns the cumulative ack `(watermark, done)`. Retransmitted
    /// chunks (drops, duplicates, or a post-crash dedup miss) are acked
    /// again without touching storage, so the operation is idempotent
    /// even though the federation layer's response cache does not
    /// survive a receiver crash.
    pub fn transfer_chunk(
        &mut self,
        origin: &str,
        origin_job: JobId,
        origin_node: ActionId,
        index: u64,
        data: &[u8],
    ) -> Result<(u64, bool), NjsError> {
        let key = TransferKey {
            origin: origin.to_owned(),
            origin_job,
            origin_node,
        };
        let entry = self.incoming.get(&key).ok_or(NjsError::UnknownTransfer)?;
        if entry.state.is_received(index) {
            return Ok((entry.state.watermark(), entry.state.is_complete()));
        }
        let m = entry.state.manifest();
        if index >= m.num_chunks() || !m.verify_chunk(index, data) {
            return Err(NjsError::CorruptChunk { index });
        }
        let offset = m.chunk_range(index).start as u64;
        let (vsite, path, login) = (entry.vsite.clone(), entry.path.clone(), entry.login.clone());
        // Store before marking: a quota failure must leave the chunk
        // unheld so a later retry (after the user frees space) can land.
        self.vsites
            .get_mut(&vsite)
            .expect("vsite checked at offer")
            .vspace
            .xspace()
            .write_partial(&path, offset, data, &login)?;
        let entry = self.incoming.get_mut(&key).expect("still present");
        entry.state.mark_received(index);
        let (upto, done) = (entry.state.watermark(), entry.state.is_complete());
        self.metrics.transfer_chunks.inc();
        self.metrics.transfer_bytes.add(data.len() as u64);
        // The journal holds the delivered bytes themselves — Xspace
        // contents are not otherwise durable, so chunk events are the
        // file's write-ahead copy and are retained through compaction.
        self.log_event(StoreEvent::TransferChunkStored {
            origin: key.origin.clone(),
            origin_job,
            origin_node,
            index,
            data: data.to_vec(),
            at: self.clock,
        });
        if done {
            self.finalize_incoming(&key)?;
            self.metrics.transfers_received.inc();
        }
        self.flush_events();
        Ok((upto, done))
    }

    /// Whether this shard holds the receiver state for an incoming
    /// transfer (the sharded facade probes shards to route chunks).
    pub(crate) fn has_incoming(
        &self,
        origin: &str,
        origin_job: JobId,
        origin_node: ActionId,
    ) -> bool {
        self.incoming.contains_key(&TransferKey {
            origin: origin.to_owned(),
            origin_job,
            origin_node,
        })
    }

    /// Commits a completed transfer's staged partial, flipping the file
    /// visible atomically (checksum-gated against the manifest's whole
    /// file hash). A no-op if the partial was already committed — the
    /// recovery republish path lands here a second time.
    fn finalize_incoming(&mut self, key: &TransferKey) -> Result<(), NjsError> {
        let Some(entry) = self.incoming.get(key) else {
            return Ok(());
        };
        let m = entry.state.manifest();
        let (sum, world) = (m.file_sum, m.world_readable);
        let (vsite, path) = (entry.vsite.clone(), entry.path.clone());
        let Some(v) = self.vsites.get_mut(&vsite) else {
            return Ok(());
        };
        let fs = v.vspace.xspace();
        if !fs.has_partial(&path) {
            return Ok(());
        }
        fs.commit_partial(&path, Some(sum), world)?;
        Ok(())
    }

    /// Sender-side progress note: records streamed bytes on a `Remote`
    /// transfer node so JMC status polls show the data plane moving
    /// before the task completes.
    pub fn note_transfer_progress(&mut self, job: JobId, node: ActionId, bytes: u64, total: u64) {
        let Some(rt) = self.jobs.get_mut(&job) else {
            return;
        };
        if rt.states.get(&node) != Some(&NodeState::Remote) {
            return;
        }
        rt.set_task_outcome(
            node,
            TaskOutcome {
                status: ActionStatus::Running,
                bytes_staged: bytes,
                message: format!("streaming {bytes}/{total} bytes"),
                ..Default::default()
            },
        );
    }

    /// Times an incoming offer resumed from a non-zero journaled
    /// watermark instead of restarting at chunk zero.
    pub fn transfer_resumes(&self) -> u64 {
        self.transfer_resumes
    }

    /// Progress of an incoming transfer: `(bytes_received, total_len)`.
    pub fn incoming_progress(
        &self,
        origin: &str,
        origin_job: JobId,
        origin_node: ActionId,
    ) -> Option<(u64, u64)> {
        let key = TransferKey {
            origin: origin.to_owned(),
            origin_job,
            origin_node,
        };
        self.incoming
            .get(&key)
            .map(|e| (e.state.bytes_received(), e.state.manifest().total_len))
    }

    /// The DN of the user who consigned `job`.
    pub fn owner_dn(&self, job: JobId) -> Option<String> {
        self.jobs.get(&job).map(|rt| rt.user.dn.clone())
    }

    /// Whether a job has finished (successfully or not).
    pub fn is_done(&self, job: JobId) -> bool {
        self.jobs.get(&job).map(|j| j.done).unwrap_or(false)
    }

    /// The job's current outcome tree.
    pub fn outcome(&self, job: JobId) -> Option<&JobOutcome> {
        self.jobs.get(&job).map(|j| &j.outcome)
    }

    /// Consign → finish duration, once finished.
    pub fn turnaround(&self, job: JobId) -> Option<SimTime> {
        let rt = self.jobs.get(&job)?;
        Some(rt.finished_at? - rt.consigned_at)
    }

    /// Applies a user control operation (ownership enforced by DN).
    pub fn control(
        &mut self,
        job: JobId,
        op: ControlOp,
        dn: &str,
        now: SimTime,
    ) -> Result<bool, NjsError> {
        let rt = self.jobs.get(&job).ok_or(NjsError::UnknownJob(job))?;
        if rt.user.dn != dn {
            return Err(NjsError::NotOwner {
                job,
                dn: dn.to_owned(),
            });
        }
        match op {
            ControlOp::Hold => {
                let rt = self.jobs.get_mut(&job).expect("job exists");
                if rt.done {
                    return Ok(false);
                }
                rt.held = true;
                Ok(true)
            }
            ControlOp::Resume => {
                let rt = self.jobs.get_mut(&job).expect("job exists");
                if !rt.held {
                    return Ok(false);
                }
                rt.held = false;
                Ok(true)
            }
            ControlOp::Abort => Ok(self.abort(job, now)),
        }
    }

    fn abort(&mut self, job: JobId, now: SimTime) -> bool {
        let Some(rt) = self.jobs.get(&job) else {
            return false;
        };
        if rt.done {
            return false;
        }
        let node_ids: Vec<ActionId> = rt.job.nodes.iter().map(|(n, _)| *n).collect();
        let mut children = Vec::new();
        for nid in node_ids {
            let state = self.jobs[&job].states[&nid].clone();
            match state {
                NodeState::InBatch { vsite, batch_id } => {
                    self.vsites
                        .get_mut(vsite.as_ref())
                        .expect("known vsite")
                        .batch
                        .cancel(batch_id, now);
                    self.mark_batch_dirty(vsite.as_ref());
                    let rt = self.jobs.get_mut(&job).expect("job exists");
                    rt.set_task_outcome(
                        nid,
                        TaskOutcome {
                            status: ActionStatus::Killed,
                            message: "aborted by user".into(),
                            ..Default::default()
                        },
                    );
                    rt.states.insert(nid, NodeState::Terminal);
                }
                NodeState::ChildJob { child } => children.push((nid, child)),
                NodeState::Waiting | NodeState::Remote => {
                    let rt = self.jobs.get_mut(&job).expect("job exists");
                    match rt.outcome.child_mut(nid) {
                        Some(OutcomeNode::Task(t)) => {
                            t.status = ActionStatus::Killed;
                            t.message = "aborted by user".into();
                        }
                        Some(OutcomeNode::Job(j)) => j.status = ActionStatus::Killed,
                        None => {}
                    }
                    let rt = self.jobs.get_mut(&job).expect("job exists");
                    rt.states.insert(nid, NodeState::Terminal);
                }
                NodeState::Terminal => {}
            }
        }
        for (nid, child) in children {
            self.abort(child, now);
            let child_outcome = self.jobs[&child].outcome.clone();
            let rt = self.jobs.get_mut(&job).expect("job exists");
            if let Some(slot) = rt.outcome.child_mut(nid) {
                *slot = OutcomeNode::Job(child_outcome);
            }
            rt.states.insert(nid, NodeState::Terminal);
        }
        let rt = self.jobs.get_mut(&job).expect("job exists");
        rt.outcome.aggregate_status();
        if rt.outcome.status == ActionStatus::Successful {
            rt.outcome.status = ActionStatus::Killed;
        }
        rt.done = true;
        rt.finished_at = Some(now);
        self.clock = self.clock.max(now);
        self.log_job_done(job);
        self.flush_events();
        true
    }

    /// Lists the files in a job's Uspace (the JMC's save-output browser).
    pub fn list_uspace_files(&self, job: JobId, dn: &str) -> Result<Vec<String>, NjsError> {
        let rt = self.jobs.get(&job).ok_or(NjsError::UnknownJob(job))?;
        if rt.user.dn != dn {
            return Err(NjsError::NotOwner {
                job,
                dn: dn.to_owned(),
            });
        }
        let v = self
            .vsites
            .get(&rt.job.vsite.vsite)
            .expect("job vsite exists");
        Ok(v.vspace
            .uspace(job)?
            .list("")
            .into_iter()
            .map(str::to_owned)
            .collect())
    }

    /// Purges a finished job: destroys its Uspace (and its local children's)
    /// and forgets the runtime. Returns bytes freed.
    ///
    /// The JMC calls this once the user has saved what they need — job
    /// directories hold "the data for and created during the job run"
    /// (§5.5) and are reclaimed afterwards.
    pub fn purge(&mut self, job: JobId, dn: &str) -> Result<u64, NjsError> {
        let rt = self.jobs.get(&job).ok_or(NjsError::UnknownJob(job))?;
        if rt.user.dn != dn {
            return Err(NjsError::NotOwner {
                job,
                dn: dn.to_owned(),
            });
        }
        if !rt.done {
            return Err(NjsError::Space(unicore_uspace::SpaceError::BadPath(
                "job still running (abort it first)".to_owned(),
            )));
        }
        // Collect the job and its local descendants.
        let mut to_purge = vec![job];
        let mut i = 0;
        while i < to_purge.len() {
            let current = to_purge[i];
            i += 1;
            if let Some(rt) = self.jobs.get(&current) {
                for state in rt.states.values() {
                    if let NodeState::ChildJob { child } = state {
                        to_purge.push(*child);
                    }
                }
            }
        }
        let mut freed = 0;
        for id in to_purge {
            self.flight.forget(id.0);
            if let Some(rt) = self.jobs.remove(&id) {
                if let Some(v) = self.vsites.get_mut(&rt.job.vsite.vsite) {
                    freed += v.vspace.destroy_uspace(id).unwrap_or(0);
                }
                self.job_order.retain(|j| *j != id);
                self.log_event(StoreEvent::JobPurged {
                    job: id,
                    at: self.clock,
                });
            }
        }
        self.flush_events();
        Ok(freed)
    }

    /// The List service: root jobs owned by `dn`.
    pub fn list_jobs(&self, dn: &str) -> Vec<JobSummary> {
        self.job_order
            .iter()
            .filter_map(|id| {
                let rt = self.jobs.get(id)?;
                if rt.parent.is_some() || rt.user.dn != dn {
                    return None;
                }
                Some(JobSummary {
                    job: *id,
                    name: rt.job.name.clone(),
                    status: rt.outcome.status,
                })
            })
            .collect()
    }

    /// The Query service: the outcome tree at the requested detail level.
    pub fn query(&self, job: JobId, dn: &str, detail: DetailLevel) -> Result<JobOutcome, NjsError> {
        let rt = self.jobs.get(&job).ok_or(NjsError::UnknownJob(job))?;
        if rt.user.dn != dn {
            return Err(NjsError::NotOwner {
                job,
                dn: dn.to_owned(),
            });
        }
        Ok(prune_outcome(&rt.outcome, detail))
    }

    /// Fetches a file from a finished job's Uspace (JMC "save output",
    /// §5.6: data goes back to the workstation only on user request).
    pub fn fetch_uspace_file(&self, job: JobId, name: &str, dn: &str) -> Result<Vec<u8>, NjsError> {
        let rt = self.jobs.get(&job).ok_or(NjsError::UnknownJob(job))?;
        if rt.user.dn != dn {
            return Err(NjsError::NotOwner {
                job,
                dn: dn.to_owned(),
            });
        }
        let v = self
            .vsites
            .get(&rt.job.vsite.vsite)
            .expect("job vsite exists");
        Ok(v.vspace.read_for_transfer(job, name, &rt.user.login)?)
    }
}

enum FileTaskResult {
    Done(TaskOutcome),
    Remote,
}

/// Collects workstation-import payloads referenced anywhere in `job`'s
/// subtree out of `portfolio` into `carried`.
fn collect_workstation_imports(
    job: &AbstractJob,
    portfolio: &HashMap<String, Arc<[u8]>>,
    carried: &mut Vec<(String, Vec<u8>)>,
) {
    for (_, node) in &job.nodes {
        match node {
            GraphNode::Task(task) => {
                if let TaskKind::File(FileKind::Import {
                    source: DataLocation::Workstation { path },
                    ..
                }) = &task.kind
                {
                    if carried.iter().all(|(n, _)| n != path) {
                        if let Some(data) = portfolio.get(path) {
                            carried.push((path.clone(), data.to_vec()));
                        }
                    }
                }
            }
            GraphNode::SubJob(sub) => collect_workstation_imports(sub, portfolio, carried),
        }
    }
}

/// Prunes an outcome tree to the requested detail level.
fn prune_outcome(outcome: &JobOutcome, detail: DetailLevel) -> JobOutcome {
    match detail {
        DetailLevel::JobOnly => JobOutcome {
            status: outcome.status,
            children: Vec::new(),
        },
        DetailLevel::Groups => JobOutcome {
            status: outcome.status,
            children: outcome
                .children
                .iter()
                .filter_map(|(id, node)| match node {
                    OutcomeNode::Job(j) => {
                        Some((*id, OutcomeNode::Job(prune_outcome(j, DetailLevel::Groups))))
                    }
                    OutcomeNode::Task(_) => None,
                })
                .collect(),
        },
        DetailLevel::Tasks => outcome.clone(),
    }
}
