//! Site accounting aggregation.
//!
//! The paper's outlook (§6) couples the future resource broker "together
//! with accounting functions and load information". The batch substrate
//! already writes per-job accounting records; this module aggregates them
//! into the per-user, per-Vsite usage report a site administrator (or a
//! future broker) consumes.

use crate::njs::Njs;
use std::collections::BTreeMap;
use unicore_sim::SimTime;

/// Aggregated usage for one (Vsite, login) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageRow {
    /// The Vsite the work ran on.
    pub vsite: String,
    /// The local login billed.
    pub login: String,
    /// Jobs finished.
    pub jobs: u64,
    /// Jobs that ended unsuccessfully (nonzero exit, killed, timed out).
    pub failed: u64,
    /// Node-seconds consumed.
    pub node_seconds: u64,
    /// Total queue-wait ticks endured.
    pub total_wait: SimTime,
}

impl UsageRow {
    /// Mean queue wait per job in ticks (0 when no jobs).
    pub fn mean_wait(&self) -> SimTime {
        self.total_wait.checked_div(self.jobs).unwrap_or(0)
    }
}

/// A whole-Usite usage report, ordered by (vsite, login).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageReport {
    /// The aggregated rows.
    pub rows: Vec<UsageRow>,
}

impl UsageReport {
    /// The row for a (vsite, login) pair, if any work was billed there.
    pub fn row(&self, vsite: &str, login: &str) -> Option<&UsageRow> {
        self.rows
            .iter()
            .find(|r| r.vsite == vsite && r.login == login)
    }

    /// Total node-seconds across the Usite.
    pub fn total_node_seconds(&self) -> u64 {
        self.rows.iter().map(|r| r.node_seconds).sum()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<10} {:<12} {:>6} {:>8} {:>14} {:>14}\n",
            "vsite", "login", "jobs", "failed", "node-seconds", "mean wait"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:<12} {:>6} {:>8} {:>14} {:>14}\n",
                r.vsite,
                r.login,
                r.jobs,
                r.failed,
                r.node_seconds,
                unicore_sim::format_time(r.mean_wait()),
            ));
        }
        out
    }
}

/// Builds the usage report from every Vsite's accounting records.
pub fn usage_report(njs: &Njs) -> UsageReport {
    let mut agg: BTreeMap<(String, String), UsageRow> = BTreeMap::new();
    for vsite in njs.vsite_names() {
        let Some(v) = njs.vsite(vsite) else { continue };
        for rec in v.batch.accounting() {
            let key = (vsite.clone(), rec.owner.clone());
            let row = agg.entry(key).or_insert_with(|| UsageRow {
                vsite: vsite.clone(),
                login: rec.owner.clone(),
                jobs: 0,
                failed: 0,
                node_seconds: 0,
                total_wait: 0,
            });
            row.jobs += 1;
            if rec.exit_code != 0 {
                row.failed += 1;
            }
            row.node_seconds += rec.node_seconds();
            row.total_wait += rec.wait_time();
        }
    }
    UsageReport {
        rows: agg.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translation::TranslationTable;
    use unicore_ajo::{
        AbstractJob, AbstractTask, ActionId, ExecuteKind, GraphNode, ResourceRequest, TaskKind,
        UserAttributes, VsiteAddress,
    };
    use unicore_gateway::MappedUser;
    use unicore_resources::{deployment_page, Architecture};
    use unicore_sim::{HOUR, SEC};

    fn run_jobs(logins_and_scripts: &[(&str, &str)]) -> Njs {
        let mut njs = Njs::new("FZJ");
        njs.add_vsite(
            deployment_page("FZJ", "T3E", Architecture::CrayT3e),
            TranslationTable::for_architecture(Architecture::CrayT3e),
        );
        let mut ids = Vec::new();
        for (i, (login, script)) in logins_and_scripts.iter().enumerate() {
            let mut job = AbstractJob::new(
                format!("j{i}"),
                VsiteAddress::new("FZJ", "T3E"),
                UserAttributes::new(format!("CN=u{i}, C=DE, O=x, OU=y"), "g"),
            );
            job.nodes.push((
                ActionId(1),
                GraphNode::Task(AbstractTask {
                    name: "t".into(),
                    resources: ResourceRequest::minimal()
                        .with_processors(2)
                        .with_run_time(3_600),
                    kind: TaskKind::Execute(ExecuteKind::Script {
                        script: script.to_string(),
                    }),
                }),
            ));
            let user = MappedUser {
                dn: format!("CN=u{i}"),
                login: login.to_string(),
                account_group: "g".into(),
            };
            ids.push(njs.consign(job, user, 0).unwrap());
        }
        let mut now = 0;
        njs.step(now);
        while ids.iter().any(|id| !njs.is_done(*id)) && now < HOUR {
            now = njs.next_event_time().unwrap_or(now + SEC).max(now + 1);
            njs.step(now);
        }
        njs
    }

    #[test]
    fn aggregates_per_login() {
        let njs = run_jobs(&[
            ("alice", "sleep 100\n"),
            ("alice", "sleep 50\n"),
            ("bob", "sleep 10\nexit 1\n"),
        ]);
        let report = usage_report(&njs);
        assert_eq!(report.rows.len(), 2);
        let alice = report.row("T3E", "alice").unwrap();
        assert_eq!(alice.jobs, 2);
        assert_eq!(alice.failed, 0);
        // 2 procs × (100 + 50) s.
        assert_eq!(alice.node_seconds, 300);
        let bob = report.row("T3E", "bob").unwrap();
        assert_eq!(bob.jobs, 1);
        assert_eq!(bob.failed, 1);
        assert_eq!(report.total_node_seconds(), 300 + 20);
    }

    #[test]
    fn render_is_tabular() {
        let njs = run_jobs(&[("alice", "sleep 10\n")]);
        let text = usage_report(&njs).render();
        assert!(text.contains("vsite"));
        assert!(text.contains("alice"));
        assert!(text.lines().count() >= 2);
    }

    #[test]
    fn empty_report() {
        let njs = Njs::new("EMPTY");
        let report = usage_report(&njs);
        assert!(report.rows.is_empty());
        assert_eq!(report.total_node_seconds(), 0);
        assert!(report.row("X", "y").is_none());
    }
}
