//! Sharded multi-core NJS (E18).
//!
//! [`ShardedNjs`] splits one Usite's job state by Vsite into N
//! independent [`Njs`] shards, each owning its jobs' runtimes, scratch
//! vectors, and (optionally) its own WAL segment that still group-commits
//! once per step. The fixpoint step loop runs across shards with
//! work-stealing workers built on the crossbeam shim's `deque` module;
//! consign intake routes straight to the owning shard without any global
//! lock.
//!
//! ## Determinism contract
//!
//! Cross-shard effects — parent→child sub-job consigns, cross-Vsite
//! Import/Export/Transfer staging — are never applied from inside a
//! worker. A shard that needs to touch a sibling's state emits a typed
//! `CrossShardItem` on a channel instead; between parallel rounds the
//! facade drains the channel and applies every item single-threaded, in
//! an order keyed by `(target shard, job id, node id)` that does not
//! depend on thread interleaving. Job ids are strided per shard (shard k
//! of N allocates `k+1, k+1+N, …`), so id allocation is also independent
//! of scheduling. Terminal [`JobOutcome`] DER
//! contains neither ids nor timestamps, so terminal outcomes are
//! byte-identical to the single-threaded run for every shard and worker
//! count — the same contract the chaos and broker soaks gate on.
//!
//! ## Behavioural notes
//!
//! * A sub-job whose target Vsite lives on a sibling shard behaves like
//!   a remote job group: its parent node shows `Consigned` until the
//!   child finishes (an in-shard child's live status is mirrored every
//!   step). Terminal outcomes are unaffected.
//! * `Abort` kills cross-shard children too (the facade forwards the
//!   abort to each linked child's shard).
//! * With one shard the facade is a zero-cost pass-through and behaves
//!   exactly like a bare [`Njs`]; `From<Njs>` wraps existing call sites.

use crate::accounting::{usage_report, UsageReport, UsageRow};
use crate::error::NjsError;
use crate::njs::{ConsignMeta, Njs, OutgoingItem, RecoveryReport, VsiteRuntime};
use crate::translation::TranslationTable;
use crossbeam::channel::{unbounded, Receiver};
use crossbeam::deque::{Stealer, Worker};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use unicore_ajo::{
    AbstractJob, ActionId, ControlOp, DetailLevel, JobId, JobOutcome, JobSummary, MonitorReport,
    OutcomeNode, TaskOutcome,
};
use unicore_dataplane::TransferManifest;
use unicore_gateway::MappedUser;
use unicore_resources::ResourcePage;
use unicore_sim::SimTime;
use unicore_store::EventStore;
use unicore_telemetry::{FlightRecorder, SpanContext, Telemetry};

/// A typed cross-shard effect, produced by a shard during a step round
/// and applied by the facade's deterministic merge phase.
pub(crate) enum CrossShardItem {
    /// A sub-job whose target Vsite is owned by `shard`: consign it
    /// there on behalf of `(parent, node)`.
    ConsignChild {
        /// The parent job (on the emitting shard).
        parent: JobId,
        /// The parent's sub-job node.
        node: ActionId,
        /// Owning shard of the child's Vsite.
        shard: usize,
        /// The extracted child AJO (boxed: it dwarfs the other variants).
        ajo: Box<AbstractJob>,
        /// Edge files staged from the parent's Uspace.
        staged: Vec<(String, Vec<u8>)>,
        /// The consigning user.
        user: MappedUser,
        /// The parent's portfolio, shared by refcount.
        portfolio: Arc<HashMap<String, Arc<[u8]>>>,
        /// Parent trace context, so the child's span hangs off it.
        trace: Option<SpanContext>,
    },
    /// A cross-Vsite Import whose source Xspace is owned by `shard`:
    /// read it there, stage into `job`'s Uspace on the owning shard.
    ImportXspace {
        /// The importing job.
        job: JobId,
        /// Its Import node.
        node: ActionId,
        /// Owning shard of the source Vsite.
        shard: usize,
        /// Source Vsite name.
        src_vsite: String,
        /// Source Xspace path.
        path: String,
        /// Destination Uspace name.
        uspace_name: String,
        /// Login performing the read.
        login: String,
    },
    /// A cross-Vsite Export whose destination Xspace is owned by
    /// `shard`: write the bytes there, then finish the node.
    DeliverXspace {
        /// The exporting job.
        job: JobId,
        /// Its Export node.
        node: ActionId,
        /// Owning shard of the destination Vsite.
        shard: usize,
        /// Destination Vsite name.
        to_vsite: String,
        /// Destination Xspace path.
        path: String,
        /// File contents.
        data: Vec<u8>,
        /// Byte count for the task outcome.
        bytes: u64,
        /// Login performing the write.
        login: String,
    },
    /// A same-Usite Transfer whose destination Vsite is owned by
    /// `shard`: land the bytes in its incoming area, then finish the
    /// node.
    DeliverIncoming {
        /// The transferring job.
        job: JobId,
        /// Its Transfer node.
        node: ActionId,
        /// Owning shard of the destination Vsite.
        shard: usize,
        /// Destination Vsite name.
        to_vsite: String,
        /// Name at the destination.
        dest_name: String,
        /// File contents.
        data: Vec<u8>,
        /// Byte count for the task outcome.
        bytes: u64,
        /// Login performing the write.
        login: String,
    },
}

impl CrossShardItem {
    /// Deterministic application order: `(target shard, job, node,
    /// variant)`. Every `(job, node)` emits at most one item per
    /// lifetime, so this key is total regardless of which worker thread
    /// enqueued first.
    fn sort_key(&self) -> (usize, u64, u64, u8) {
        match self {
            CrossShardItem::ConsignChild {
                shard,
                parent,
                node,
                ..
            } => (*shard, parent.0, node.0, 0),
            CrossShardItem::ImportXspace {
                shard, job, node, ..
            } => (*shard, job.0, node.0, 1),
            CrossShardItem::DeliverXspace {
                shard, job, node, ..
            } => (*shard, job.0, node.0, 2),
            CrossShardItem::DeliverIncoming {
                shard, job, node, ..
            } => (*shard, job.0, node.0, 3),
        }
    }
}

/// A cross-shard parent→child link, keyed by `(parent job, parent
/// node)` in the facade's registry. The merge phase polls the child's
/// shard and completes the parent node when the child finishes —
/// the cross-shard analogue of `poll_child_node`.
#[derive(Debug, Clone)]
struct Link {
    child: JobId,
    child_shard: usize,
    parent_shard: usize,
    /// Files named on the parent node's outgoing edges, pulled from the
    /// child's Uspace into the parent's on completion.
    return_files: Vec<String>,
    delivered: bool,
}

/// N independent NJS shards behind the exact API of one [`Njs`].
pub struct ShardedNjs {
    usite: String,
    shards: Vec<Njs>,
    /// Vsite name → owning shard (round-robin in registration order).
    vsite_shard: HashMap<String, usize>,
    /// Global Vsite order, as registered (spans all shards).
    vsite_order: Vec<String>,
    /// Cross-shard parent→child links, sorted by key for deterministic
    /// merge iteration.
    links: BTreeMap<(JobId, ActionId), Link>,
    rx: Receiver<CrossShardItem>,
    workers: usize,
}

impl ShardedNjs {
    /// A sharded NJS for `usite` with `shards` shards stepped by up to
    /// `workers` work-stealing workers. Both are clamped to at least 1;
    /// `(1, 1)` behaves exactly like a bare [`Njs`].
    pub fn new(usite: impl Into<String>, shards: usize, workers: usize) -> Self {
        let usite = usite.into();
        let n = shards.max(1);
        let (tx, rx) = unbounded();
        let shards: Vec<Njs> = (0..n)
            .map(|k| {
                let mut shard = Njs::new(usite.clone());
                shard.set_id_allocation(k as u64 + 1, n as u64);
                shard.set_cross_shard(tx.clone());
                shard
            })
            .collect();
        ShardedNjs {
            usite,
            shards,
            vsite_shard: HashMap::new(),
            vsite_order: Vec::new(),
            links: BTreeMap::new(),
            rx,
            workers: workers.max(1),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of step workers.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Changes the worker count used by subsequent steps.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// This Usite's name.
    pub fn usite(&self) -> &str {
        &self.usite
    }

    /// Registers a Vsite, assigning it to a shard round-robin in
    /// registration order (deterministic) and teaching every other
    /// shard to route work for it across the shard boundary.
    pub fn add_vsite(&mut self, page: ResourcePage, table: TranslationTable) {
        let name = page.vsite.vsite.clone();
        let shard = self.vsite_order.len() % self.shards.len();
        self.shards[shard].add_vsite(page, table);
        for (i, s) in self.shards.iter_mut().enumerate() {
            if i != shard {
                s.register_sibling(name.clone(), shard);
            }
        }
        self.vsite_shard.insert(name.clone(), shard);
        self.vsite_order.push(name);
    }

    /// Owning shard for a job id: shard k allocates `k+1, k+1+N, …`,
    /// so `(id − 1) mod N` inverts the stride.
    fn shard_of_job(&self, job: JobId) -> usize {
        if job.0 == 0 {
            return 0;
        }
        ((job.0 - 1) % self.shards.len() as u64) as usize
    }

    /// Owning shard for a Vsite name. Unknown Vsites (and wrong-Usite
    /// addresses) fall back to shard 0, whose own validation then
    /// produces the correct `UnknownVsite` / `WrongUsite` error.
    fn shard_of_vsite(&self, vsite: &str) -> usize {
        self.vsite_shard.get(vsite).copied().unwrap_or(0)
    }

    // ---- consign intake (lock-free: routed, never serialised) --------

    /// Consigns a top-level AJO, routed to the shard owning its Vsite.
    pub fn consign(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        now: SimTime,
    ) -> Result<JobId, NjsError> {
        let shard = self.shard_of_vsite(&job.vsite.vsite);
        self.shards[shard].consign(job, user, now)
    }

    /// Consigns a top-level AJO with journal metadata.
    pub fn consign_with_meta(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        now: SimTime,
        meta: ConsignMeta,
    ) -> Result<JobId, NjsError> {
        let shard = self.shard_of_vsite(&job.vsite.vsite);
        self.shards[shard].consign_with_meta(job, user, now, meta)
    }

    /// Consigns a job group arriving from a peer NJS.
    pub fn consign_from_peer(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        now: SimTime,
    ) -> Result<JobId, NjsError> {
        let shard = self.shard_of_vsite(&job.vsite.vsite);
        self.shards[shard].consign_from_peer(job, user, now)
    }

    /// Consigns a peer job group with journal metadata.
    pub fn consign_from_peer_with_meta(
        &mut self,
        job: AbstractJob,
        user: MappedUser,
        now: SimTime,
        meta: ConsignMeta,
    ) -> Result<JobId, NjsError> {
        let shard = self.shard_of_vsite(&job.vsite.vsite);
        self.shards[shard].consign_from_peer_with_meta(job, user, now, meta)
    }

    // ---- the sharded step loop ---------------------------------------

    /// Drives all shards forward to `now`, iterating parallel step
    /// rounds and deterministic merge phases to a cross-shard fixpoint.
    pub fn step(&mut self, now: SimTime) {
        loop {
            self.step_round(now);
            if !self.merge(now) {
                break;
            }
        }
    }

    /// One step round: every shard steps to `now` exactly once. With
    /// multiple shards and workers, shards are dealt round-robin into
    /// per-worker deques and idle workers steal from busy ones.
    fn step_round(&mut self, now: SimTime) {
        let worker_count = self.workers.min(self.shards.len());
        if worker_count <= 1 {
            for shard in &mut self.shards {
                shard.step(now);
            }
            return;
        }
        // Each shard index appears in exactly one deque, so each shard
        // is stepped exactly once; the mutex per shard is uncontended
        // unless stolen, and `&mut self` guarantees exclusive access.
        let shard_slots: Vec<std::sync::Mutex<&mut Njs>> =
            self.shards.iter_mut().map(std::sync::Mutex::new).collect();
        let locals: Vec<Worker<usize>> = (0..worker_count).map(|_| Worker::new_fifo()).collect();
        for idx in 0..shard_slots.len() {
            locals[idx % worker_count].push(idx);
        }
        let stealers: Vec<Stealer<usize>> = locals.iter().map(|w| w.stealer()).collect();
        std::thread::scope(|scope| {
            for local in &locals {
                let (slots, stealers) = (&shard_slots, &stealers);
                scope.spawn(move || loop {
                    let task = local
                        .pop()
                        .or_else(|| stealers.iter().find_map(|s| s.steal().success()));
                    match task {
                        Some(idx) => slots[idx].lock().expect("worker panicked").step(now),
                        None => break,
                    }
                });
            }
        });
    }

    /// The merge phase: drains queued cross-shard items, applies them
    /// in `(shard, job, node)` order, then completes parent nodes whose
    /// cross-shard children finished. Returns whether anything changed
    /// (the step loop then runs another round).
    fn merge(&mut self, now: SimTime) -> bool {
        let mut progressed = false;

        let mut items: Vec<CrossShardItem> = Vec::new();
        while let Ok(item) = self.rx.try_recv() {
            items.push(item);
        }
        items.sort_by_key(|i| i.sort_key());
        for item in items {
            progressed = true;
            match item {
                CrossShardItem::ConsignChild {
                    parent,
                    node,
                    shard,
                    ajo,
                    staged,
                    user,
                    portfolio,
                    trace,
                } => {
                    if self.links.contains_key(&(parent, node)) {
                        continue; // duplicate emission (e.g. around a replay)
                    }
                    let parent_shard = self.shard_of_job(parent);
                    let meta = ConsignMeta {
                        trace,
                        ..ConsignMeta::default()
                    };
                    match self.shards[shard].consign_internal(
                        *ajo,
                        user,
                        portfolio,
                        staged,
                        Some((parent, node)),
                        now,
                        meta,
                    ) {
                        Ok(child) => {
                            let return_files =
                                self.shards[parent_shard].edge_return_files(parent, node);
                            self.links.insert(
                                (parent, node),
                                Link {
                                    child,
                                    child_shard: shard,
                                    parent_shard,
                                    return_files,
                                    delivered: false,
                                },
                            );
                        }
                        Err(_) => {
                            self.shards[parent_shard].fail_subjob_node(parent, node);
                        }
                    }
                }
                CrossShardItem::ImportXspace {
                    job,
                    node,
                    shard,
                    src_vsite,
                    path,
                    uspace_name,
                    login,
                } => {
                    let data = self.shards[shard].xspace_read(&src_vsite, &path, &login);
                    let owner = self.shard_of_job(job);
                    self.shards[owner].finish_import(job, node, &uspace_name, data, now);
                }
                CrossShardItem::DeliverXspace {
                    job,
                    node,
                    shard,
                    to_vsite,
                    path,
                    data,
                    bytes,
                    login,
                } => {
                    let result = self.shards[shard].xspace_write(&to_vsite, &path, data, &login);
                    let outcome = match result {
                        Ok(()) => TaskOutcome {
                            status: unicore_ajo::ActionStatus::Successful,
                            bytes_staged: bytes,
                            ..Default::default()
                        },
                        Err(e) => TaskOutcome::failure(e),
                    };
                    let owner = self.shard_of_job(job);
                    self.shards[owner].finish_file_node(job, node, outcome, now);
                }
                CrossShardItem::DeliverIncoming {
                    job,
                    node,
                    shard,
                    to_vsite,
                    dest_name,
                    data,
                    bytes,
                    login,
                } => {
                    let result = self.shards[shard]
                        .receive_incoming_file(&to_vsite, &dest_name, data, &login);
                    let outcome = match result {
                        Ok(()) => TaskOutcome {
                            status: unicore_ajo::ActionStatus::Successful,
                            bytes_staged: bytes,
                            ..Default::default()
                        },
                        Err(e) => TaskOutcome::failure(e.to_string()),
                    };
                    let owner = self.shard_of_job(job);
                    self.shards[owner].finish_file_node(job, node, outcome, now);
                }
            }
        }

        // Complete parent nodes whose cross-shard children finished.
        // BTreeMap iteration keeps this in (parent job, node) order.
        let due: Vec<(JobId, ActionId)> = self
            .links
            .iter()
            .filter(|(_, link)| {
                !link.delivered && self.shards[link.child_shard].is_done(link.child)
            })
            .map(|(key, _)| *key)
            .collect();
        for (pjob, pnode) in due {
            let link = self.links.get(&(pjob, pnode)).expect("collected above");
            let (child, child_shard, parent_shard) =
                (link.child, link.child_shard, link.parent_shard);
            let outcome = self.shards[child_shard]
                .outcome(child)
                .cloned()
                .unwrap_or_default();
            let files =
                self.shards[child_shard].collect_return_files(child, &link.return_files.clone());
            self.shards[parent_shard].complete_remote_node_with_files(
                pjob,
                pnode,
                OutcomeNode::Job(outcome),
                files,
            );
            self.links
                .get_mut(&(pjob, pnode))
                .expect("present")
                .delivered = true;
            progressed = true;
        }
        progressed
    }

    /// Earliest future event across every shard's Vsites.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.next_event_time()).min()
    }

    // ---- WAL segments and recovery -----------------------------------

    /// Attaches one WAL segment per shard (`stores.len()` must equal
    /// the shard count). Each shard group-commits its own segment once
    /// per step, independently of its siblings.
    pub fn attach_stores(&mut self, stores: Vec<EventStore>) {
        assert_eq!(stores.len(), self.shards.len(), "one WAL segment per shard");
        for (shard, store) in self.shards.iter_mut().zip(stores) {
            shard.attach_store(store);
        }
    }

    /// Single-segment compatibility: attaches `store` to shard 0. Only
    /// meaningful on a single-shard facade (asserted in debug builds).
    pub fn attach_store(&mut self, store: EventStore) {
        debug_assert_eq!(self.shards.len(), 1, "use attach_stores with >1 shard");
        self.shards[0].attach_store(store);
    }

    /// Shard 0's event store (single-shard compatibility accessor).
    pub fn store_mut(&mut self) -> Option<&mut EventStore> {
        self.shards[0].store_mut()
    }

    /// A specific shard's event store.
    pub fn shard_store_mut(&mut self, shard: usize) -> Option<&mut EventStore> {
        self.shards.get_mut(shard).and_then(|s| s.store_mut())
    }

    /// Whether shard 0 has a store attached.
    pub fn has_store(&self) -> bool {
        self.shards[0].has_store()
    }

    /// Replays every shard's journal, merges the recovery reports, and
    /// rebuilds the cross-shard link registry so parents resume polling
    /// children that live on sibling shards. Children whose consign
    /// never reached the sibling's WAL are simply re-dispatched by the
    /// parent's next step — the merge-phase dedup keeps that exact-once.
    pub fn recover(&mut self, now: SimTime) -> Result<RecoveryReport, NjsError> {
        let mut merged = RecoveryReport::default();
        for shard in &mut self.shards {
            let report = shard.recover(now)?;
            merged.jobs.extend(report.jobs);
            merged.idem.extend(report.idem);
            merged.foreign.extend(report.foreign);
            merged.torn_tail |= report.torn_tail;
        }
        merged.jobs.sort();
        merged.idem.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
        merged.foreign.sort_by_key(|(job, _)| *job);
        self.rebuild_links();
        Ok(merged)
    }

    /// Rebuilds the cross-shard link registry from each shard's
    /// replayed parent pointers (in-shard links were already re-wired
    /// by [`Njs::recover`] itself).
    fn rebuild_links(&mut self) {
        let mut all: Vec<(JobId, JobId, ActionId)> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.parent_links());
        }
        all.sort();
        for (child, pjob, pnode) in all {
            let parent_shard = self.shard_of_job(pjob);
            let child_shard = self.shard_of_job(child);
            if parent_shard == child_shard {
                continue;
            }
            if !self.shards[parent_shard].has_job(pjob) {
                continue; // parent purged; the child is orphaned
            }
            let delivered = self.shards[parent_shard].node_is_terminal(pjob, pnode);
            let return_files = self.shards[parent_shard].edge_return_files(pjob, pnode);
            if !delivered {
                self.shards[parent_shard].mark_node_remote(pjob, pnode);
            }
            self.links.insert(
                (pjob, pnode),
                Link {
                    child,
                    child_shard,
                    parent_shard,
                    return_files,
                    delivered,
                },
            );
        }
    }

    // ---- routed job operations ---------------------------------------

    /// The Query service (ownership enforced by DN).
    pub fn query(&self, job: JobId, dn: &str, detail: DetailLevel) -> Result<JobOutcome, NjsError> {
        self.shards[self.shard_of_job(job)].query(job, dn, detail)
    }

    /// Applies a user control operation. `Abort` also aborts any
    /// cross-shard children linked under the job (recursively).
    pub fn control(
        &mut self,
        job: JobId,
        op: ControlOp,
        dn: &str,
        now: SimTime,
    ) -> Result<bool, NjsError> {
        let shard = self.shard_of_job(job);
        let acted = self.shards[shard].control(job, op, dn, now)?;
        if acted && matches!(op, ControlOp::Abort) {
            let mut stack = vec![job];
            while let Some(parent) = stack.pop() {
                let children: Vec<(JobId, usize)> = self
                    .links
                    .iter()
                    .filter(|((pj, _), link)| *pj == parent && !link.delivered)
                    .map(|(_, link)| (link.child, link.child_shard))
                    .collect();
                for (child, shard) in children {
                    let _ = self.shards[shard].control(child, ControlOp::Abort, dn, now);
                    stack.push(child);
                }
            }
        }
        Ok(acted)
    }

    /// Purges a finished job, its local descendants, and (recursively)
    /// its cross-shard children. Returns bytes freed.
    pub fn purge(&mut self, job: JobId, dn: &str) -> Result<u64, NjsError> {
        let shard = self.shard_of_job(job);
        let mut freed = self.shards[shard].purge(job, dn)?;
        let mut stack = vec![job];
        while let Some(parent) = stack.pop() {
            let children: Vec<((JobId, ActionId), JobId, usize)> = self
                .links
                .iter()
                .filter(|((pj, _), _)| *pj == parent)
                .map(|(key, link)| (*key, link.child, link.child_shard))
                .collect();
            for (key, child, shard) in children {
                self.links.remove(&key);
                if let Ok(n) = self.shards[shard].purge(child, dn) {
                    freed += n;
                }
                stack.push(child);
            }
        }
        Ok(freed)
    }

    /// The List service: root jobs owned by `dn`, merged across shards
    /// in job-id order (identical to a single shard's consign order).
    pub fn list_jobs(&self, dn: &str) -> Vec<JobSummary> {
        if self.shards.len() == 1 {
            return self.shards[0].list_jobs(dn);
        }
        let mut jobs: Vec<JobSummary> = self.shards.iter().flat_map(|s| s.list_jobs(dn)).collect();
        jobs.sort_by_key(|j| j.job);
        jobs
    }

    /// The job's current outcome tree.
    pub fn outcome(&self, job: JobId) -> Option<&JobOutcome> {
        self.shards[self.shard_of_job(job)].outcome(job)
    }

    /// Whether a job has finished.
    pub fn is_done(&self, job: JobId) -> bool {
        self.shards[self.shard_of_job(job)].is_done(job)
    }

    /// The DN of the user who consigned `job`.
    pub fn owner_dn(&self, job: JobId) -> Option<String> {
        self.shards[self.shard_of_job(job)].owner_dn(job)
    }

    /// Consign → finish duration, once finished.
    pub fn turnaround(&self, job: JobId) -> Option<SimTime> {
        self.shards[self.shard_of_job(job)].turnaround(job)
    }

    /// The trace context of a consigned job.
    pub fn trace_of(&self, job: JobId) -> Option<SpanContext> {
        self.shards[self.shard_of_job(job)].trace_of(job)
    }

    /// Fetches a file from a job's Uspace.
    pub fn fetch_uspace_file(&self, job: JobId, name: &str, dn: &str) -> Result<Vec<u8>, NjsError> {
        self.shards[self.shard_of_job(job)].fetch_uspace_file(job, name, dn)
    }

    /// Lists the files in a job's Uspace.
    pub fn list_uspace_files(&self, job: JobId, dn: &str) -> Result<Vec<String>, NjsError> {
        self.shards[self.shard_of_job(job)].list_uspace_files(job, dn)
    }

    /// Completes a node whose work happened at a peer Usite.
    pub fn complete_remote_node(&mut self, job: JobId, node: ActionId, outcome: OutcomeNode) {
        let shard = self.shard_of_job(job);
        self.shards[shard].complete_remote_node(job, node, outcome);
    }

    /// Completes a remote node with returned edge files.
    pub fn complete_remote_node_with_files(
        &mut self,
        job: JobId,
        node: ActionId,
        outcome: OutcomeNode,
        files: Vec<(String, Vec<u8>)>,
    ) {
        let shard = self.shard_of_job(job);
        self.shards[shard].complete_remote_node_with_files(job, node, outcome, files);
    }

    /// Reads edge-result files from a job's Uspace.
    pub fn collect_return_files(&self, job: JobId, names: &[String]) -> Vec<(String, Vec<u8>)> {
        self.shards[self.shard_of_job(job)].collect_return_files(job, names)
    }

    /// Journals a broker placement decision for `job`.
    pub fn journal_placement(
        &mut self,
        job: JobId,
        node: ActionId,
        chosen: &str,
        excluded: &[String],
        attempt: u32,
    ) {
        let shard = self.shard_of_job(job);
        self.shards[shard].journal_placement(job, node, chosen, excluded, attempt);
    }

    /// Sender-side transfer progress note.
    pub fn note_transfer_progress(&mut self, job: JobId, node: ActionId, bytes: u64, total: u64) {
        let shard = self.shard_of_job(job);
        self.shards[shard].note_transfer_progress(job, node, bytes, total);
    }

    // ---- data plane (routed by destination Vsite / probed by key) ----

    /// Receives a whole file pushed from a peer Usite.
    pub fn receive_incoming_file(
        &mut self,
        vsite: &str,
        dest_name: &str,
        data: Vec<u8>,
        login: &str,
    ) -> Result<(), NjsError> {
        let shard = self.shard_of_vsite(vsite);
        self.shards[shard].receive_incoming_file(vsite, dest_name, data, login)
    }

    /// Opens (or resumes) an incoming chunked transfer.
    pub fn transfer_offer(
        &mut self,
        manifest: TransferManifest,
        login: &str,
    ) -> Result<u64, NjsError> {
        let shard = if manifest.to_vsite.usite == self.usite {
            self.shard_of_vsite(&manifest.to_vsite.vsite)
        } else {
            0 // shard 0's validation produces the UnknownVsite error
        };
        self.shards[shard].transfer_offer(manifest, login)
    }

    /// Accepts one chunk of an open incoming transfer, routed to the
    /// shard holding the receiver state.
    pub fn transfer_chunk(
        &mut self,
        origin: &str,
        origin_job: JobId,
        origin_node: ActionId,
        index: u64,
        data: &[u8],
    ) -> Result<(u64, bool), NjsError> {
        let shard = (0..self.shards.len())
            .find(|&i| self.shards[i].has_incoming(origin, origin_job, origin_node))
            .unwrap_or(0);
        self.shards[shard].transfer_chunk(origin, origin_job, origin_node, index, data)
    }

    /// Progress of an incoming transfer.
    pub fn incoming_progress(
        &self,
        origin: &str,
        origin_job: JobId,
        origin_node: ActionId,
    ) -> Option<(u64, u64)> {
        self.shards
            .iter()
            .find_map(|s| s.incoming_progress(origin, origin_job, origin_node))
    }

    /// Times incoming offers resumed from a journaled watermark.
    pub fn transfer_resumes(&self) -> u64 {
        self.shards.iter().map(|s| s.transfer_resumes()).sum()
    }

    // ---- federation plumbing and aggregates --------------------------

    /// Takes everything waiting for the federation layer, concatenated
    /// in shard order.
    pub fn take_outbox(&mut self) -> Vec<OutgoingItem> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.append(&mut shard.take_outbox());
        }
        out
    }

    /// Wires every shard to a telemetry handle (counters are shared via
    /// the registry) and unifies their flight recorders into one ring.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for shard in &mut self.shards {
            shard.set_telemetry(telemetry.clone());
        }
        let flight = self.shards[0].flight().clone();
        for shard in &mut self.shards[1..] {
            shard.set_flight(flight.clone());
        }
    }

    /// The telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        self.shards[0].telemetry()
    }

    /// The shared flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        self.shards[0].flight()
    }

    /// Overrides the slow-dispatch watchdog threshold on every shard.
    pub fn set_watchdog_threshold(&mut self, threshold: SimTime) {
        for shard in &mut self.shards {
            shard.set_watchdog_threshold(threshold);
        }
    }

    /// Jobs flagged by the slow-dispatch watchdog, merged across shards.
    pub fn stuck_jobs_by_vsite(&self, now: SimTime) -> HashMap<String, i64> {
        let mut merged: HashMap<String, i64> = HashMap::new();
        for shard in &self.shards {
            for (vsite, n) in shard.stuck_jobs_by_vsite(now) {
                *merged.entry(vsite).or_default() += n;
            }
        }
        merged
    }

    /// WAL tail repairs summed across every shard's segment.
    pub fn wal_repairs(&self) -> u64 {
        self.shards.iter().map(|s| s.wal_repairs()).sum()
    }

    /// Total incarnations performed across shards.
    pub fn incarnation_count(&self) -> u64 {
        self.shards.iter().map(|s| s.incarnation_count()).sum()
    }

    /// The Monitor service: one merged health report covering every
    /// shard's Vsites, in global registration order, with the WAL
    /// repair counter summed over all segments.
    pub fn monitor_report(&self, now: SimTime) -> MonitorReport {
        let mut report = self.shards[0].monitor_report(now);
        if self.shards.len() > 1 {
            let mut total_stuck: i64 = report.vsites.iter().map(|v| v.stuck_jobs).sum();
            for shard in &self.shards[1..] {
                let r = shard.monitor_report(now);
                total_stuck += r.vsites.iter().map(|v| v.stuck_jobs).sum::<i64>();
                report.vsites.extend(r.vsites);
            }
            let order: HashMap<&String, usize> = self
                .vsite_order
                .iter()
                .enumerate()
                .map(|(i, name)| (name, i))
                .collect();
            report
                .vsites
                .sort_by_key(|v| order.get(&v.vsite).copied().unwrap_or(usize::MAX));
            report
                .metrics
                .counters
                .insert("store.wal.repairs".into(), self.wal_repairs());
            self.telemetry()
                .gauge("njs.watchdog.stuck")
                .set(total_stuck);
        }
        report
    }

    /// The merged per-(Vsite, login) usage report (Vsites are disjoint
    /// across shards, so this is a sorted concatenation).
    pub fn usage_report(&self) -> UsageReport {
        if self.shards.len() == 1 {
            return usage_report(&self.shards[0]);
        }
        let mut agg: BTreeMap<(String, String), UsageRow> = BTreeMap::new();
        for shard in &self.shards {
            for row in usage_report(shard).rows {
                agg.insert((row.vsite.clone(), row.login.clone()), row);
            }
        }
        UsageReport {
            rows: agg.into_values().collect(),
        }
    }

    // ---- Vsite access -------------------------------------------------

    /// Names of the Vsites served here, in registration order.
    pub fn vsite_names(&self) -> &[String] {
        &self.vsite_order
    }

    /// Read access to a Vsite's runtime.
    pub fn vsite(&self, name: &str) -> Option<&VsiteRuntime> {
        self.shards[self.shard_of_vsite(name)].vsite(name)
    }

    /// Mutable access to a Vsite's runtime.
    pub fn vsite_mut(&mut self, name: &str) -> Option<&mut VsiteRuntime> {
        let shard = self.shard_of_vsite(name);
        self.shards[shard].vsite_mut(name)
    }
}

impl From<Njs> for ShardedNjs {
    /// Wraps an already-configured single NJS as a one-shard facade,
    /// preserving all of its state (jobs, Vsites, store, telemetry).
    fn from(njs: Njs) -> Self {
        let usite = njs.usite().to_owned();
        let vsite_order = njs.vsite_names().to_vec();
        let vsite_shard = vsite_order.iter().map(|n| (n.clone(), 0)).collect();
        let (_tx, rx) = unbounded();
        ShardedNjs {
            usite,
            shards: vec![njs],
            vsite_shard,
            vsite_order,
            links: BTreeMap::new(),
            rx,
            workers: 1,
        }
    }
}
