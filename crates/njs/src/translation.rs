//! Translation tables: abstract specifications → local nomenclature.
//!
//! "The UNICORE site administrator together with the Vsite system
//! administrator establishes the environment for running UNICORE. This
//! includes setting up the translation tables for the translation of the
//! abstract job into the real batch job" (§5.5). A [`TranslationTable`]
//! holds exactly those site-configured mappings; [`incarnate_execute`]
//! applies them to produce a vendor submit script.

use std::collections::HashMap;
use unicore_ajo::{ExecuteKind, ResourceRequest};
use unicore_batch::script::{memory_directive, processors_directive, time_directive};
use unicore_codec::{CodecError, DerCodec, Fields, Value};
use unicore_resources::Architecture;

/// Per-Vsite translation configuration.
#[derive(Debug, Clone)]
pub struct TranslationTable {
    /// Target architecture (selects the directive dialect).
    pub arch: Architecture,
    /// Batch queue jobs are submitted to.
    pub queue: String,
    /// Abstract compiler option → concrete flag (e.g. `"O3"` → `"-O3"`).
    pub compiler_options: HashMap<String, String>,
    /// Abstract library name → concrete linker argument.
    pub libraries: HashMap<String, String>,
    /// Template for the job working directory; `{job}` is substituted.
    pub workdir_template: String,
}

impl TranslationTable {
    /// The stock table a site administrator would start from for `arch`.
    pub fn for_architecture(arch: Architecture) -> Self {
        let mut compiler_options = HashMap::new();
        let mut libraries = HashMap::new();
        // Abstract names on the left are what the JPA lets users say;
        // right-hand sides are each machine's own spelling.
        match arch {
            Architecture::CrayT3e => {
                compiler_options.insert("O2".into(), "-O2".into());
                compiler_options.insert("O3".into(), "-O3,unroll2".into());
                compiler_options.insert("debug".into(), "-g".into());
                libraries.insert("blas".into(), "-lsci".into());
                libraries.insert("mpi".into(), "-lmpi".into());
            }
            Architecture::FujitsuVpp700 => {
                compiler_options.insert("O2".into(), "-Kfast".into());
                compiler_options.insert("O3".into(), "-Kfast,parallel".into());
                compiler_options.insert("debug".into(), "-g".into());
                libraries.insert("blas".into(), "-lssl2vp".into());
                libraries.insert("mpi".into(), "-lmpi".into());
            }
            Architecture::IbmSp2 => {
                compiler_options.insert("O2".into(), "-O2".into());
                compiler_options.insert("O3".into(), "-O3 -qhot".into());
                compiler_options.insert("debug".into(), "-g".into());
                libraries.insert("blas".into(), "-lessl".into());
                libraries.insert("mpi".into(), "-lmpci".into());
            }
            Architecture::NecSx4 => {
                compiler_options.insert("O2".into(), "-C opt".into());
                compiler_options.insert("O3".into(), "-C hopt".into());
                compiler_options.insert("debug".into(), "-C debug".into());
                libraries.insert("blas".into(), "-lblas_sx".into());
                libraries.insert("mpi".into(), "-lmpi_sx".into());
            }
            Architecture::Generic => {
                compiler_options.insert("O2".into(), "-O2".into());
                compiler_options.insert("O3".into(), "-O3".into());
                compiler_options.insert("debug".into(), "-g".into());
                libraries.insert("blas".into(), "-lblas".into());
                libraries.insert("mpi".into(), "-lmpich".into());
            }
        }
        TranslationTable {
            arch,
            queue: "batch".into(),
            compiler_options,
            libraries,
            workdir_template: "/unicore/uspace/{job}".into(),
        }
    }

    /// Translates an abstract compiler option (unknown options pass
    /// through prefixed with `-`, the common convention).
    pub fn option(&self, abstract_name: &str) -> String {
        self.compiler_options
            .get(abstract_name)
            .cloned()
            .unwrap_or_else(|| format!("-{abstract_name}"))
    }

    /// Translates an abstract library name.
    pub fn library(&self, abstract_name: &str) -> String {
        self.libraries
            .get(abstract_name)
            .cloned()
            .unwrap_or_else(|| format!("-l{abstract_name}"))
    }

    /// The working directory for a job.
    pub fn workdir(&self, job: &str) -> String {
        self.workdir_template.replace("{job}", job)
    }
}

/// Renders the vendor submit script for an execute-style task.
///
/// This is the heart of "seamlessness": the same [`ExecuteKind`] yields a
/// different — but semantically equivalent — script on every architecture.
pub fn incarnate_execute(
    table: &TranslationTable,
    kind: &ExecuteKind,
    resources: &ResourceRequest,
    login: &str,
    job_name: &str,
) -> String {
    incarnate_execute_in_queue(table, kind, resources, login, job_name, &table.queue)
}

/// Like [`incarnate_execute`], with an explicit destination queue name
/// (the NJS passes the queue class it selected).
pub fn incarnate_execute_in_queue(
    table: &TranslationTable,
    kind: &ExecuteKind,
    resources: &ResourceRequest,
    login: &str,
    job_name: &str,
    queue: &str,
) -> String {
    let arch = table.arch;
    let mut script = String::with_capacity(512);
    script.push_str("#!/bin/sh\n");
    script.push_str(&processors_directive(arch, resources.processors));
    script.push('\n');
    script.push_str(&time_directive(arch, resources.run_time_secs));
    script.push('\n');
    script.push_str(&memory_directive(arch, resources.memory_mb));
    script.push('\n');
    script.push_str(&format!("# queue: {queue}  user: {login}\n"));
    script.push_str(&format!("cd {}\n", table.workdir(job_name)));

    match kind {
        ExecuteKind::User {
            executable,
            arguments,
            environment,
        } => {
            for (k, v) in environment {
                script.push_str(&format!("{k}={v} export {k}\n"));
            }
            script.push_str(&format!("./{executable}"));
            for arg in arguments {
                script.push(' ');
                script.push_str(arg);
            }
            script.push('\n');
        }
        ExecuteKind::Script { script: body } => {
            script.push_str(body);
            if !body.ends_with('\n') {
                script.push('\n');
            }
        }
        ExecuteKind::Compile {
            sources,
            options,
            output,
        } => {
            script.push_str(arch.f90_compiler());
            for opt in options {
                script.push(' ');
                script.push_str(&table.option(opt));
            }
            script.push_str(" -c");
            for src in sources {
                script.push(' ');
                script.push_str(src);
            }
            script.push_str(&format!(" -o {output}\n"));
        }
        ExecuteKind::Link {
            objects,
            libraries,
            output,
        } => {
            script.push_str(arch.f90_compiler());
            for obj in objects {
                script.push(' ');
                script.push_str(obj);
            }
            for lib in libraries {
                script.push(' ');
                script.push_str(&table.library(lib));
            }
            script.push_str(&format!(" -o {output}\n"));
        }
    }
    script
}

impl DerCodec for TranslationTable {
    fn to_value(&self) -> Value {
        let mut options: Vec<(&String, &String)> = self.compiler_options.iter().collect();
        options.sort();
        let mut libraries: Vec<(&String, &String)> = self.libraries.iter().collect();
        libraries.sort();
        let pair_seq = |pairs: Vec<(&String, &String)>| {
            Value::Sequence(
                pairs
                    .into_iter()
                    .map(|(k, v)| Value::Sequence(vec![Value::string(k), Value::string(v)]))
                    .collect(),
            )
        };
        Value::Sequence(vec![
            self.arch.to_value(),
            Value::string(&self.queue),
            pair_seq(options),
            pair_seq(libraries),
            Value::string(&self.workdir_template),
        ])
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let mut f = Fields::open(value, "TranslationTable")?;
        let arch = Architecture::from_value(f.next_value()?)?;
        let queue = f.next_string()?;
        let read_pairs =
            |items: &[Value]| -> Result<std::collections::HashMap<String, String>, CodecError> {
                let mut map = std::collections::HashMap::new();
                for item in items {
                    let mut pf = Fields::open(item, "translation pair")?;
                    map.insert(pf.next_string()?, pf.next_string()?);
                    pf.finish()?;
                }
                Ok(map)
            };
        let compiler_options = read_pairs(f.next_sequence()?)?;
        let libraries = read_pairs(f.next_sequence()?)?;
        let workdir_template = f.next_string()?;
        f.finish()?;
        Ok(TranslationTable {
            arch,
            queue,
            compiler_options,
            libraries,
            workdir_template,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicore_batch::script_matches_dialect;

    fn resources() -> ResourceRequest {
        ResourceRequest::minimal()
            .with_processors(64)
            .with_run_time(3_600)
            .with_memory(2_048)
    }

    #[test]
    fn compile_task_uses_native_compiler() {
        let kind = ExecuteKind::Compile {
            sources: vec!["main.f90".into()],
            options: vec!["O3".into()],
            output: "main.o".into(),
        };
        let t3e = incarnate_execute(
            &TranslationTable::for_architecture(Architecture::CrayT3e),
            &kind,
            &resources(),
            "alice1",
            "J1",
        );
        assert!(
            t3e.contains("f90 -O3,unroll2 -c main.f90 -o main.o"),
            "{t3e}"
        );
        let sp2 = incarnate_execute(
            &TranslationTable::for_architecture(Architecture::IbmSp2),
            &kind,
            &resources(),
            "alice1",
            "J1",
        );
        assert!(
            sp2.contains("xlf90 -O3 -qhot -c main.f90 -o main.o"),
            "{sp2}"
        );
    }

    #[test]
    fn link_task_translates_libraries() {
        let kind = ExecuteKind::Link {
            objects: vec!["main.o".into()],
            libraries: vec!["blas".into(), "mpi".into()],
            output: "model".into(),
        };
        let sx4 = incarnate_execute(
            &TranslationTable::for_architecture(Architecture::NecSx4),
            &kind,
            &resources(),
            "u",
            "J1",
        );
        assert!(sx4.contains("-lblas_sx"), "{sx4}");
        assert!(sx4.contains("-lmpi_sx"), "{sx4}");
        let t3e = incarnate_execute(
            &TranslationTable::for_architecture(Architecture::CrayT3e),
            &kind,
            &resources(),
            "u",
            "J1",
        );
        assert!(t3e.contains("-lsci"), "{t3e}"); // BLAS is libsci on the T3E
    }

    #[test]
    fn scripts_carry_resource_directives_in_dialect() {
        let kind = ExecuteKind::Script {
            script: "./run_model\n".into(),
        };
        for arch in Architecture::ALL {
            let s = incarnate_execute(
                &TranslationTable::for_architecture(arch),
                &kind,
                &resources(),
                "u",
                "J9",
            );
            assert!(script_matches_dialect(&s, arch), "{arch:?}:\n{s}");
            assert!(s.contains("64"), "{arch:?} missing proc count");
            assert!(s.contains("cd /unicore/uspace/J9"), "{arch:?}");
        }
    }

    #[test]
    fn same_abstract_task_differs_across_architectures() {
        let kind = ExecuteKind::Compile {
            sources: vec!["a.f90".into()],
            options: vec!["O2".into()],
            output: "a.o".into(),
        };
        let scripts: Vec<String> = Architecture::ALL
            .iter()
            .map(|&arch| {
                incarnate_execute(
                    &TranslationTable::for_architecture(arch),
                    &kind,
                    &resources(),
                    "u",
                    "J1",
                )
            })
            .collect();
        // Pairwise distinct: every architecture gets its own incarnation.
        for i in 0..scripts.len() {
            for j in i + 1..scripts.len() {
                assert_ne!(scripts[i], scripts[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn user_task_exports_environment() {
        let kind = ExecuteKind::User {
            executable: "solver".into(),
            arguments: vec!["--n".into(), "100".into()],
            environment: vec![("OMP_NUM_THREADS".into(), "8".into())],
        };
        let s = incarnate_execute(
            &TranslationTable::for_architecture(Architecture::Generic),
            &kind,
            &resources(),
            "u",
            "J1",
        );
        assert!(s.contains("OMP_NUM_THREADS=8 export OMP_NUM_THREADS"));
        assert!(s.contains("./solver --n 100"));
    }

    #[test]
    fn unknown_abstractions_pass_through() {
        let t = TranslationTable::for_architecture(Architecture::Generic);
        assert_eq!(t.option("fastmath"), "-fastmath");
        assert_eq!(t.library("hdf5"), "-lhdf5");
    }

    #[test]
    fn workdir_substitution() {
        let t = TranslationTable::for_architecture(Architecture::Generic);
        assert_eq!(t.workdir("J00000007"), "/unicore/uspace/J00000007");
    }
}
