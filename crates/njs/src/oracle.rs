//! The work oracle: what a task "really does" when it runs.
//!
//! The batch substrate needs a [`WorkModel`] (runtime, exit code, outputs)
//! for every incarnated task. A real system discovers this by running the
//! job; the simulation derives it deterministically from the task itself.
//!
//! Script tasks may use a small pseudo-language the oracle interprets,
//! which lets examples and tests express meaningful workloads:
//!
//! ```text
//! sleep 30          # adds 30 s of runtime
//! produce out.nc 4096   # writes a 4 KiB output file into the Uspace
//! echo starting run     # appends to stdout
//! exit 2                # exit with code 2
//! ```
//!
//! Any other line contributes a small default cost. Compile/Link/User
//! tasks get hash-derived runtimes (a fixed fraction band of the request)
//! and produce their declared outputs.

use unicore_ajo::{AbstractTask, ExecuteKind, ResourceRequest, TaskKind};
use unicore_batch::WorkModel;
use unicore_crypto::sha256;
use unicore_sim::{secs, secs_f64, SimTime};

/// Decides the simulated behaviour of an execute task.
pub trait WorkOracle: Send {
    /// Produces the work model for `task` given its resource request.
    fn work_for(&self, task: &AbstractTask, resources: &ResourceRequest) -> WorkModel;
}

/// The standard deterministic oracle described in the module docs.
pub struct DeterministicOracle {
    /// Base cost charged per plain script line, seconds.
    pub per_line_secs: f64,
}

impl Default for DeterministicOracle {
    fn default() -> Self {
        DeterministicOracle { per_line_secs: 1.0 }
    }
}

/// Deterministic fraction in `[0.3, 0.9)` derived from content bytes.
fn hash_fraction(bytes: &[u8]) -> f64 {
    let digest = sha256(bytes);
    let x = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
    0.3 + 0.6 * (x as f64 / u64::MAX as f64)
}

/// Deterministic synthetic file content of `len` bytes seeded by `name`.
pub fn synthetic_content(name: &str, len: usize) -> Vec<u8> {
    let seed = sha256(name.as_bytes());
    (0..len).map(|i| seed[i % 32] ^ (i / 32) as u8).collect()
}

impl WorkOracle for DeterministicOracle {
    fn work_for(&self, task: &AbstractTask, resources: &ResourceRequest) -> WorkModel {
        let TaskKind::Execute(kind) = &task.kind else {
            // File tasks never reach the batch system; zero-cost model.
            return WorkModel::succeed_after(0);
        };
        match kind {
            ExecuteKind::Script { script } => interpret_script(script, self.per_line_secs),
            ExecuteKind::Compile {
                sources, output, ..
            } => {
                // Compilation: ~2 s per source, produces the object file.
                let runtime = secs(2 * sources.len() as u64);
                WorkModel {
                    actual_runtime: runtime.max(secs(1)),
                    exit_code: 0,
                    stdout: format!("compiled {} source file(s)\n", sources.len()).into_bytes(),
                    stderr: Vec::new(),
                    output_files: vec![(output.clone(), synthetic_content(output, 8_192))],
                }
            }
            ExecuteKind::Link {
                objects, output, ..
            } => {
                let runtime = secs(1 + objects.len() as u64 / 4);
                WorkModel {
                    actual_runtime: runtime,
                    exit_code: 0,
                    stdout: format!("linked {output}\n").into_bytes(),
                    stderr: Vec::new(),
                    output_files: vec![(output.clone(), synthetic_content(output, 65_536))],
                }
            }
            ExecuteKind::User {
                executable,
                arguments,
                ..
            } => {
                // Hash-derived fraction of the requested wall time.
                let mut material = executable.as_bytes().to_vec();
                for a in arguments {
                    material.extend_from_slice(a.as_bytes());
                }
                let frac = hash_fraction(&material);
                let runtime = secs_f64(resources.run_time_secs as f64 * frac).max(secs(1));
                WorkModel {
                    actual_runtime: runtime,
                    exit_code: 0,
                    stdout: format!("{executable}: done\n").into_bytes(),
                    stderr: Vec::new(),
                    output_files: Vec::new(),
                }
            }
        }
    }
}

/// Interprets the pseudo-script language.
fn interpret_script(script: &str, per_line_secs: f64) -> WorkModel {
    let mut runtime: SimTime = 0;
    let mut exit_code = 0i32;
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    let mut output_files = Vec::new();
    for line in script.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("sleep") => {
                let secs_arg: f64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);
                runtime += secs_f64(secs_arg);
            }
            Some("produce") => {
                let name = parts.next().unwrap_or("out.dat").to_owned();
                let len: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
                runtime += secs_f64(per_line_secs);
                output_files.push((name.clone(), synthetic_content(&name, len)));
            }
            Some("echo") => {
                let rest: Vec<&str> = parts.collect();
                stdout.extend_from_slice(rest.join(" ").as_bytes());
                stdout.push(b'\n');
                runtime += secs_f64(per_line_secs * 0.1);
            }
            Some("fail") | Some("exit") => {
                let code: i32 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
                if code != 0 {
                    exit_code = code;
                    stderr.extend_from_slice(b"script exited with error\n");
                }
                break;
            }
            _ => {
                // Unknown command: a plain workload line.
                runtime += secs_f64(per_line_secs);
            }
        }
    }
    WorkModel {
        actual_runtime: runtime.max(secs(1)),
        exit_code,
        stdout,
        stderr,
        output_files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicore_sim::SEC;

    fn task(kind: ExecuteKind) -> AbstractTask {
        AbstractTask {
            name: "t".into(),
            resources: ResourceRequest::minimal().with_run_time(1_000),
            kind: TaskKind::Execute(kind),
        }
    }

    fn oracle() -> DeterministicOracle {
        DeterministicOracle::default()
    }

    #[test]
    fn sleep_accumulates_runtime() {
        let w = oracle().work_for(
            &task(ExecuteKind::Script {
                script: "sleep 30\nsleep 12.5\n".into(),
            }),
            &ResourceRequest::minimal(),
        );
        assert_eq!(w.actual_runtime, secs_f64(42.5));
        assert_eq!(w.exit_code, 0);
    }

    #[test]
    fn produce_creates_output() {
        let w = oracle().work_for(
            &task(ExecuteKind::Script {
                script: "produce result.nc 2048\n".into(),
            }),
            &ResourceRequest::minimal(),
        );
        assert_eq!(w.output_files.len(), 1);
        assert_eq!(w.output_files[0].0, "result.nc");
        assert_eq!(w.output_files[0].1.len(), 2048);
    }

    #[test]
    fn exit_sets_code_and_stops() {
        let w = oracle().work_for(
            &task(ExecuteKind::Script {
                script: "echo before\nexit 3\nproduce never.dat 10\n".into(),
            }),
            &ResourceRequest::minimal(),
        );
        assert_eq!(w.exit_code, 3);
        assert_eq!(w.stdout, b"before\n");
        assert!(w.output_files.is_empty());
    }

    #[test]
    fn exit_zero_is_success() {
        let w = oracle().work_for(
            &task(ExecuteKind::Script {
                script: "exit 0\n".into(),
            }),
            &ResourceRequest::minimal(),
        );
        assert_eq!(w.exit_code, 0);
    }

    #[test]
    fn comments_and_blank_lines_free() {
        let w = oracle().work_for(
            &task(ExecuteKind::Script {
                script: "# just a comment\n\n   \n".into(),
            }),
            &ResourceRequest::minimal(),
        );
        // Clamped to the 1 s minimum.
        assert_eq!(w.actual_runtime, SEC);
    }

    #[test]
    fn compile_produces_object() {
        let w = oracle().work_for(
            &task(ExecuteKind::Compile {
                sources: vec!["a.f90".into(), "b.f90".into()],
                options: vec![],
                output: "ab.o".into(),
            }),
            &ResourceRequest::minimal(),
        );
        assert_eq!(w.actual_runtime, 4 * SEC);
        assert_eq!(w.output_files[0].0, "ab.o");
    }

    #[test]
    fn link_produces_executable() {
        let w = oracle().work_for(
            &task(ExecuteKind::Link {
                objects: vec!["a.o".into()],
                libraries: vec![],
                output: "prog".into(),
            }),
            &ResourceRequest::minimal(),
        );
        assert_eq!(w.output_files[0].0, "prog");
        assert!(!w.output_files[0].1.is_empty());
    }

    #[test]
    fn user_task_runtime_within_band() {
        let resources = ResourceRequest::minimal().with_run_time(1_000);
        let w = oracle().work_for(
            &task(ExecuteKind::User {
                executable: "model".into(),
                arguments: vec!["--x".into()],
                environment: vec![],
            }),
            &resources,
        );
        assert!(w.actual_runtime >= secs_f64(300.0));
        assert!(w.actual_runtime < secs_f64(900.0));
    }

    #[test]
    fn oracle_is_deterministic() {
        let t = task(ExecuteKind::User {
            executable: "model".into(),
            arguments: vec![],
            environment: vec![],
        });
        let r = ResourceRequest::minimal();
        assert_eq!(oracle().work_for(&t, &r), oracle().work_for(&t, &r));
    }

    #[test]
    fn synthetic_content_deterministic_and_distinct() {
        assert_eq!(synthetic_content("a", 100), synthetic_content("a", 100));
        assert_ne!(synthetic_content("a", 100), synthetic_content("b", 100));
        assert_eq!(synthetic_content("x", 0).len(), 0);
    }
}

/// An oracle that models parallel speedup with Amdahl's law: a user task's
/// runtime shrinks with its processor request,
/// `t(p) = t₁ · (s + (1 − s)/p)`, where `s` is the serial fraction.
///
/// Useful for broker experiments where the *shape* of the request matters;
/// the default [`DeterministicOracle`] charges a fixed fraction of the
/// requested wall time regardless of width.
pub struct AmdahlOracle {
    /// Serial fraction `s` (0.0 = perfectly parallel, 1.0 = serial).
    pub serial_fraction: f64,
    /// Single-processor runtime as a fraction of the requested wall time.
    pub base_fraction: f64,
    /// Fallback for script/compile/link tasks.
    inner: DeterministicOracle,
}

impl AmdahlOracle {
    /// An oracle with the given serial fraction; single-processor runtime
    /// is 80% of the requested wall time.
    pub fn new(serial_fraction: f64) -> Self {
        AmdahlOracle {
            serial_fraction: serial_fraction.clamp(0.0, 1.0),
            base_fraction: 0.8,
            inner: DeterministicOracle::default(),
        }
    }

    /// The Amdahl speedup factor for `p` processors.
    pub fn speedup(&self, p: u32) -> f64 {
        let s = self.serial_fraction;
        1.0 / (s + (1.0 - s) / p.max(1) as f64)
    }
}

impl WorkOracle for AmdahlOracle {
    fn work_for(&self, task: &AbstractTask, resources: &ResourceRequest) -> WorkModel {
        match &task.kind {
            TaskKind::Execute(ExecuteKind::User { executable, .. }) => {
                let t1 = resources.run_time_secs as f64 * self.base_fraction;
                let runtime = t1 / self.speedup(resources.processors);
                WorkModel {
                    actual_runtime: secs_f64(runtime).max(secs(1)),
                    exit_code: 0,
                    stdout: format!("{executable}: done on {} PEs\n", resources.processors)
                        .into_bytes(),
                    stderr: Vec::new(),
                    output_files: Vec::new(),
                }
            }
            _ => self.inner.work_for(task, resources),
        }
    }
}

#[cfg(test)]
mod amdahl_tests {
    use super::*;

    fn user_task() -> AbstractTask {
        AbstractTask {
            name: "sim".into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::Execute(ExecuteKind::User {
                executable: "model".into(),
                arguments: vec![],
                environment: vec![],
            }),
        }
    }

    #[test]
    fn more_processors_run_faster() {
        let oracle = AmdahlOracle::new(0.05);
        let narrow = oracle.work_for(
            &user_task(),
            &ResourceRequest::minimal()
                .with_processors(1)
                .with_run_time(10_000),
        );
        let wide = oracle.work_for(
            &user_task(),
            &ResourceRequest::minimal()
                .with_processors(64)
                .with_run_time(10_000),
        );
        assert!(wide.actual_runtime < narrow.actual_runtime);
        // ...but bounded by the serial fraction.
        let very_wide = oracle.work_for(
            &user_task(),
            &ResourceRequest::minimal()
                .with_processors(4096)
                .with_run_time(10_000),
        );
        let serial_floor = secs_f64(10_000.0 * 0.8 * 0.05);
        assert!(very_wide.actual_runtime >= serial_floor);
    }

    #[test]
    fn perfectly_parallel_scales_linearly() {
        let oracle = AmdahlOracle::new(0.0);
        assert!((oracle.speedup(64) - 64.0).abs() < 1e-9);
        let one = oracle.work_for(
            &user_task(),
            &ResourceRequest::minimal()
                .with_processors(1)
                .with_run_time(6_400),
        );
        let sixty_four = oracle.work_for(
            &user_task(),
            &ResourceRequest::minimal()
                .with_processors(64)
                .with_run_time(6_400),
        );
        assert_eq!(one.actual_runtime / 64, sixty_four.actual_runtime);
    }

    #[test]
    fn fully_serial_never_speeds_up() {
        let oracle = AmdahlOracle::new(1.0);
        assert!((oracle.speedup(1000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_user_tasks_fall_back() {
        let oracle = AmdahlOracle::new(0.1);
        let script = AbstractTask {
            name: "s".into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::Execute(ExecuteKind::Script {
                script: "sleep 30\n".into(),
            }),
        };
        let w = oracle.work_for(&script, &ResourceRequest::minimal());
        assert_eq!(w.actual_runtime, secs(30));
    }

    #[test]
    fn works_as_njs_oracle() {
        use crate::njs::Njs;
        use crate::translation::TranslationTable;
        use unicore_ajo::{AbstractJob, ActionId, GraphNode, UserAttributes, VsiteAddress};
        use unicore_gateway::MappedUser;
        use unicore_resources::{deployment_page, Architecture};

        let mut njs = Njs::with_oracle("FZJ", Box::new(AmdahlOracle::new(0.05)));
        njs.add_vsite(
            deployment_page("FZJ", "T3E", Architecture::CrayT3e),
            TranslationTable::for_architecture(Architecture::CrayT3e),
        );
        let mut job = AbstractJob::new(
            "amdahl",
            VsiteAddress::new("FZJ", "T3E"),
            UserAttributes::new("CN=a, C=DE, O=x, OU=y", "g"),
        );
        job.nodes.push((
            ActionId(1),
            GraphNode::Task(AbstractTask {
                name: "wide run".into(),
                resources: ResourceRequest::minimal()
                    .with_processors(128)
                    .with_run_time(7_200),
                kind: TaskKind::Execute(ExecuteKind::User {
                    executable: "model".into(),
                    arguments: vec![],
                    environment: vec![],
                }),
            }),
        ));
        let user = MappedUser {
            dn: "CN=a, C=DE, O=x, OU=y".into(),
            login: "a".into(),
            account_group: "g".into(),
        };
        let id = njs.consign(job, user, 0).unwrap();
        let mut now = 0;
        njs.step(now);
        while !njs.is_done(id) && now < unicore_sim::HOUR * 4 {
            now = njs
                .next_event_time()
                .unwrap_or(now + unicore_sim::SEC)
                .max(now + 1);
            njs.step(now);
        }
        assert!(njs.outcome(id).unwrap().status.is_success());
        // 128-way Amdahl at s=0.05: speedup ≈ 16.9, so ~341 s versus 5760 serial.
        let t = njs.turnaround(id).unwrap();
        assert!(t < unicore_sim::secs(600), "turnaround {t}");
    }
}
