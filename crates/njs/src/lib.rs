//! # unicore-njs
//!
//! The Network Job Supervisor — the server-level engine of the UNICORE
//! architecture (§4.2, §5.5): it turns Abstract Job Objects into real
//! batch jobs via site-configured translation tables, creates job
//! directories (Uspaces), stages data, dispatches dependency-ordered work
//! to the batch subsystems, forwards job groups destined for other Usites,
//! collects outputs, and answers the Control/List/Query services.
//!
//! - [`translation`] — the translation tables and script incarnation
//! - [`oracle`] — the deterministic work model that stands in for real
//!   computation in the simulated batch systems
//! - [`njs`] — the engine itself
//! - [`shard`] — the multi-core facade: N independent shards stepped by
//!   work-stealing workers with a deterministic cross-shard merge phase

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod error;
pub mod njs;
pub mod oracle;
pub mod shard;
pub mod translation;

pub use accounting::{usage_report, UsageReport, UsageRow};
pub use error::NjsError;
pub use njs::{ConsignMeta, Njs, OutgoingItem, RecoveryReport, VsiteRuntime, INCOMING_PREFIX};
pub use oracle::{synthetic_content, AmdahlOracle, DeterministicOracle, WorkOracle};
pub use shard::ShardedNjs;
pub use translation::{incarnate_execute, incarnate_execute_in_queue, TranslationTable};
