//! Integration tests for the NJS engine: consignment, incarnation,
//! dependency-ordered execution, data staging, sub-jobs, and services.

use unicore_ajo::*;
use unicore_gateway::MappedUser;
use unicore_njs::{Njs, OutgoingItem, TranslationTable, INCOMING_PREFIX};
use unicore_resources::{deployment_page, Architecture};
use unicore_sim::{SimTime, HOUR, SEC};

const DN: &str = "C=DE, O=FZJ, OU=ZAM, CN=alice";

fn user() -> MappedUser {
    MappedUser {
        dn: DN.into(),
        login: "alice1".into(),
        account_group: "zam".into(),
    }
}

fn attrs() -> UserAttributes {
    UserAttributes::new(DN, "zam")
}

/// An NJS for FZJ with a T3E and an SP2 Vsite.
fn fzj() -> Njs {
    let mut njs = Njs::new("FZJ");
    njs.add_vsite(
        deployment_page("FZJ", "T3E", Architecture::CrayT3e),
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    njs.add_vsite(
        deployment_page("FZJ", "SP2", Architecture::IbmSp2),
        TranslationTable::for_architecture(Architecture::IbmSp2),
    );
    njs
}

fn script_node(name: &str, script: &str) -> GraphNode {
    GraphNode::Task(AbstractTask {
        name: name.into(),
        resources: ResourceRequest::minimal().with_run_time(3_600),
        kind: TaskKind::Execute(ExecuteKind::Script {
            script: script.into(),
        }),
    })
}

/// Runs the NJS until the job finishes or `limit` is reached.
fn run_until_done(njs: &mut Njs, job: JobId, limit: SimTime) -> SimTime {
    let mut now = 0;
    njs.step(now);
    while !njs.is_done(job) && now < limit {
        now = njs.next_event_time().unwrap_or(now + SEC).max(now + 1);
        njs.step(now);
    }
    now
}

#[test]
fn single_script_task_runs_to_success() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("hello", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((
        ActionId(1),
        script_node("hi", "echo hello unicore\nsleep 10\n"),
    ));
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, HOUR);
    let outcome = njs.outcome(id).unwrap();
    assert_eq!(outcome.status, ActionStatus::Successful);
    let OutcomeNode::Task(t) = outcome.child(ActionId(1)).unwrap() else {
        panic!()
    };
    assert_eq!(t.exit_code, Some(0));
    assert_eq!(t.stdout, b"hello unicore\n");
    assert_eq!(njs.incarnation_count(), 1);
}

#[test]
fn dependency_chain_respected_and_files_flow() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("pipeline", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((
        ActionId(1),
        script_node("produce", "sleep 5\nproduce mid.dat 1000\n"),
    ));
    job.nodes
        .push((ActionId(2), script_node("consume", "sleep 3\n")));
    job.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["mid.dat".into()],
    });
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, HOUR);
    assert_eq!(njs.outcome(id).unwrap().status, ActionStatus::Successful);
    // mid.dat exists in the shared Uspace.
    let v = njs.vsite("T3E").unwrap();
    assert!(v.vspace.uspace(id).unwrap().exists("mid.dat"));
    // Tasks ran in order (both incarnated).
    assert_eq!(njs.incarnation_count(), 2);
}

#[test]
fn failed_predecessor_kills_successors() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("failing", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes
        .push((ActionId(1), script_node("bad", "exit 2\n")));
    job.nodes
        .push((ActionId(2), script_node("never", "sleep 1\n")));
    job.nodes
        .push((ActionId(3), script_node("also-never", "sleep 1\n")));
    job.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec![],
    });
    job.dependencies.push(Dependency {
        from: ActionId(2),
        to: ActionId(3),
        files: vec![],
    });
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, HOUR);
    let outcome = njs.outcome(id).unwrap();
    assert_eq!(outcome.status, ActionStatus::NotSuccessful);
    assert_eq!(
        outcome.child(ActionId(1)).unwrap().status(),
        ActionStatus::NotSuccessful
    );
    assert_eq!(
        outcome.child(ActionId(2)).unwrap().status(),
        ActionStatus::Killed
    );
    assert_eq!(
        outcome.child(ActionId(3)).unwrap().status(),
        ActionStatus::Killed
    );
    // Only the first task ever reached the batch system.
    assert_eq!(njs.incarnation_count(), 1);
}

#[test]
fn compile_link_execute_pipeline() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("cle", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.portfolio.push(PortfolioFile {
        name: "main.f90".into(),
        data: b"program main\nend program\n".to_vec().into(),
    });
    job.nodes.push((
        ActionId(1),
        GraphNode::Task(AbstractTask {
            name: "import source".into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::File(FileKind::Import {
                source: DataLocation::Workstation {
                    path: "main.f90".into(),
                },
                uspace_name: "main.f90".into(),
            }),
        }),
    ));
    job.nodes.push((
        ActionId(2),
        GraphNode::Task(AbstractTask {
            name: "compile".into(),
            resources: ResourceRequest::minimal().with_run_time(600),
            kind: TaskKind::Execute(ExecuteKind::Compile {
                sources: vec!["main.f90".into()],
                options: vec!["O3".into()],
                output: "main.o".into(),
            }),
        }),
    ));
    job.nodes.push((
        ActionId(3),
        GraphNode::Task(AbstractTask {
            name: "link".into(),
            resources: ResourceRequest::minimal().with_run_time(600),
            kind: TaskKind::Execute(ExecuteKind::Link {
                objects: vec!["main.o".into()],
                libraries: vec!["blas".into()],
                output: "model".into(),
            }),
        }),
    ));
    job.nodes.push((
        ActionId(4),
        GraphNode::Task(AbstractTask {
            name: "run".into(),
            resources: ResourceRequest::minimal()
                .with_processors(32)
                .with_run_time(3_600),
            kind: TaskKind::Execute(ExecuteKind::User {
                executable: "model".into(),
                arguments: vec![],
                environment: vec![],
            }),
        }),
    ));
    job.nodes.push((
        ActionId(5),
        GraphNode::Task(AbstractTask {
            name: "export".into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::File(FileKind::Export {
                uspace_name: "model".into(),
                destination: DataLocation::Xspace {
                    vsite: VsiteAddress::new("FZJ", "T3E"),
                    path: "/home/alice/model".into(),
                },
            }),
        }),
    ));
    for (from, to) in [(1u64, 2u64), (2, 3), (3, 4), (4, 5)] {
        job.dependencies.push(Dependency {
            from: ActionId(from),
            to: ActionId(to),
            files: vec![],
        });
    }
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, HOUR);
    let outcome = njs.outcome(id).unwrap();
    assert_eq!(outcome.status, ActionStatus::Successful, "{outcome:?}");
    // The linked executable was exported to the Xspace.
    let v = njs.vsite("T3E").unwrap();
    assert!(v.vspace.xspace_ref().exists("/home/alice/model"));
}

#[test]
fn local_subjob_on_other_vsite() {
    let mut njs = fzj();
    // Pre-processing on the SP2, main run on the T3E.
    let mut sub = AbstractJob::new("prep", VsiteAddress::new("FZJ", "SP2"), attrs());
    sub.nodes.push((
        ActionId(1),
        script_node("preprocess", "sleep 4\nproduce grid.dat 2048\n"),
    ));
    let mut job = AbstractJob::new("coupled", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((ActionId(1), GraphNode::SubJob(sub)));
    job.nodes
        .push((ActionId(2), script_node("main", "sleep 8\n")));
    job.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec![],
    });
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, HOUR);
    let outcome = njs.outcome(id).unwrap();
    assert_eq!(outcome.status, ActionStatus::Successful, "{outcome:?}");
    // The sub-job's outcome is nested.
    let OutcomeNode::Job(sub_outcome) = outcome.child(ActionId(1)).unwrap() else {
        panic!()
    };
    assert_eq!(sub_outcome.status, ActionStatus::Successful);
}

#[test]
fn remote_subjob_goes_to_outbox_and_completes() {
    let mut njs = fzj();
    let mut sub = AbstractJob::new("remote part", VsiteAddress::new("RUS", "VPP"), attrs());
    sub.nodes
        .push((ActionId(1), script_node("far", "sleep 2\n")));
    let mut job = AbstractJob::new("multi-site", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((ActionId(1), GraphNode::SubJob(sub)));
    let id = njs.consign(job, user(), 0).unwrap();
    njs.step(0);
    let outbox = njs.take_outbox();
    assert_eq!(outbox.len(), 1);
    let OutgoingItem::SubJob {
        parent, node, ajo, ..
    } = &outbox[0]
    else {
        panic!("expected sub-job item");
    };
    assert_eq!(*parent, id);
    assert_eq!(ajo.vsite.usite, "RUS");
    assert!(!njs.is_done(id));
    // Simulate the federation returning the remote outcome.
    njs.complete_remote_node(
        id,
        *node,
        OutcomeNode::Job(JobOutcome {
            status: ActionStatus::Successful,
            children: vec![],
        }),
    );
    njs.step(SEC);
    assert!(njs.is_done(id));
    assert_eq!(njs.outcome(id).unwrap().status, ActionStatus::Successful);
}

#[test]
fn edge_files_travel_with_forwarded_subjob() {
    let mut njs = fzj();
    let mut sub = AbstractJob::new("consume", VsiteAddress::new("DWD", "SX4"), attrs());
    sub.nodes
        .push((ActionId(1), script_node("use", "sleep 1\n")));
    let mut job = AbstractJob::new("producer", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((
        ActionId(1),
        script_node("make", "produce fields.grb 4096\n"),
    ));
    job.nodes.push((ActionId(2), GraphNode::SubJob(sub)));
    job.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["fields.grb".into()],
    });
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, 60 * SEC); // runs until blocked on remote
    let outbox = njs.take_outbox();
    assert_eq!(outbox.len(), 1);
    let OutgoingItem::SubJob { ajo, .. } = &outbox[0] else {
        panic!()
    };
    assert_eq!(ajo.portfolio.len(), 1);
    assert_eq!(ajo.portfolio[0].name, "fields.grb");
    assert_eq!(ajo.portfolio[0].data.len(), 4096);
    let _ = id;
}

#[test]
fn transfer_to_local_vsite_lands_in_incoming() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("xfer", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes
        .push((ActionId(1), script_node("make", "produce big.dat 10000\n")));
    job.nodes.push((
        ActionId(2),
        GraphNode::Task(AbstractTask {
            name: "push".into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::File(FileKind::Transfer {
                uspace_name: "big.dat".into(),
                to_vsite: VsiteAddress::new("FZJ", "SP2"),
                dest_name: "big.dat".into(),
            }),
        }),
    ));
    job.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec![],
    });
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, HOUR);
    assert_eq!(njs.outcome(id).unwrap().status, ActionStatus::Successful);
    let sp2 = njs.vsite("SP2").unwrap();
    assert!(sp2
        .vspace
        .xspace_ref()
        .exists(&format!("{INCOMING_PREFIX}big.dat")));
}

#[test]
fn admission_rejects_oversized_request() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("huge", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((
        ActionId(1),
        GraphNode::Task(AbstractTask {
            name: "too big".into(),
            resources: ResourceRequest::minimal().with_processors(100_000),
            kind: TaskKind::Execute(ExecuteKind::Script {
                script: "sleep 1".into(),
            }),
        }),
    ));
    let err = njs.consign(job, user(), 0).unwrap_err();
    assert!(matches!(err, unicore_njs::NjsError::Admission { .. }));
}

#[test]
fn unknown_vsite_rejected() {
    let mut njs = fzj();
    let job = AbstractJob::new("where", VsiteAddress::new("FZJ", "SX99"), attrs());
    assert!(matches!(
        njs.consign(job, user(), 0),
        Err(unicore_njs::NjsError::UnknownVsite { .. })
    ));
    let job2 = AbstractJob::new("elsewhere", VsiteAddress::new("LRZ", "SP2"), attrs());
    assert!(matches!(
        njs.consign(job2, user(), 0),
        Err(unicore_njs::NjsError::WrongUsite { .. })
    ));
}

#[test]
fn hold_resume_and_abort() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("ctl", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes
        .push((ActionId(1), script_node("a", "sleep 100\n")));
    job.nodes
        .push((ActionId(2), script_node("b", "sleep 100\n")));
    job.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec![],
    });
    let id = njs.consign(job, user(), 0).unwrap();
    // Hold before anything dispatches.
    assert!(njs.control(id, ControlOp::Hold, DN, 0).unwrap());
    njs.step(0);
    assert_eq!(njs.incarnation_count(), 0);
    // Resume: the first task dispatches.
    assert!(njs.control(id, ControlOp::Resume, DN, SEC).unwrap());
    njs.step(SEC);
    assert_eq!(njs.incarnation_count(), 1);
    // Abort kills the running task and the waiting one.
    assert!(njs.control(id, ControlOp::Abort, DN, 2 * SEC).unwrap());
    assert!(njs.is_done(id));
    let outcome = njs.outcome(id).unwrap();
    assert_eq!(outcome.status, ActionStatus::NotSuccessful);
    assert_eq!(
        outcome.child(ActionId(2)).unwrap().status(),
        ActionStatus::Killed
    );
}

#[test]
fn ownership_enforced_on_services() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("own", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes.push((ActionId(1), script_node("t", "sleep 1\n")));
    let id = njs.consign(job, user(), 0).unwrap();
    let other = "C=DE, O=RUS, OU=HPC, CN=bob";
    assert!(matches!(
        njs.control(id, ControlOp::Abort, other, 0),
        Err(unicore_njs::NjsError::NotOwner { .. })
    ));
    assert!(matches!(
        njs.query(id, other, DetailLevel::Tasks),
        Err(unicore_njs::NjsError::NotOwner { .. })
    ));
    assert!(njs.list_jobs(other).is_empty());
    assert_eq!(njs.list_jobs(DN).len(), 1);
}

#[test]
fn query_detail_levels() {
    let mut njs = fzj();
    let mut sub = AbstractJob::new("group", VsiteAddress::new("FZJ", "SP2"), attrs());
    sub.nodes
        .push((ActionId(1), script_node("inner", "sleep 1\n")));
    let mut job = AbstractJob::new("detail", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes
        .push((ActionId(1), script_node("top", "sleep 1\n")));
    job.nodes.push((ActionId(2), GraphNode::SubJob(sub)));
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, HOUR);

    let job_only = njs.query(id, DN, DetailLevel::JobOnly).unwrap();
    assert!(job_only.children.is_empty());
    assert_eq!(job_only.status, ActionStatus::Successful);

    let groups = njs.query(id, DN, DetailLevel::Groups).unwrap();
    assert_eq!(groups.children.len(), 1); // only the sub-job survives

    let tasks = njs.query(id, DN, DetailLevel::Tasks).unwrap();
    assert_eq!(tasks.children.len(), 2);
}

#[test]
fn fetch_output_file_on_request() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("out", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes
        .push((ActionId(1), script_node("make", "produce answer.txt 100\n")));
    let id = njs.consign(job, user(), 0).unwrap();
    run_until_done(&mut njs, id, HOUR);
    let data = njs.fetch_uspace_file(id, "answer.txt", DN).unwrap();
    assert_eq!(data.len(), 100);
    assert!(njs.fetch_uspace_file(id, "nope.txt", DN).is_err());
}

#[test]
fn incoming_file_from_peer() {
    let mut njs = fzj();
    njs.receive_incoming_file("T3E", "fields.grb", vec![1; 500], "alice1")
        .unwrap();
    let v = njs.vsite("T3E").unwrap();
    assert!(v
        .vspace
        .xspace_ref()
        .exists(&format!("{INCOMING_PREFIX}fields.grb")));
    assert!(njs
        .receive_incoming_file("NOPE", "x", vec![], "alice1")
        .is_err());
}

#[test]
fn turnaround_reported() {
    let mut njs = fzj();
    let mut job = AbstractJob::new("t", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.nodes
        .push((ActionId(1), script_node("s", "sleep 30\n")));
    let id = njs.consign(job, user(), 0).unwrap();
    assert!(njs.turnaround(id).is_none());
    run_until_done(&mut njs, id, HOUR);
    assert_eq!(njs.turnaround(id), Some(30 * SEC));
}

#[test]
fn queued_status_visible_when_machine_busy() {
    let mut njs = Njs::new("FZJ");
    // A tiny 4-node machine so jobs queue.
    let mut page = deployment_page("FZJ", "T3E", Architecture::CrayT3e);
    page.performance.nodes = 4;
    page.limits.max_processors = 4;
    njs.add_vsite(
        page,
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );

    let mk = |name: &str| {
        let mut j = AbstractJob::new(name, VsiteAddress::new("FZJ", "T3E"), attrs());
        j.nodes.push((
            ActionId(1),
            GraphNode::Task(AbstractTask {
                name: format!("{name}-task"),
                resources: ResourceRequest::minimal()
                    .with_processors(4)
                    .with_run_time(100),
                kind: TaskKind::Execute(ExecuteKind::Script {
                    script: "sleep 50\n".into(),
                }),
            }),
        ));
        j
    };
    let a = njs.consign(mk("a"), user(), 0).unwrap();
    let b = njs.consign(mk("b"), user(), 0).unwrap();
    njs.step(0);
    let qa = njs.query(a, DN, DetailLevel::Tasks).unwrap();
    let qb = njs.query(b, DN, DetailLevel::Tasks).unwrap();
    assert_eq!(
        qa.child(ActionId(1)).unwrap().status(),
        ActionStatus::Running
    );
    assert_eq!(
        qb.child(ActionId(1)).unwrap().status(),
        ActionStatus::Queued
    );
}

#[test]
fn consign_shares_portfolio_payloads_without_copying() {
    // The staged-file map built at consign must share the AJO's payload
    // allocations (a refcount bump per file), not copy them: the same
    // `Arc<[u8]>` backs the portfolio entry before and after admission.
    let data: std::sync::Arc<[u8]> = vec![0xA5u8; 1 << 20].into();
    let mut njs = fzj();
    let mut job = AbstractJob::new("bigstage", VsiteAddress::new("FZJ", "T3E"), attrs());
    job.portfolio.push(PortfolioFile {
        name: "input.bin".into(),
        data: data.clone(),
    });
    job.nodes.push((
        ActionId(1),
        GraphNode::Task(AbstractTask {
            name: "import input.bin".into(),
            resources: ResourceRequest::minimal(),
            kind: TaskKind::File(FileKind::Import {
                source: DataLocation::Workstation {
                    path: "input.bin".into(),
                },
                uspace_name: "input.bin".into(),
            }),
        }),
    ));
    let before = std::sync::Arc::strong_count(&data);
    let id = njs.consign(job, user(), 0).unwrap();
    assert!(
        std::sync::Arc::strong_count(&data) > before,
        "consign must stage the payload by reference, not by copy"
    );
    // And the bytes that land in the Uspace are the same bytes.
    run_until_done(&mut njs, id, HOUR);
    let fetched = njs.fetch_uspace_file(id, "input.bin", DN).unwrap();
    assert_eq!(fetched.as_slice(), &data[..], "byte identity lost");
}
