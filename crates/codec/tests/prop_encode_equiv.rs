//! Property tests: the single-pass sizer+emit encoder is byte-identical
//! to the recursive nested-temp-buffer encoder it replaced.
//!
//! The reference implementation below is the pre-optimization encoder,
//! kept verbatim as the oracle: every constructed value body is encoded
//! into its own temporary `Vec` and copied into the parent. The wire
//! format is pinned by signatures and idempotency keys, so the fast
//! encoder must agree on every byte — including the canonical SET-OF
//! element ordering, which this strategy (unlike `prop_roundtrip`'s)
//! generates.

use proptest::prelude::*;
use unicore_codec::{decode, encode, encode_reusing, encoded_len, tag, Value};

/// The old recursive encoder, preserved as the equivalence oracle.
mod reference {
    use super::tag;
    use super::Value;

    pub fn encode(value: &Value) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        encode_into(value, &mut out);
        out
    }

    fn encode_into(value: &Value, out: &mut Vec<u8>) {
        match value {
            Value::Boolean(b) => {
                out.push(tag::BOOLEAN);
                out.push(1);
                out.push(if *b { 0xff } else { 0x00 });
            }
            Value::Integer(v) => {
                let content = int_content(*v);
                out.push(tag::INTEGER);
                push_len(out, content.len());
                out.extend_from_slice(&content);
            }
            Value::OctetString(b) => {
                out.push(tag::OCTET_STRING);
                push_len(out, b.len());
                out.extend_from_slice(b);
            }
            Value::Utf8String(s) => {
                out.push(tag::UTF8_STRING);
                push_len(out, s.len());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Null => {
                out.push(tag::NULL);
                out.push(0);
            }
            Value::Enumerated(e) => {
                let content = int_content(*e as i64);
                out.push(tag::ENUMERATED);
                push_len(out, content.len());
                out.extend_from_slice(&content);
            }
            Value::Sequence(items) => {
                let mut body = Vec::with_capacity(items.len() * 8);
                for item in items {
                    encode_into(item, &mut body);
                }
                out.push(tag::SEQUENCE);
                push_len(out, body.len());
                out.extend_from_slice(&body);
            }
            Value::Set(items) => {
                let mut encoded: Vec<Vec<u8>> = items.iter().map(encode).collect();
                encoded.sort();
                let body_len: usize = encoded.iter().map(Vec::len).sum();
                out.push(tag::SET);
                push_len(out, body_len);
                for e in encoded {
                    out.extend_from_slice(&e);
                }
            }
            Value::Tagged(n, inner) => {
                let body = encode(inner);
                out.push(tag::CONTEXT_CONSTRUCTED | n);
                push_len(out, body.len());
                out.extend_from_slice(&body);
            }
        }
    }

    fn int_content(v: i64) -> Vec<u8> {
        let bytes = v.to_be_bytes();
        let mut start = 0;
        while start < 7 {
            let cur = bytes[start];
            let next = bytes[start + 1];
            let redundant = (cur == 0x00 && next & 0x80 == 0) || (cur == 0xff && next & 0x80 != 0);
            if redundant {
                start += 1;
            } else {
                break;
            }
        }
        bytes[start..].to_vec()
    }

    fn push_len(out: &mut Vec<u8>, len: usize) {
        if len < 0x80 {
            out.push(len as u8);
        } else {
            let bytes = (len as u64).to_be_bytes();
            let skip = bytes.iter().take_while(|&&b| b == 0).count();
            let n = 8 - skip;
            out.push(0x80 | n as u8);
            out.extend_from_slice(&bytes[skip..]);
        }
    }
}

/// Arbitrary value trees including SET-OF nodes (whose canonical element
/// sorting is the subtle part of the emit pass) and strings long enough
/// to force long-form lengths.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Boolean),
        any::<i64>().prop_map(Value::Integer),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(Value::OctetString),
        "[a-zA-Z0-9 äöüß]{0,20}".prop_map(Value::Utf8String),
        Just(Value::Null),
        any::<u32>().prop_map(Value::Enumerated),
    ];
    leaf.prop_recursive(4, 96, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Sequence),
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Set),
            (0u8..30, inner).prop_map(|(n, v)| Value::tagged(n, v)),
        ]
    })
}

proptest! {
    /// Byte-for-byte equivalence with the old recursive encoder.
    #[test]
    fn single_pass_matches_reference(v in value_strategy()) {
        prop_assert_eq!(encode(&v), reference::encode(&v));
    }

    /// The sizing pass predicts the emitted length exactly.
    #[test]
    fn encoded_len_is_exact(v in value_strategy()) {
        prop_assert_eq!(encoded_len(&v), encode(&v).len());
    }

    /// Buffer reuse is invisible: a dirty buffer yields the same bytes.
    #[test]
    fn encode_reusing_matches(v in value_strategy(), junk in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut buf = junk;
        encode_reusing(&v, &mut buf);
        prop_assert_eq!(buf, reference::encode(&v));
    }

    /// Set-bearing trees still round-trip (Sets decode in sorted order,
    /// so compare re-encodings, not trees).
    #[test]
    fn set_round_trip_is_stable(v in value_strategy()) {
        let enc = encode(&v);
        let dec = decode(&enc).unwrap();
        prop_assert_eq!(encode(&dec), enc);
    }
}
