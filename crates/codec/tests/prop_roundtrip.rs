//! Property tests: encode/decode round-trip over arbitrary value trees.

use proptest::prelude::*;
use unicore_codec::{decode, decode_prefix, encode, Value};

/// Strategy for arbitrary DER value trees of bounded depth/size.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Boolean),
        any::<i64>().prop_map(Value::Integer),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(Value::OctetString),
        "[a-zA-Z0-9 äöüß]{0,20}".prop_map(Value::Utf8String),
        Just(Value::Null),
        any::<u32>().prop_map(Value::Enumerated),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Sequence),
            (0u8..30, inner).prop_map(|(n, v)| Value::tagged(n, v)),
        ]
    })
}

proptest! {
    #[test]
    fn round_trip(v in value_strategy()) {
        let enc = encode(&v);
        prop_assert_eq!(decode(&enc).unwrap(), v);
    }

    #[test]
    fn prefix_decode_consumes_exact(v in value_strategy(), tail in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut enc = encode(&v);
        let expect_used = enc.len();
        enc.extend_from_slice(&tail);
        let (dec, used) = decode_prefix(&enc).unwrap();
        prop_assert_eq!(dec, v);
        prop_assert_eq!(used, expect_used);
    }

    #[test]
    fn truncation_always_errors(v in value_strategy()) {
        let enc = encode(&v);
        if enc.len() > 1 {
            // Removing the final byte must break the outermost TLV.
            prop_assert!(decode(&enc[..enc.len() - 1]).is_err());
        }
    }

    #[test]
    fn encoding_is_deterministic(v in value_strategy()) {
        prop_assert_eq!(encode(&v), encode(&v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Decoding is total: arbitrary bytes either parse or error, never
    /// panic, and never allocate past the announced input.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
        let _ = decode_prefix(&bytes);
    }

    /// A valid encoding with arbitrary extra bytes appended still decodes
    /// the same value via decode_prefix.
    #[test]
    fn prefix_decode_ignores_suffix_garbage(
        v in value_strategy(),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut enc = encode(&v);
        let len = enc.len();
        enc.extend_from_slice(&garbage);
        let (dec, used) = decode_prefix(&enc).unwrap();
        prop_assert_eq!(dec, v);
        prop_assert_eq!(used, len);
    }
}
