//! Canonical DER encoding.
//!
//! Encoding is two passes over the value tree: a sizing pass
//! ([`encoded_len`]) that computes every definite length arithmetically,
//! then an emit pass that writes tag, length and content octets straight
//! into one preallocated output buffer. Constructed values (`Sequence`,
//! `Tagged`) never materialise their body in a temporary — the recursive
//! encoder this replaced copied a depth-d subtree O(d) times.

use crate::value::{tag, Value};

/// Encodes a value to canonical DER bytes.
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(value));
    emit(value, &mut out);
    out
}

/// Encodes into an existing buffer (appends; avoids reallocation in hot
/// paths that assemble framed messages).
pub fn encode_into(value: &Value, out: &mut Vec<u8>) {
    out.reserve(encoded_len(value));
    emit(value, out);
}

/// Encodes into `out`, clearing it first — callers that encode in a loop
/// amortise one buffer across all iterations.
pub fn encode_reusing(value: &Value, out: &mut Vec<u8>) {
    out.clear();
    encode_into(value, out);
}

/// Total encoded size of `value` in bytes (tag + length + content).
pub fn encoded_len(value: &Value) -> usize {
    let content = content_len(value);
    1 + len_octets(content) + content
}

/// Size of the content octets alone.
fn content_len(value: &Value) -> usize {
    match value {
        Value::Boolean(_) => 1,
        Value::Integer(v) => int_content_len(*v),
        Value::OctetString(b) => b.len(),
        Value::Utf8String(s) => s.len(),
        Value::Null => 0,
        Value::Enumerated(e) => int_content_len(*e as i64),
        // Sorting a SET-OF permutes its elements but not their bytes, so
        // the size is order-independent.
        Value::Sequence(items) | Value::Set(items) => items.iter().map(encoded_len).sum(),
        Value::Tagged(_, inner) => encoded_len(inner),
    }
}

fn emit(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Boolean(b) => {
            out.push(tag::BOOLEAN);
            out.push(1);
            out.push(if *b { 0xff } else { 0x00 });
        }
        Value::Integer(v) => {
            let (bytes, start) = int_content(*v);
            out.push(tag::INTEGER);
            push_len(out, 8 - start);
            out.extend_from_slice(&bytes[start..]);
        }
        Value::OctetString(b) => {
            out.push(tag::OCTET_STRING);
            push_len(out, b.len());
            out.extend_from_slice(b);
        }
        Value::Utf8String(s) => {
            out.push(tag::UTF8_STRING);
            push_len(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Null => {
            out.push(tag::NULL);
            out.push(0);
        }
        Value::Enumerated(e) => {
            let (bytes, start) = int_content(*e as i64);
            out.push(tag::ENUMERATED);
            push_len(out, 8 - start);
            out.extend_from_slice(&bytes[start..]);
        }
        Value::Sequence(items) => {
            out.push(tag::SEQUENCE);
            push_len(out, items.iter().map(encoded_len).sum());
            for item in items {
                emit(item, out);
            }
        }
        Value::Set(items) => {
            out.push(tag::SET);
            push_len(out, items.iter().map(encoded_len).sum());
            let body_start = out.len();
            let mut ends = Vec::with_capacity(items.len());
            for item in items {
                emit(item, out);
                ends.push(out.len());
            }
            sort_set_body(out, body_start, &ends);
        }
        Value::Tagged(n, inner) => {
            debug_assert!(*n < 31, "high tag numbers unsupported");
            out.push(tag::CONTEXT_CONSTRUCTED | n);
            push_len(out, encoded_len(inner));
            emit(inner, out);
        }
    }
}

/// Canonical DER: SET-OF elements sorted by encoded bytes. Elements are
/// emitted in declaration order at `out[body_start..]` with element
/// boundaries at `ends`; reorder them in place if they are not already
/// sorted (the common case pays only the comparison scan).
fn sort_set_body(out: &mut Vec<u8>, body_start: usize, ends: &[usize]) {
    let range = |i: usize| (if i == 0 { body_start } else { ends[i - 1] }, ends[i]);
    let sorted = (1..ends.len()).all(|i| {
        let (ps, pe) = range(i - 1);
        let (s, e) = range(i);
        out[ps..pe] <= out[s..e]
    });
    if sorted {
        return;
    }
    let body = out[body_start..].to_vec();
    let mut order: Vec<usize> = (0..ends.len()).collect();
    order.sort_by(|&a, &b| {
        let (sa, ea) = range(a);
        let (sb, eb) = range(b);
        body[sa - body_start..ea - body_start].cmp(&body[sb - body_start..eb - body_start])
    });
    out.truncate(body_start);
    for i in order {
        let (s, e) = range(i);
        out.extend_from_slice(&body[s - body_start..e - body_start]);
    }
}

/// Minimal two's-complement content octets for an integer: the big-endian
/// bytes of `v` and the index its minimal encoding starts at.
fn int_content(v: i64) -> ([u8; 8], usize) {
    let bytes = v.to_be_bytes();
    // Strip redundant leading bytes: 0x00 followed by a byte with the top
    // bit clear, or 0xff followed by a byte with the top bit set.
    let mut start = 0;
    while start < 7 {
        let cur = bytes[start];
        let next = bytes[start + 1];
        let redundant = (cur == 0x00 && next & 0x80 == 0) || (cur == 0xff && next & 0x80 != 0);
        if redundant {
            start += 1;
        } else {
            break;
        }
    }
    (bytes, start)
}

fn int_content_len(v: i64) -> usize {
    let (_, start) = int_content(v);
    8 - start
}

/// Number of length octets DER uses for a content length.
fn len_octets(len: usize) -> usize {
    if len < 0x80 {
        1
    } else {
        let skip = (len as u64)
            .to_be_bytes()
            .iter()
            .take_while(|&&b| b == 0)
            .count();
        1 + (8 - skip)
    }
}

/// DER definite-length encoding.
fn push_len(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = (len as u64).to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let n = 8 - skip;
        out.push(0x80 | n as u8);
        out.extend_from_slice(&bytes[skip..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_encoding() {
        assert_eq!(encode(&Value::Boolean(true)), vec![0x01, 0x01, 0xff]);
        assert_eq!(encode(&Value::Boolean(false)), vec![0x01, 0x01, 0x00]);
    }

    #[test]
    fn integer_minimal_encoding() {
        assert_eq!(encode(&Value::Integer(0)), vec![0x02, 0x01, 0x00]);
        assert_eq!(encode(&Value::Integer(127)), vec![0x02, 0x01, 0x7f]);
        // 128 needs a leading zero so it is not read as negative.
        assert_eq!(encode(&Value::Integer(128)), vec![0x02, 0x02, 0x00, 0x80]);
        assert_eq!(encode(&Value::Integer(-1)), vec![0x02, 0x01, 0xff]);
        assert_eq!(encode(&Value::Integer(-128)), vec![0x02, 0x01, 0x80]);
        assert_eq!(encode(&Value::Integer(-129)), vec![0x02, 0x02, 0xff, 0x7f]);
        assert_eq!(encode(&Value::Integer(256)), vec![0x02, 0x02, 0x01, 0x00]);
    }

    #[test]
    fn null_encoding() {
        assert_eq!(encode(&Value::Null), vec![0x05, 0x00]);
    }

    #[test]
    fn string_encoding() {
        assert_eq!(encode(&Value::string("hi")), vec![0x0c, 0x02, b'h', b'i']);
    }

    #[test]
    fn long_form_length() {
        let v = Value::bytes(vec![0u8; 300]);
        let enc = encode(&v);
        assert_eq!(&enc[..4], &[0x04, 0x82, 0x01, 0x2c]);
        assert_eq!(enc.len(), 304);
    }

    #[test]
    fn sequence_nests() {
        let v = Value::Sequence(vec![Value::Integer(1), Value::Boolean(true)]);
        assert_eq!(
            encode(&v),
            vec![0x30, 0x06, 0x02, 0x01, 0x01, 0x01, 0x01, 0xff]
        );
    }

    #[test]
    fn set_is_sorted_canonically() {
        let a = Value::Set(vec![Value::Integer(2), Value::Integer(1)]);
        let b = Value::Set(vec![Value::Integer(1), Value::Integer(2)]);
        assert_eq!(encode(&a), encode(&b));
        assert_eq!(
            encode(&a),
            vec![0x31, 0x06, 0x02, 0x01, 0x01, 0x02, 0x01, 0x02]
        );
    }

    #[test]
    fn context_tag() {
        let v = Value::tagged(3, Value::Null);
        assert_eq!(encode(&v), vec![0xa3, 0x02, 0x05, 0x00]);
    }

    #[test]
    fn encoded_len_matches_output() {
        let v = Value::Sequence(vec![
            Value::Integer(-70_000),
            Value::Set(vec![Value::string("b"), Value::string("a")]),
            Value::tagged(5, Value::bytes(vec![7u8; 200])),
            Value::Null,
        ]);
        assert_eq!(encoded_len(&v), encode(&v).len());
    }

    #[test]
    fn encode_reusing_clears_and_matches() {
        let v = Value::Sequence(vec![Value::Integer(42), Value::string("x")]);
        let mut buf = vec![0xde, 0xad];
        encode_reusing(&v, &mut buf);
        assert_eq!(buf, encode(&v));
        // Second use of the same buffer produces identical bytes.
        let prev = buf.clone();
        encode_reusing(&v, &mut buf);
        assert_eq!(buf, prev);
    }

    #[test]
    fn nested_set_of_sets_sorts_by_encoded_bytes() {
        let v = Value::Set(vec![
            Value::Set(vec![Value::Integer(9)]),
            Value::Set(vec![Value::Integer(2), Value::Integer(1)]),
            Value::Boolean(true),
        ]);
        // Boolean (tag 0x01) sorts before the SETs (tag 0x31); the longer
        // SET sorts by its first differing byte.
        let enc = encode(&v);
        assert_eq!(enc[0], 0x31);
        assert_eq!(&enc[2..5], &[0x01, 0x01, 0xff]);
    }
}
