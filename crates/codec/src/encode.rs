//! Canonical DER encoding.

use crate::value::{tag, Value};

/// Encodes a value to canonical DER bytes.
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(value, &mut out);
    out
}

/// Encodes into an existing buffer (avoids reallocation in hot paths).
pub fn encode_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Boolean(b) => {
            out.push(tag::BOOLEAN);
            out.push(1);
            out.push(if *b { 0xff } else { 0x00 });
        }
        Value::Integer(v) => {
            let content = int_content(*v);
            out.push(tag::INTEGER);
            push_len(out, content.len());
            out.extend_from_slice(&content);
        }
        Value::OctetString(b) => {
            out.push(tag::OCTET_STRING);
            push_len(out, b.len());
            out.extend_from_slice(b);
        }
        Value::Utf8String(s) => {
            out.push(tag::UTF8_STRING);
            push_len(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Null => {
            out.push(tag::NULL);
            out.push(0);
        }
        Value::Enumerated(e) => {
            let content = int_content(*e as i64);
            out.push(tag::ENUMERATED);
            push_len(out, content.len());
            out.extend_from_slice(&content);
        }
        Value::Sequence(items) => {
            let mut body = Vec::with_capacity(items.len() * 8);
            for item in items {
                encode_into(item, &mut body);
            }
            out.push(tag::SEQUENCE);
            push_len(out, body.len());
            out.extend_from_slice(&body);
        }
        Value::Set(items) => {
            // Canonical DER: SET-OF elements sorted by encoded bytes.
            let mut encoded: Vec<Vec<u8>> = items.iter().map(encode).collect();
            encoded.sort();
            let body_len: usize = encoded.iter().map(Vec::len).sum();
            out.push(tag::SET);
            push_len(out, body_len);
            for e in encoded {
                out.extend_from_slice(&e);
            }
        }
        Value::Tagged(n, inner) => {
            debug_assert!(*n < 31, "high tag numbers unsupported");
            let body = encode(inner);
            out.push(tag::CONTEXT_CONSTRUCTED | n);
            push_len(out, body.len());
            out.extend_from_slice(&body);
        }
    }
}

/// Minimal two's-complement content octets for an integer.
fn int_content(v: i64) -> Vec<u8> {
    let bytes = v.to_be_bytes();
    // Strip redundant leading bytes: 0x00 followed by a byte with the top
    // bit clear, or 0xff followed by a byte with the top bit set.
    let mut start = 0;
    while start < 7 {
        let cur = bytes[start];
        let next = bytes[start + 1];
        let redundant = (cur == 0x00 && next & 0x80 == 0) || (cur == 0xff && next & 0x80 != 0);
        if redundant {
            start += 1;
        } else {
            break;
        }
    }
    bytes[start..].to_vec()
}

/// DER definite-length encoding.
fn push_len(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = (len as u64).to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let n = 8 - skip;
        out.push(0x80 | n as u8);
        out.extend_from_slice(&bytes[skip..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_encoding() {
        assert_eq!(encode(&Value::Boolean(true)), vec![0x01, 0x01, 0xff]);
        assert_eq!(encode(&Value::Boolean(false)), vec![0x01, 0x01, 0x00]);
    }

    #[test]
    fn integer_minimal_encoding() {
        assert_eq!(encode(&Value::Integer(0)), vec![0x02, 0x01, 0x00]);
        assert_eq!(encode(&Value::Integer(127)), vec![0x02, 0x01, 0x7f]);
        // 128 needs a leading zero so it is not read as negative.
        assert_eq!(encode(&Value::Integer(128)), vec![0x02, 0x02, 0x00, 0x80]);
        assert_eq!(encode(&Value::Integer(-1)), vec![0x02, 0x01, 0xff]);
        assert_eq!(encode(&Value::Integer(-128)), vec![0x02, 0x01, 0x80]);
        assert_eq!(encode(&Value::Integer(-129)), vec![0x02, 0x02, 0xff, 0x7f]);
        assert_eq!(encode(&Value::Integer(256)), vec![0x02, 0x02, 0x01, 0x00]);
    }

    #[test]
    fn null_encoding() {
        assert_eq!(encode(&Value::Null), vec![0x05, 0x00]);
    }

    #[test]
    fn string_encoding() {
        assert_eq!(encode(&Value::string("hi")), vec![0x0c, 0x02, b'h', b'i']);
    }

    #[test]
    fn long_form_length() {
        let v = Value::bytes(vec![0u8; 300]);
        let enc = encode(&v);
        assert_eq!(&enc[..4], &[0x04, 0x82, 0x01, 0x2c]);
        assert_eq!(enc.len(), 304);
    }

    #[test]
    fn sequence_nests() {
        let v = Value::Sequence(vec![Value::Integer(1), Value::Boolean(true)]);
        assert_eq!(
            encode(&v),
            vec![0x30, 0x06, 0x02, 0x01, 0x01, 0x01, 0x01, 0xff]
        );
    }

    #[test]
    fn set_is_sorted_canonically() {
        let a = Value::Set(vec![Value::Integer(2), Value::Integer(1)]);
        let b = Value::Set(vec![Value::Integer(1), Value::Integer(2)]);
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn context_tag() {
        let v = Value::tagged(3, Value::Null);
        assert_eq!(encode(&v), vec![0xa3, 0x02, 0x05, 0x00]);
    }
}
