//! The DER value model: a faithful subset of ASN.1 types sufficient for
//! UNICORE's resource pages, certificates and AJO wire encoding.

/// Universal-class tag numbers (DER encoding, primitive unless noted).
pub mod tag {
    /// BOOLEAN
    pub const BOOLEAN: u8 = 0x01;
    /// INTEGER (two's-complement, minimal length)
    pub const INTEGER: u8 = 0x02;
    /// OCTET STRING
    pub const OCTET_STRING: u8 = 0x04;
    /// NULL
    pub const NULL: u8 = 0x05;
    /// UTF8String
    pub const UTF8_STRING: u8 = 0x0c;
    /// ENUMERATED
    pub const ENUMERATED: u8 = 0x0a;
    /// SEQUENCE (constructed)
    pub const SEQUENCE: u8 = 0x30;
    /// SET (constructed)
    pub const SET: u8 = 0x31;
    /// Base for context-specific constructed tags `[n]`.
    pub const CONTEXT_CONSTRUCTED: u8 = 0xa0;
}

/// A decoded DER value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// ASN.1 BOOLEAN.
    Boolean(bool),
    /// ASN.1 INTEGER restricted to `i64` (all UNICORE quantities fit).
    Integer(i64),
    /// ASN.1 OCTET STRING (also used for big integers in certificates).
    OctetString(Vec<u8>),
    /// ASN.1 UTF8String.
    Utf8String(String),
    /// ASN.1 NULL.
    Null,
    /// ASN.1 ENUMERATED (non-negative discriminants only).
    Enumerated(u32),
    /// ASN.1 SEQUENCE.
    Sequence(Vec<Value>),
    /// ASN.1 SET (encoder sorts elements for canonical DER).
    Set(Vec<Value>),
    /// Context-specific constructed value `[n]` wrapping one inner value.
    Tagged(u8, Box<Value>),
}

impl Value {
    /// Convenience constructor: UTF8String from anything stringy.
    pub fn string(s: impl Into<String>) -> Value {
        Value::Utf8String(s.into())
    }

    /// Convenience constructor: OCTET STRING from bytes.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Value {
        Value::OctetString(b.into())
    }

    /// Convenience constructor: context tag `[n]` around `inner`.
    pub fn tagged(n: u8, inner: Value) -> Value {
        Value::Tagged(n, Box::new(inner))
    }

    /// Borrows the elements if this is a SEQUENCE.
    pub fn as_sequence(&self) -> Option<&[Value]> {
        match self {
            Value::Sequence(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the elements if this is a SET.
    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Value::Set(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string content if this is a UTF8String.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an INTEGER.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the integer as u64 if this is a non-negative INTEGER.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Integer(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Borrows the bytes if this is an OCTET STRING.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::OctetString(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the flag if this is a BOOLEAN.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the discriminant if this is an ENUMERATED.
    pub fn as_enum(&self) -> Option<u32> {
        match self {
            Value::Enumerated(e) => Some(*e),
            _ => None,
        }
    }

    /// If this is `[n]`-tagged, returns `(n, inner)`.
    pub fn as_tagged(&self) -> Option<(u8, &Value)> {
        match self {
            Value::Tagged(n, inner) => Some((*n, inner)),
            _ => None,
        }
    }

    /// Total number of nodes in the value tree (diagnostics / limits).
    pub fn node_count(&self) -> usize {
        match self {
            Value::Sequence(items) | Value::Set(items) => {
                1 + items.iter().map(Value::node_count).sum::<usize>()
            }
            Value::Tagged(_, inner) => 1 + inner.node_count(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Boolean(true).as_bool(), Some(true));
        assert_eq!(Value::Integer(-5).as_i64(), Some(-5));
        assert_eq!(Value::Integer(-5).as_u64(), None);
        assert_eq!(Value::Integer(5).as_u64(), Some(5));
        assert_eq!(Value::string("hi").as_str(), Some("hi"));
        assert_eq!(Value::bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::Enumerated(3).as_enum(), Some(3));
        assert!(Value::Null.as_str().is_none());
        let seq = Value::Sequence(vec![Value::Null]);
        assert_eq!(seq.as_sequence().unwrap().len(), 1);
        let tagged = Value::tagged(2, Value::Integer(1));
        let (n, inner) = tagged.as_tagged().unwrap();
        assert_eq!(n, 2);
        assert_eq!(inner.as_i64(), Some(1));
    }

    #[test]
    fn node_count_recurses() {
        let v = Value::Sequence(vec![
            Value::Integer(1),
            Value::tagged(0, Value::Sequence(vec![Value::Null, Value::Boolean(false)])),
        ]);
        assert_eq!(v.node_count(), 6);
    }
}
