//! # unicore-codec
//!
//! A canonical DER (ASN.1 subset) encoder/decoder.
//!
//! The 1999 UNICORE system stored per-Vsite *resource pages* "in ASN1
//! format" (paper §5.4) and moved serialised Java objects (the AJO) between
//! components. This crate supplies that encoding substrate: a strict,
//! canonical, depth-limited DER implementation covering BOOLEAN, INTEGER,
//! OCTET STRING, UTF8String, NULL, ENUMERATED, SEQUENCE, SET and
//! context-specific constructed tags — everything the certificate format,
//! resource pages and AJO wire form need.
//!
//! Strictness matters here: the decoder rejects non-minimal integers and
//! lengths, trailing bytes, and over-deep nesting, so a byte stream has
//! exactly one accepted encoding (required for signing certificate bodies).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decode;
pub mod encode;
pub mod error;
pub mod structure;
pub mod value;

pub use decode::{decode, decode_prefix, MAX_DEPTH};
pub use encode::{encode, encode_into, encode_reusing, encoded_len};
pub use error::CodecError;
pub use structure::{DerCodec, Fields};
pub use value::{tag, Value};
