//! Ergonomic destructuring of decoded sequences, plus the `DerCodec` trait
//! implemented by every wire-transferable UNICORE structure.

use crate::decode::decode;
use crate::encode::encode;
use crate::error::CodecError;
use crate::value::Value;

/// A cursor over the fields of a SEQUENCE, yielding typed fields in order.
pub struct Fields<'a> {
    items: &'a [Value],
    pos: usize,
    context: &'static str,
}

impl<'a> Fields<'a> {
    /// Opens `value` as a SEQUENCE named `context` (for error messages).
    pub fn open(value: &'a Value, context: &'static str) -> Result<Self, CodecError> {
        match value.as_sequence() {
            Some(items) => Ok(Fields {
                items,
                pos: 0,
                context,
            }),
            None => Err(CodecError::Structure(format!(
                "{context}: expected SEQUENCE"
            ))),
        }
    }

    fn missing(&self, what: &str) -> CodecError {
        CodecError::Structure(format!(
            "{}: missing or mistyped field #{} ({what})",
            self.context, self.pos
        ))
    }

    /// Next raw value.
    pub fn next_value(&mut self) -> Result<&'a Value, CodecError> {
        let v = self
            .items
            .get(self.pos)
            .ok_or_else(|| self.missing("value"))?;
        self.pos += 1;
        Ok(v)
    }

    /// Next field as `&str`.
    pub fn next_str(&mut self) -> Result<&'a str, CodecError> {
        let pos = self.pos;
        let v = self.next_value()?;
        v.as_str().ok_or_else(|| {
            CodecError::Structure(format!("{}: field #{pos} not UTF8String", self.context))
        })
    }

    /// Next field as owned `String`.
    pub fn next_string(&mut self) -> Result<String, CodecError> {
        Ok(self.next_str()?.to_owned())
    }

    /// Next field as `i64`.
    pub fn next_i64(&mut self) -> Result<i64, CodecError> {
        let pos = self.pos;
        let v = self.next_value()?;
        v.as_i64().ok_or_else(|| {
            CodecError::Structure(format!("{}: field #{pos} not INTEGER", self.context))
        })
    }

    /// Next field as `u64`.
    pub fn next_u64(&mut self) -> Result<u64, CodecError> {
        let pos = self.pos;
        let v = self.next_value()?;
        v.as_u64().ok_or_else(|| {
            CodecError::Structure(format!(
                "{}: field #{pos} not non-negative INTEGER",
                self.context
            ))
        })
    }

    /// Next field as `u32`.
    pub fn next_u32(&mut self) -> Result<u32, CodecError> {
        u32::try_from(self.next_u64()?).map_err(|_| CodecError::IntegerOverflow)
    }

    /// Next field as `bool`.
    pub fn next_bool(&mut self) -> Result<bool, CodecError> {
        let pos = self.pos;
        let v = self.next_value()?;
        v.as_bool().ok_or_else(|| {
            CodecError::Structure(format!("{}: field #{pos} not BOOLEAN", self.context))
        })
    }

    /// Next field as bytes.
    pub fn next_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let pos = self.pos;
        let v = self.next_value()?;
        v.as_bytes().ok_or_else(|| {
            CodecError::Structure(format!("{}: field #{pos} not OCTET STRING", self.context))
        })
    }

    /// Next field as an ENUMERATED discriminant.
    pub fn next_enum(&mut self) -> Result<u32, CodecError> {
        let pos = self.pos;
        let v = self.next_value()?;
        v.as_enum().ok_or_else(|| {
            CodecError::Structure(format!("{}: field #{pos} not ENUMERATED", self.context))
        })
    }

    /// Next field as a nested SEQUENCE's items.
    pub fn next_sequence(&mut self) -> Result<&'a [Value], CodecError> {
        let pos = self.pos;
        let v = self.next_value()?;
        v.as_sequence().ok_or_else(|| {
            CodecError::Structure(format!("{}: field #{pos} not SEQUENCE", self.context))
        })
    }

    /// If the next field is `[n]`-tagged, consumes and returns its inner
    /// value; otherwise leaves the cursor alone and returns `None`.
    pub fn optional_tagged(&mut self, n: u8) -> Option<&'a Value> {
        if let Some(Value::Tagged(t, inner)) = self.items.get(self.pos) {
            if *t == n {
                self.pos += 1;
                return Some(inner);
            }
        }
        None
    }

    /// Asserts all fields were consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.items.len() {
            Ok(())
        } else {
            Err(CodecError::Structure(format!(
                "{}: {} unconsumed trailing fields",
                self.context,
                self.items.len() - self.pos
            )))
        }
    }

    /// Remaining (unconsumed) values, consuming the cursor.
    pub fn rest(self) -> &'a [Value] {
        &self.items[self.pos..]
    }
}

/// Types with a canonical DER wire form.
///
/// Everything UNICORE puts on the network or on disk (certificates, resource
/// pages, AJOs, outcomes) implements this.
pub trait DerCodec: Sized {
    /// Converts to the DER value model.
    fn to_value(&self) -> Value;
    /// Parses from the DER value model.
    fn from_value(value: &Value) -> Result<Self, CodecError>;

    /// Serialises to DER bytes.
    fn to_der(&self) -> Vec<u8> {
        encode(&self.to_value())
    }

    /// Parses from DER bytes.
    fn from_der(bytes: &[u8]) -> Result<Self, CodecError> {
        Self::from_value(&decode(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_consume_in_order() {
        let v = Value::Sequence(vec![
            Value::string("name"),
            Value::Integer(42),
            Value::Boolean(true),
            Value::bytes(vec![1, 2]),
            Value::Enumerated(7),
        ]);
        let mut f = Fields::open(&v, "test").unwrap();
        assert_eq!(f.next_str().unwrap(), "name");
        assert_eq!(f.next_u64().unwrap(), 42);
        assert!(f.next_bool().unwrap());
        assert_eq!(f.next_bytes().unwrap(), &[1, 2]);
        assert_eq!(f.next_enum().unwrap(), 7);
        f.finish().unwrap();
    }

    #[test]
    fn finish_rejects_leftovers() {
        let v = Value::Sequence(vec![Value::Null]);
        let f = Fields::open(&v, "test").unwrap();
        assert!(f.finish().is_err());
    }

    #[test]
    fn type_mismatch_reported() {
        let v = Value::Sequence(vec![Value::Integer(1)]);
        let mut f = Fields::open(&v, "ctx").unwrap();
        let err = f.next_str().unwrap_err();
        assert!(matches!(err, CodecError::Structure(_)));
    }

    #[test]
    fn eof_reported() {
        let v = Value::Sequence(vec![]);
        let mut f = Fields::open(&v, "ctx").unwrap();
        assert!(f.next_i64().is_err());
    }

    #[test]
    fn optional_tagged_consumes_only_matches() {
        let v = Value::Sequence(vec![
            Value::tagged(1, Value::Integer(5)),
            Value::string("after"),
        ]);
        let mut f = Fields::open(&v, "ctx").unwrap();
        assert!(f.optional_tagged(0).is_none());
        let inner = f.optional_tagged(1).unwrap();
        assert_eq!(inner.as_i64(), Some(5));
        assert_eq!(f.next_str().unwrap(), "after");
        f.finish().unwrap();
    }

    #[test]
    fn non_sequence_rejected() {
        assert!(Fields::open(&Value::Null, "ctx").is_err());
    }

    #[test]
    fn der_codec_round_trip() {
        struct Point {
            x: i64,
            y: i64,
        }
        impl DerCodec for Point {
            fn to_value(&self) -> Value {
                Value::Sequence(vec![Value::Integer(self.x), Value::Integer(self.y)])
            }
            fn from_value(value: &Value) -> Result<Self, CodecError> {
                let mut f = Fields::open(value, "Point")?;
                let p = Point {
                    x: f.next_i64()?,
                    y: f.next_i64()?,
                };
                f.finish()?;
                Ok(p)
            }
        }
        let p = Point { x: -3, y: 900 };
        let back = Point::from_der(&p.to_der()).unwrap();
        assert_eq!(back.x, -3);
        assert_eq!(back.y, 900);
    }
}
