//! DER decoding with depth and size limits.

use crate::error::CodecError;
use crate::value::{tag, Value};

/// Maximum nesting depth accepted by the decoder (AJOs are recursive; this
/// bounds hostile input while being far above any real job tree).
pub const MAX_DEPTH: usize = 128;

/// Decodes exactly one value; trailing bytes are an error.
pub fn decode(input: &[u8]) -> Result<Value, CodecError> {
    let mut r = Reader::new(input);
    let v = r.read_value(0)?;
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// Decodes one value from the front of `input`, returning it and the number
/// of bytes consumed (for streaming framings).
pub fn decode_prefix(input: &[u8]) -> Result<(Value, usize), CodecError> {
    let mut r = Reader::new(input);
    let v = r.read_value(0)?;
    Ok((v, input.len() - r.remaining()))
}

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(input: &'a [u8]) -> Self {
        Reader { input, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        let first = self.read_u8()?;
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n = (first & 0x7f) as usize;
        if n == 0 || n > 8 {
            return Err(CodecError::BadLength);
        }
        let bytes = self.take(n)?;
        if bytes[0] == 0 {
            // Non-minimal length encoding is not canonical DER.
            return Err(CodecError::BadLength);
        }
        let mut len = 0u64;
        for &b in bytes {
            len = (len << 8) | b as u64;
        }
        if len < 0x80 {
            return Err(CodecError::BadLength);
        }
        usize::try_from(len).map_err(|_| CodecError::BadLength)
    }

    fn read_value(&mut self, depth: usize) -> Result<Value, CodecError> {
        if depth > MAX_DEPTH {
            return Err(CodecError::DepthExceeded);
        }
        let t = self.read_u8()?;
        let len = self.read_len()?;
        let content = self.take(len)?;
        match t {
            tag::BOOLEAN => {
                if content.len() != 1 {
                    return Err(CodecError::BadValue("boolean length"));
                }
                match content[0] {
                    0x00 => Ok(Value::Boolean(false)),
                    0xff => Ok(Value::Boolean(true)),
                    _ => Err(CodecError::BadValue("boolean content")),
                }
            }
            tag::INTEGER => Ok(Value::Integer(parse_int(content)?)),
            tag::ENUMERATED => {
                let v = parse_int(content)?;
                u32::try_from(v)
                    .map(Value::Enumerated)
                    .map_err(|_| CodecError::BadValue("enumerated range"))
            }
            tag::OCTET_STRING => Ok(Value::OctetString(content.to_vec())),
            tag::UTF8_STRING => String::from_utf8(content.to_vec())
                .map(Value::Utf8String)
                .map_err(|_| CodecError::BadValue("utf8 content")),
            tag::NULL => {
                if content.is_empty() {
                    Ok(Value::Null)
                } else {
                    Err(CodecError::BadValue("null with content"))
                }
            }
            tag::SEQUENCE | tag::SET => {
                let mut inner = Reader::new(content);
                let mut items = Vec::new();
                while !inner.is_empty() {
                    items.push(inner.read_value(depth + 1)?);
                }
                if t == tag::SEQUENCE {
                    Ok(Value::Sequence(items))
                } else {
                    Ok(Value::Set(items))
                }
            }
            t if t & 0xe0 == tag::CONTEXT_CONSTRUCTED => {
                let n = t & 0x1f;
                if n >= 31 {
                    return Err(CodecError::UnknownTag(t));
                }
                let mut inner = Reader::new(content);
                let v = inner.read_value(depth + 1)?;
                if !inner.is_empty() {
                    return Err(CodecError::BadValue("multiple values in context tag"));
                }
                Ok(Value::Tagged(n, Box::new(v)))
            }
            other => Err(CodecError::UnknownTag(other)),
        }
    }
}

/// Parses canonical two's-complement content octets into an `i64`.
fn parse_int(content: &[u8]) -> Result<i64, CodecError> {
    if content.is_empty() {
        return Err(CodecError::BadValue("empty integer"));
    }
    if content.len() > 1 {
        let redundant = (content[0] == 0x00 && content[1] & 0x80 == 0)
            || (content[0] == 0xff && content[1] & 0x80 != 0);
        if redundant {
            return Err(CodecError::BadValue("non-minimal integer"));
        }
    }
    if content.len() > 8 {
        return Err(CodecError::IntegerOverflow);
    }
    let negative = content[0] & 0x80 != 0;
    let mut acc: u64 = if negative { u64::MAX } else { 0 };
    for &b in content {
        acc = (acc << 8) | b as u64;
    }
    Ok(acc as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn round_trip(v: Value) {
        let enc = encode(&v);
        assert_eq!(decode(&enc).unwrap(), v, "round trip of {v:?}");
    }

    #[test]
    fn round_trips() {
        round_trip(Value::Boolean(true));
        round_trip(Value::Boolean(false));
        round_trip(Value::Integer(0));
        round_trip(Value::Integer(i64::MAX));
        round_trip(Value::Integer(i64::MIN));
        round_trip(Value::Integer(-1));
        round_trip(Value::Null);
        round_trip(Value::string("grüße aus jülich"));
        round_trip(Value::bytes(vec![0u8; 1000]));
        round_trip(Value::Enumerated(0));
        round_trip(Value::Enumerated(u32::MAX));
        round_trip(Value::Sequence(vec![]));
        round_trip(Value::Sequence(vec![
            Value::Integer(42),
            Value::Sequence(vec![Value::string("nested")]),
            Value::tagged(5, Value::Boolean(true)),
        ]));
    }

    #[test]
    fn set_round_trip_is_sorted() {
        let v = Value::Set(vec![Value::Integer(300), Value::Integer(2)]);
        let dec = decode(&encode(&v)).unwrap();
        // Decoded order is the canonical (sorted-encoding) order.
        let items = dec.as_set().unwrap();
        assert_eq!(items.len(), 2);
        assert!(items.contains(&Value::Integer(300)));
        assert!(items.contains(&Value::Integer(2)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode(&Value::Null);
        enc.push(0x00);
        assert_eq!(decode(&enc), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn decode_prefix_reports_consumed() {
        let mut enc = encode(&Value::Integer(7));
        let len = enc.len();
        enc.extend_from_slice(&[1, 2, 3]);
        let (v, used) = decode_prefix(&enc).unwrap();
        assert_eq!(v, Value::Integer(7));
        assert_eq!(used, len);
    }

    #[test]
    fn truncated_input_rejected() {
        let enc = encode(&Value::bytes(vec![1, 2, 3, 4]));
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_boolean_rejected() {
        assert!(decode(&[0x01, 0x01, 0x42]).is_err());
        assert!(decode(&[0x01, 0x02, 0x00, 0x00]).is_err());
    }

    #[test]
    fn non_minimal_integer_rejected() {
        // 0x00 0x05 is a redundant encoding of 5.
        assert!(decode(&[0x02, 0x02, 0x00, 0x05]).is_err());
        // 0xff 0xff is a redundant encoding of -1.
        assert!(decode(&[0x02, 0x02, 0xff, 0xff]).is_err());
    }

    #[test]
    fn non_minimal_length_rejected() {
        // Length 3 encoded in long form (0x81 0x03) is non-canonical.
        assert!(decode(&[0x04, 0x81, 0x03, 1, 2, 3]).is_err());
        // Leading zero in a long-form length.
        assert!(decode(&[0x04, 0x82, 0x00, 0x80]).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0x13, 0x00]), Err(CodecError::UnknownTag(0x13)));
    }

    #[test]
    fn depth_limit_enforced() {
        // Build MAX_DEPTH + 2 nested sequences by hand.
        let mut enc = encode(&Value::Null);
        for _ in 0..(MAX_DEPTH + 2) {
            let inner = enc;
            let mut outer = vec![0x30];
            // Re-encode the length.
            if inner.len() < 0x80 {
                outer.push(inner.len() as u8);
            } else {
                let b = (inner.len() as u32).to_be_bytes();
                let skip = b.iter().take_while(|&&x| x == 0).count();
                outer.push(0x80 | (4 - skip) as u8);
                outer.extend_from_slice(&b[skip..]);
            }
            outer.extend_from_slice(&inner);
            enc = outer;
        }
        assert_eq!(decode(&enc), Err(CodecError::DepthExceeded));
    }

    #[test]
    fn oversized_integer_rejected() {
        // 9 content bytes cannot fit an i64.
        let mut raw = vec![0x02, 0x09, 0x01];
        raw.extend_from_slice(&[0u8; 8]);
        assert_eq!(decode(&raw), Err(CodecError::IntegerOverflow));
    }

    #[test]
    fn utf8_validity_enforced() {
        assert!(decode(&[0x0c, 0x02, 0xff, 0xfe]).is_err());
    }
}
