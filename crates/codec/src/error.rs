//! Decode/encode error type.

use core::fmt;

/// Errors produced while encoding or decoding DER values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the announced length.
    UnexpectedEof,
    /// A length field was malformed or non-canonical.
    BadLength,
    /// The tag byte did not match what the caller expected.
    UnexpectedTag {
        /// Tag the caller required.
        expected: u8,
        /// Tag actually present.
        found: u8,
    },
    /// An unknown or unsupported tag was encountered.
    UnknownTag(u8),
    /// Nesting exceeded the decoder's depth limit.
    DepthExceeded,
    /// A value's content bytes were invalid for its type.
    BadValue(&'static str),
    /// Trailing bytes remained after a complete top-level value.
    TrailingBytes(usize),
    /// An integer did not fit the requested native width.
    IntegerOverflow,
    /// A structure-level constraint failed (missing field, wrong arity...).
    Structure(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadLength => write!(f, "malformed length field"),
            CodecError::UnexpectedTag { expected, found } => {
                write!(f, "expected tag 0x{expected:02x}, found 0x{found:02x}")
            }
            CodecError::UnknownTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            CodecError::DepthExceeded => write!(f, "nesting depth limit exceeded"),
            CodecError::BadValue(what) => write!(f, "invalid value content: {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::IntegerOverflow => write!(f, "integer does not fit target type"),
            CodecError::Structure(msg) => write!(f, "structure error: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}
