//! Admission checking: abstract resource requests against a resource page.
//!
//! The JPA uses the resource page to help the user "in creating a job
//! suitable for the selected destination system" (§5.4); the NJS re-checks
//! on arrival. Both call [`check_request`].

use crate::page::ResourcePage;
use core::fmt;
use unicore_ajo::ResourceRequest;

/// One violated limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Too few processors requested.
    TooFewProcessors {
        /// Requested count.
        requested: u32,
        /// Site minimum.
        minimum: u32,
    },
    /// Too many processors requested.
    TooManyProcessors {
        /// Requested count.
        requested: u32,
        /// Site maximum.
        maximum: u32,
    },
    /// Run time below the site minimum.
    RunTimeTooShort {
        /// Requested seconds.
        requested: u64,
        /// Site minimum seconds.
        minimum: u64,
    },
    /// Run time above the site maximum.
    RunTimeTooLong {
        /// Requested seconds.
        requested: u64,
        /// Site maximum seconds.
        maximum: u64,
    },
    /// Memory above the site maximum.
    TooMuchMemory {
        /// Requested MB.
        requested: u64,
        /// Site maximum MB.
        maximum: u64,
    },
    /// Permanent disk above the site maximum.
    TooMuchPermanentDisk {
        /// Requested MB.
        requested: u64,
        /// Site maximum MB.
        maximum: u64,
    },
    /// Temporary disk above the site maximum.
    TooMuchTemporaryDisk {
        /// Requested MB.
        requested: u64,
        /// Site maximum MB.
        maximum: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TooFewProcessors { requested, minimum } => {
                write!(f, "{requested} processors below minimum {minimum}")
            }
            Violation::TooManyProcessors { requested, maximum } => {
                write!(f, "{requested} processors above maximum {maximum}")
            }
            Violation::RunTimeTooShort { requested, minimum } => {
                write!(f, "run time {requested}s below minimum {minimum}s")
            }
            Violation::RunTimeTooLong { requested, maximum } => {
                write!(f, "run time {requested}s above maximum {maximum}s")
            }
            Violation::TooMuchMemory { requested, maximum } => {
                write!(f, "memory {requested}MB above maximum {maximum}MB")
            }
            Violation::TooMuchPermanentDisk { requested, maximum } => {
                write!(f, "permanent disk {requested}MB above maximum {maximum}MB")
            }
            Violation::TooMuchTemporaryDisk { requested, maximum } => {
                write!(f, "temporary disk {requested}MB above maximum {maximum}MB")
            }
        }
    }
}

/// Checks a request against a page; returns every violated limit.
pub fn check_request(request: &ResourceRequest, page: &ResourcePage) -> Vec<Violation> {
    let l = &page.limits;
    let mut violations = Vec::new();
    if request.processors < l.min_processors {
        violations.push(Violation::TooFewProcessors {
            requested: request.processors,
            minimum: l.min_processors,
        });
    }
    if request.processors > l.max_processors {
        violations.push(Violation::TooManyProcessors {
            requested: request.processors,
            maximum: l.max_processors,
        });
    }
    if request.run_time_secs < l.min_run_time_secs {
        violations.push(Violation::RunTimeTooShort {
            requested: request.run_time_secs,
            minimum: l.min_run_time_secs,
        });
    }
    if request.run_time_secs > l.max_run_time_secs {
        violations.push(Violation::RunTimeTooLong {
            requested: request.run_time_secs,
            maximum: l.max_run_time_secs,
        });
    }
    if request.memory_mb > l.max_memory_mb {
        violations.push(Violation::TooMuchMemory {
            requested: request.memory_mb,
            maximum: l.max_memory_mb,
        });
    }
    if request.disk_permanent_mb > l.max_disk_permanent_mb {
        violations.push(Violation::TooMuchPermanentDisk {
            requested: request.disk_permanent_mb,
            maximum: l.max_disk_permanent_mb,
        });
    }
    if request.disk_temporary_mb > l.max_disk_temporary_mb {
        violations.push(Violation::TooMuchTemporaryDisk {
            requested: request.disk_temporary_mb,
            maximum: l.max_disk_temporary_mb,
        });
    }
    violations
}

/// Convenience: true when the request fits the page.
pub fn admissible(request: &ResourceRequest, page: &ResourcePage) -> bool {
    check_request(request, page).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::page::deployment_page;

    fn page() -> ResourcePage {
        deployment_page("FZJ", "T3E", Architecture::CrayT3e)
    }

    #[test]
    fn fitting_request_passes() {
        let r = ResourceRequest::minimal()
            .with_processors(256)
            .with_run_time(3_600)
            .with_memory(1_000);
        assert!(admissible(&r, &page()));
    }

    #[test]
    fn each_limit_reports() {
        let p = page();
        let r = ResourceRequest {
            processors: 100_000,
            run_time_secs: 1_000_000,
            memory_mb: u64::MAX / 2,
            disk_permanent_mb: u64::MAX / 2,
            disk_temporary_mb: u64::MAX / 2,
        };
        let v = check_request(&r, &p);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn minimums_enforced() {
        let p = page();
        let r = ResourceRequest {
            processors: 0,
            run_time_secs: 1,
            memory_mb: 1,
            disk_permanent_mb: 0,
            disk_temporary_mb: 0,
        };
        let v = check_request(&r, &p);
        assert!(v.contains(&Violation::TooFewProcessors {
            requested: 0,
            minimum: 1
        }));
        assert!(v.contains(&Violation::RunTimeTooShort {
            requested: 1,
            minimum: 60
        }));
    }

    #[test]
    fn boundary_values_admissible() {
        let p = page();
        let r = ResourceRequest {
            processors: p.limits.max_processors,
            run_time_secs: p.limits.max_run_time_secs,
            memory_mb: p.limits.max_memory_mb,
            disk_permanent_mb: p.limits.max_disk_permanent_mb,
            disk_temporary_mb: p.limits.max_disk_temporary_mb,
        };
        assert!(admissible(&r, &p));
    }

    #[test]
    fn violations_display() {
        let v = Violation::TooManyProcessors {
            requested: 1000,
            maximum: 512,
        };
        assert_eq!(v.to_string(), "1000 processors above maximum 512");
    }
}
