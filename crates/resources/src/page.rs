//! Resource pages.
//!
//! "Each UNICORE site provides a so called resource page reflecting
//! resource information about their Vsites. Besides minimum and maximum
//! values for the resources needed for batch submission it contains
//! information about the system architecture, performance, and operating
//! system as well as available application and system software. ... It is
//! stored in ASN1 format for the JPA to include it into the GUI" (§5.4).

use crate::arch::Architecture;
use unicore_ajo::VsiteAddress;
use unicore_codec::{CodecError, DerCodec, Fields, Value};

/// Minimum/maximum bounds for batch submission at a Vsite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Fewest processors a batch job may request.
    pub min_processors: u32,
    /// Most processors a batch job may request.
    pub max_processors: u32,
    /// Shortest run time, seconds.
    pub min_run_time_secs: u64,
    /// Longest run time, seconds.
    pub max_run_time_secs: u64,
    /// Most memory, MB.
    pub max_memory_mb: u64,
    /// Most permanent disk, MB.
    pub max_disk_permanent_mb: u64,
    /// Most temporary disk, MB.
    pub max_disk_temporary_mb: u64,
}

impl ResourceLimits {
    /// Sanity: every min must not exceed its max.
    pub fn is_consistent(&self) -> bool {
        self.min_processors <= self.max_processors
            && self.min_run_time_secs <= self.max_run_time_secs
    }
}

/// Performance headline figures shown to the user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceInfo {
    /// Peak performance in GFlop/s.
    pub peak_gflops: f64,
    /// Memory per node, MB.
    pub memory_per_node_mb: u64,
    /// Number of nodes (or PEs).
    pub nodes: u32,
}

/// Kinds of software a resource page can advertise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SoftwareKind {
    /// A compiler (e.g. Fortran 90).
    Compiler,
    /// A library (e.g. BLAS, MPI).
    Library,
    /// An application package (e.g. Gaussian, Ansys).
    Package,
}

/// One advertised software item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareEntry {
    /// Kind of software.
    pub kind: SoftwareKind,
    /// Abstract name (what users request, e.g. `"f90"`, `"blas"`).
    pub name: String,
    /// Version string.
    pub version: String,
}

/// A Vsite's resource page.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourcePage {
    /// The Vsite this page describes.
    pub vsite: VsiteAddress,
    /// System architecture.
    pub architecture: Architecture,
    /// Operating system string.
    pub operating_system: String,
    /// Headline performance.
    pub performance: PerformanceInfo,
    /// Submission limits.
    pub limits: ResourceLimits,
    /// Advertised software.
    pub software: Vec<SoftwareEntry>,
    /// Price per node-hour in millicredits (site accounting currency).
    /// `0` means the site publishes no price; the broker then treats it
    /// as free. Rides the wire as a trailing tagged field, absent when
    /// zero, so pre-broker pages decode — and encode — unchanged.
    pub price_per_node_hour_milli: u64,
    /// The load the site last advertised with its page, in percent
    /// (0–100). A coarse, slowly-refreshed hint for brokers that cannot
    /// reach the live monitor; `0` means "not advertised". Trailing
    /// tagged field like the price.
    pub advertised_load_pct: u32,
}

impl ResourcePage {
    /// Whether the page advertises `name` of the given kind.
    pub fn has_software(&self, kind: SoftwareKind, name: &str) -> bool {
        self.software
            .iter()
            .any(|s| s.kind == kind && s.name == name)
    }

    /// Sets the advertised price (millicredits per node-hour).
    pub fn with_price(mut self, milli_per_node_hour: u64) -> Self {
        self.price_per_node_hour_milli = milli_per_node_hour;
        self
    }

    /// Sets the advertised load hint (percent, clamped to 100).
    pub fn with_advertised_load(mut self, pct: u32) -> Self {
        self.advertised_load_pct = pct.min(100);
        self
    }
}

impl SoftwareKind {
    fn to_enum(self) -> u32 {
        match self {
            SoftwareKind::Compiler => 0,
            SoftwareKind::Library => 1,
            SoftwareKind::Package => 2,
        }
    }

    fn from_enum(v: u32) -> Result<Self, CodecError> {
        Ok(match v {
            0 => SoftwareKind::Compiler,
            1 => SoftwareKind::Library,
            2 => SoftwareKind::Package,
            _ => return Err(CodecError::BadValue("SoftwareKind")),
        })
    }
}

impl DerCodec for ResourcePage {
    fn to_value(&self) -> Value {
        let mut items = vec![
            self.vsite.to_value(),
            self.architecture.to_value(),
            Value::string(&self.operating_system),
            // Performance: gflops ×1000 as integer to stay in DER integers.
            Value::Sequence(vec![
                Value::Integer((self.performance.peak_gflops * 1000.0).round() as i64),
                Value::Integer(self.performance.memory_per_node_mb as i64),
                Value::Integer(self.performance.nodes as i64),
            ]),
            Value::Sequence(vec![
                Value::Integer(self.limits.min_processors as i64),
                Value::Integer(self.limits.max_processors as i64),
                Value::Integer(self.limits.min_run_time_secs as i64),
                Value::Integer(self.limits.max_run_time_secs as i64),
                Value::Integer(self.limits.max_memory_mb as i64),
                Value::Integer(self.limits.max_disk_permanent_mb as i64),
                Value::Integer(self.limits.max_disk_temporary_mb as i64),
            ]),
            Value::Sequence(
                self.software
                    .iter()
                    .map(|s| {
                        Value::Sequence(vec![
                            Value::Enumerated(s.kind.to_enum()),
                            Value::string(&s.name),
                            Value::string(&s.version),
                        ])
                    })
                    .collect(),
            ),
        ];
        // Broker fields ride as trailing tagged optionals in ascending
        // tag order; a page that advertises neither encodes
        // byte-identically to the pre-broker format.
        if self.price_per_node_hour_milli != 0 {
            items.push(Value::tagged(
                0,
                Value::Integer(self.price_per_node_hour_milli as i64),
            ));
        }
        if self.advertised_load_pct != 0 {
            items.push(Value::tagged(
                1,
                Value::Integer(self.advertised_load_pct as i64),
            ));
        }
        Value::Sequence(items)
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let mut f = Fields::open(value, "ResourcePage")?;
        let vsite = VsiteAddress::from_value(f.next_value()?)?;
        let architecture = Architecture::from_value(f.next_value()?)?;
        let operating_system = f.next_string()?;

        let mut pf = Fields::open(f.next_value()?, "PerformanceInfo")?;
        let performance = PerformanceInfo {
            peak_gflops: pf.next_u64()? as f64 / 1000.0,
            memory_per_node_mb: pf.next_u64()?,
            nodes: pf.next_u32()?,
        };
        pf.finish()?;

        let mut lf = Fields::open(f.next_value()?, "ResourceLimits")?;
        let limits = ResourceLimits {
            min_processors: lf.next_u32()?,
            max_processors: lf.next_u32()?,
            min_run_time_secs: lf.next_u64()?,
            max_run_time_secs: lf.next_u64()?,
            max_memory_mb: lf.next_u64()?,
            max_disk_permanent_mb: lf.next_u64()?,
            max_disk_temporary_mb: lf.next_u64()?,
        };
        lf.finish()?;

        let sw_items = f.next_sequence()?;
        let mut software = Vec::with_capacity(sw_items.len());
        for item in sw_items {
            let mut sf = Fields::open(item, "SoftwareEntry")?;
            software.push(SoftwareEntry {
                kind: SoftwareKind::from_enum(sf.next_enum()?)?,
                name: sf.next_string()?,
                version: sf.next_string()?,
            });
            sf.finish()?;
        }
        let price_per_node_hour_milli = match f.optional_tagged(0) {
            Some(v) => v
                .as_u64()
                .ok_or(CodecError::BadValue("ResourcePage price"))?,
            None => 0,
        };
        let advertised_load_pct = match f.optional_tagged(1) {
            Some(v) => v
                .as_u64()
                .ok_or(CodecError::BadValue("ResourcePage load"))?
                .min(100) as u32,
            None => 0,
        };
        f.finish()?;
        Ok(ResourcePage {
            vsite,
            architecture,
            operating_system,
            performance,
            limits,
            software,
            price_per_node_hour_milli,
            advertised_load_pct,
        })
    }
}

/// Builds the canonical resource pages of the paper's §5.7 deployment.
///
/// Figures are period-plausible rather than archival: a 512-PE T3E at FZJ,
/// a 52-PE VPP/700 at RUS, an SP-2 at RUKA/LRZ, an SX-4 at DWD.
pub fn deployment_page(usite: &str, vsite: &str, architecture: Architecture) -> ResourcePage {
    // Price per node-hour in millicredits, roughly tracking per-node
    // peak performance, so the broker has a real cost axis to trade
    // against load.
    let (nodes, mem_per_node, gflops, max_time, price) = match architecture {
        Architecture::CrayT3e => (512, 128, 460.0, 43_200, 900),
        Architecture::FujitsuVpp700 => (52, 2048, 114.0, 86_400, 2_200),
        Architecture::IbmSp2 => (77, 256, 20.0, 43_200, 260),
        Architecture::NecSx4 => (32, 4096, 64.0, 86_400, 2_000),
        Architecture::Generic => (8, 512, 2.0, 21_600, 250),
    };
    ResourcePage {
        vsite: VsiteAddress::new(usite, vsite),
        architecture,
        operating_system: match architecture {
            Architecture::CrayT3e => "UNICOS/mk".into(),
            Architecture::FujitsuVpp700 => "UXP/V".into(),
            Architecture::IbmSp2 => "AIX 4.3".into(),
            Architecture::NecSx4 => "SUPER-UX".into(),
            Architecture::Generic => "Solaris 2.6".into(),
        },
        performance: PerformanceInfo {
            peak_gflops: gflops,
            memory_per_node_mb: mem_per_node,
            nodes,
        },
        limits: ResourceLimits {
            min_processors: 1,
            max_processors: nodes,
            min_run_time_secs: 60,
            max_run_time_secs: max_time,
            max_memory_mb: mem_per_node * nodes as u64,
            max_disk_permanent_mb: 100_000,
            max_disk_temporary_mb: 200_000,
        },
        software: vec![
            SoftwareEntry {
                kind: SoftwareKind::Compiler,
                name: "f90".into(),
                version: "1.0".into(),
            },
            SoftwareEntry {
                kind: SoftwareKind::Library,
                name: "mpi".into(),
                version: "1.1".into(),
            },
            SoftwareEntry {
                kind: SoftwareKind::Library,
                name: "blas".into(),
                version: "3".into(),
            },
        ],
        price_per_node_hour_milli: price,
        advertised_load_pct: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_pages_are_consistent() {
        for arch in Architecture::ALL {
            let page = deployment_page("FZJ", "V", arch);
            assert!(page.limits.is_consistent(), "{arch:?}");
            assert!(page.performance.nodes > 0);
            assert!(page.has_software(SoftwareKind::Compiler, "f90"));
        }
    }

    #[test]
    fn der_round_trip() {
        let page = deployment_page("FZJ", "T3E", Architecture::CrayT3e);
        let back = ResourcePage::from_der(&page.to_der()).unwrap();
        assert_eq!(back, page);
    }

    #[test]
    fn software_lookup() {
        let page = deployment_page("DWD", "SX4", Architecture::NecSx4);
        assert!(page.has_software(SoftwareKind::Library, "mpi"));
        assert!(!page.has_software(SoftwareKind::Package, "gaussian94"));
        assert!(!page.has_software(SoftwareKind::Package, "mpi")); // kind matters
    }

    #[test]
    fn broker_fields_round_trip() {
        let page = deployment_page("FZJ", "T3E", Architecture::CrayT3e)
            .with_price(1234)
            .with_advertised_load(63);
        let back = ResourcePage::from_der(&page.to_der()).unwrap();
        assert_eq!(back.price_per_node_hour_milli, 1234);
        assert_eq!(back.advertised_load_pct, 63);
        assert_eq!(back, page);
    }

    #[test]
    fn pre_broker_page_bytes_unchanged() {
        // A page advertising neither price nor load must encode exactly
        // as the pre-broker format did: the old positional sequence with
        // no trailing fields — and those old bytes must still decode.
        let mut page = deployment_page("FZJ", "T3E", Architecture::CrayT3e);
        page.price_per_node_hour_milli = 0;
        page.advertised_load_pct = 0;
        let der = page.to_der();
        // Re-encode the old six-field shape by hand and compare bytes.
        let old = Value::Sequence(match page.to_value() {
            Value::Sequence(items) => items.into_iter().take(6).collect(),
            _ => unreachable!(),
        });
        assert_eq!(der, unicore_codec::encode(&old));
        let back = ResourcePage::from_der(&der).unwrap();
        assert_eq!(back.price_per_node_hour_milli, 0);
        assert_eq!(back.advertised_load_pct, 0);
        assert_eq!(back, page);
    }

    #[test]
    fn limits_consistency_check() {
        let mut l = deployment_page("X", "Y", Architecture::Generic).limits;
        assert!(l.is_consistent());
        l.min_processors = l.max_processors + 1;
        assert!(!l.is_consistent());
    }
}
