//! # unicore-resources
//!
//! The UNICORE resource model (§5.4 of the paper): per-Vsite *resource
//! pages* with limits, architecture, performance and software inventory,
//! authored through a resource-page *editor*, published in a per-Usite
//! *directory* stored in ASN.1 (DER), and consulted by both the JPA (to
//! build admissible jobs) and the NJS (to re-check on arrival).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arch;
pub mod check;
pub mod directory;
pub mod page;

pub use arch::Architecture;
pub use check::{admissible, check_request, Violation};
pub use directory::{EditorError, ResourceDirectory, ResourcePageEditor};
pub use page::{
    deployment_page, PerformanceInfo, ResourceLimits, ResourcePage, SoftwareEntry, SoftwareKind,
};
