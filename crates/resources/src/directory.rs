//! The resource-page editor and per-Usite directory.
//!
//! "This information is prepared by a UNICORE site administrator through a
//! resource page editor" (§5.4). [`ResourcePageEditor`] is that editor as
//! an API; [`ResourceDirectory`] is the set of pages a UNICORE server hands
//! to the JPA together with the applets.

use crate::arch::Architecture;
use crate::page::{PerformanceInfo, ResourceLimits, ResourcePage, SoftwareEntry, SoftwareKind};
use std::collections::BTreeMap;
use unicore_ajo::VsiteAddress;
use unicore_codec::{CodecError, DerCodec, Value};

/// Errors from the editor's validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditorError {
    /// min > max somewhere in the limits.
    InconsistentLimits,
    /// Performance figures are degenerate (0 nodes).
    DegeneratePerformance,
    /// The same software (kind, name) listed twice.
    DuplicateSoftware(String),
}

impl core::fmt::Display for EditorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EditorError::InconsistentLimits => write!(f, "limits have min above max"),
            EditorError::DegeneratePerformance => write!(f, "performance figures degenerate"),
            EditorError::DuplicateSoftware(n) => write!(f, "software '{n}' listed twice"),
        }
    }
}

impl std::error::Error for EditorError {}

/// Builder used by the site administrator to author a resource page.
pub struct ResourcePageEditor {
    page: ResourcePage,
}

impl ResourcePageEditor {
    /// Starts a page for `vsite` on `architecture` with sane defaults.
    pub fn new(vsite: VsiteAddress, architecture: Architecture) -> Self {
        ResourcePageEditor {
            page: ResourcePage {
                vsite,
                architecture,
                operating_system: "unknown".into(),
                performance: PerformanceInfo {
                    peak_gflops: 1.0,
                    memory_per_node_mb: 256,
                    nodes: 1,
                },
                limits: ResourceLimits {
                    min_processors: 1,
                    max_processors: 1,
                    min_run_time_secs: 60,
                    max_run_time_secs: 3_600,
                    max_memory_mb: 256,
                    max_disk_permanent_mb: 1_024,
                    max_disk_temporary_mb: 4_096,
                },
                software: Vec::new(),
                price_per_node_hour_milli: 0,
                advertised_load_pct: 0,
            },
        }
    }

    /// Sets the operating system string.
    pub fn operating_system(mut self, os: impl Into<String>) -> Self {
        self.page.operating_system = os.into();
        self
    }

    /// Sets the performance block.
    pub fn performance(mut self, perf: PerformanceInfo) -> Self {
        self.page.performance = perf;
        self
    }

    /// Sets the advertised price (millicredits per node-hour).
    pub fn price(mut self, milli_per_node_hour: u64) -> Self {
        self.page.price_per_node_hour_milli = milli_per_node_hour;
        self
    }

    /// Sets the advertised load hint (percent).
    pub fn advertised_load(mut self, pct: u32) -> Self {
        self.page.advertised_load_pct = pct.min(100);
        self
    }

    /// Sets the limits block.
    pub fn limits(mut self, limits: ResourceLimits) -> Self {
        self.page.limits = limits;
        self
    }

    /// Adds a software entry.
    pub fn software(
        mut self,
        kind: SoftwareKind,
        name: impl Into<String>,
        version: impl Into<String>,
    ) -> Self {
        self.page.software.push(SoftwareEntry {
            kind,
            name: name.into(),
            version: version.into(),
        });
        self
    }

    /// Validates and produces the page.
    pub fn build(self) -> Result<ResourcePage, EditorError> {
        if !self.page.limits.is_consistent() {
            return Err(EditorError::InconsistentLimits);
        }
        if self.page.performance.nodes == 0 {
            return Err(EditorError::DegeneratePerformance);
        }
        let mut seen = std::collections::HashSet::new();
        for sw in &self.page.software {
            if !seen.insert((sw.kind, sw.name.clone())) {
                return Err(EditorError::DuplicateSoftware(sw.name.clone()));
            }
        }
        Ok(self.page)
    }
}

/// All resource pages a Usite publishes (one per Vsite), ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceDirectory {
    pages: BTreeMap<String, ResourcePage>,
}

impl ResourceDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or replaces) a page.
    pub fn publish(&mut self, page: ResourcePage) {
        self.pages.insert(page.vsite.to_string(), page);
    }

    /// Page for an exact Vsite address.
    pub fn page(&self, vsite: &VsiteAddress) -> Option<&ResourcePage> {
        self.pages.get(&vsite.to_string())
    }

    /// All pages in name order.
    pub fn pages(&self) -> impl Iterator<Item = &ResourcePage> {
        self.pages.values()
    }

    /// Number of published pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no pages are published.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

impl DerCodec for ResourceDirectory {
    fn to_value(&self) -> Value {
        Value::Sequence(self.pages.values().map(|p| p.to_value()).collect())
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let items = value
            .as_sequence()
            .ok_or(CodecError::BadValue("ResourceDirectory"))?;
        let mut dir = ResourceDirectory::new();
        for item in items {
            dir.publish(ResourcePage::from_value(item)?);
        }
        Ok(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::deployment_page;

    #[test]
    fn editor_builds_valid_page() {
        let page = ResourcePageEditor::new(VsiteAddress::new("FZJ", "T3E"), Architecture::CrayT3e)
            .operating_system("UNICOS/mk")
            .performance(PerformanceInfo {
                peak_gflops: 460.0,
                memory_per_node_mb: 128,
                nodes: 512,
            })
            .limits(ResourceLimits {
                min_processors: 1,
                max_processors: 512,
                min_run_time_secs: 60,
                max_run_time_secs: 43_200,
                max_memory_mb: 65_536,
                max_disk_permanent_mb: 10_000,
                max_disk_temporary_mb: 50_000,
            })
            .software(SoftwareKind::Compiler, "f90", "3.2")
            .software(SoftwareKind::Library, "mpi", "1.1")
            .build()
            .unwrap();
        assert_eq!(page.architecture, Architecture::CrayT3e);
        assert!(page.has_software(SoftwareKind::Library, "mpi"));
    }

    #[test]
    fn editor_rejects_bad_limits() {
        let err = ResourcePageEditor::new(VsiteAddress::new("X", "Y"), Architecture::Generic)
            .limits(ResourceLimits {
                min_processors: 8,
                max_processors: 4,
                min_run_time_secs: 60,
                max_run_time_secs: 600,
                max_memory_mb: 1,
                max_disk_permanent_mb: 1,
                max_disk_temporary_mb: 1,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, EditorError::InconsistentLimits);
    }

    #[test]
    fn editor_rejects_duplicate_software() {
        let err = ResourcePageEditor::new(VsiteAddress::new("X", "Y"), Architecture::Generic)
            .software(SoftwareKind::Library, "blas", "2")
            .software(SoftwareKind::Library, "blas", "3")
            .build()
            .unwrap_err();
        assert!(matches!(err, EditorError::DuplicateSoftware(_)));
    }

    #[test]
    fn editor_rejects_zero_nodes() {
        let err = ResourcePageEditor::new(VsiteAddress::new("X", "Y"), Architecture::Generic)
            .performance(PerformanceInfo {
                peak_gflops: 1.0,
                memory_per_node_mb: 1,
                nodes: 0,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, EditorError::DegeneratePerformance);
    }

    #[test]
    fn same_software_different_kind_allowed() {
        ResourcePageEditor::new(VsiteAddress::new("X", "Y"), Architecture::Generic)
            .software(SoftwareKind::Library, "hdf", "4")
            .software(SoftwareKind::Package, "hdf", "4")
            .build()
            .unwrap();
    }

    #[test]
    fn directory_publish_and_lookup() {
        let mut dir = ResourceDirectory::new();
        dir.publish(deployment_page("FZJ", "T3E", Architecture::CrayT3e));
        dir.publish(deployment_page("FZJ", "SP2", Architecture::IbmSp2));
        assert_eq!(dir.len(), 2);
        assert!(dir.page(&VsiteAddress::new("FZJ", "T3E")).is_some());
        assert!(dir.page(&VsiteAddress::new("FZJ", "SX4")).is_none());
        // Replacement keeps one entry.
        dir.publish(deployment_page("FZJ", "T3E", Architecture::CrayT3e));
        assert_eq!(dir.len(), 2);
    }

    #[test]
    fn directory_der_round_trip() {
        let mut dir = ResourceDirectory::new();
        dir.publish(deployment_page("LRZ", "SP2", Architecture::IbmSp2));
        dir.publish(deployment_page("DWD", "SX4", Architecture::NecSx4));
        let back = ResourceDirectory::from_der(&dir.to_der()).unwrap();
        assert_eq!(back, dir);
    }
}
