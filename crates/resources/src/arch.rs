//! The destination-system architectures of the 1999 deployment.
//!
//! "The systems covered are Cray T3E, Fujitsu VPP/700, IBM SP-2, and NEC
//! SX-4" (§5.7). Each architecture has its own batch-directive dialect and
//! nomenclature, which is exactly what the NJS translation tables hide.

use unicore_codec::{CodecError, DerCodec, Value};

/// A destination system architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Cray T3E (MPP, NQE/NQS batch dialect).
    CrayT3e,
    /// Fujitsu VPP/700 (vector-parallel, NQS dialect).
    FujitsuVpp700,
    /// IBM SP-2 (cluster, LoadLeveler dialect).
    IbmSp2,
    /// NEC SX-4 (vector, NQS dialect).
    NecSx4,
    /// A generic workstation-class system (Codine-style dialect).
    Generic,
}

impl Architecture {
    /// All architectures of the paper's deployment plus the generic one.
    pub const ALL: [Architecture; 5] = [
        Architecture::CrayT3e,
        Architecture::FujitsuVpp700,
        Architecture::IbmSp2,
        Architecture::NecSx4,
        Architecture::Generic,
    ];

    /// Vendor marketing name.
    pub fn display_name(&self) -> &'static str {
        match self {
            Architecture::CrayT3e => "Cray T3E",
            Architecture::FujitsuVpp700 => "Fujitsu VPP/700",
            Architecture::IbmSp2 => "IBM SP-2",
            Architecture::NecSx4 => "NEC SX-4",
            Architecture::Generic => "Generic",
        }
    }

    /// The native batch system whose dialect the NJS must emit.
    pub fn batch_system(&self) -> &'static str {
        match self {
            Architecture::CrayT3e => "NQE",
            Architecture::FujitsuVpp700 => "NQS",
            Architecture::IbmSp2 => "LoadLeveler",
            Architecture::NecSx4 => "NQS",
            Architecture::Generic => "Codine",
        }
    }

    /// The native Fortran 90 compiler command.
    pub fn f90_compiler(&self) -> &'static str {
        match self {
            Architecture::CrayT3e => "f90",
            Architecture::FujitsuVpp700 => "frt",
            Architecture::IbmSp2 => "xlf90",
            Architecture::NecSx4 => "f90sx",
            Architecture::Generic => "f90",
        }
    }

    fn to_enum(self) -> u32 {
        match self {
            Architecture::CrayT3e => 0,
            Architecture::FujitsuVpp700 => 1,
            Architecture::IbmSp2 => 2,
            Architecture::NecSx4 => 3,
            Architecture::Generic => 4,
        }
    }

    fn from_enum(v: u32) -> Result<Self, CodecError> {
        Ok(match v {
            0 => Architecture::CrayT3e,
            1 => Architecture::FujitsuVpp700,
            2 => Architecture::IbmSp2,
            3 => Architecture::NecSx4,
            4 => Architecture::Generic,
            _ => return Err(CodecError::BadValue("Architecture")),
        })
    }
}

impl DerCodec for Architecture {
    fn to_value(&self) -> Value {
        Value::Enumerated(self.to_enum())
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        Architecture::from_enum(
            value
                .as_enum()
                .ok_or(CodecError::BadValue("Architecture"))?,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            Architecture::ALL.iter().map(|a| a.display_name()).collect();
        assert_eq!(names.len(), Architecture::ALL.len());
    }

    #[test]
    fn round_trip_all() {
        for a in Architecture::ALL {
            assert_eq!(Architecture::from_der(&a.to_der()).unwrap(), a);
        }
    }

    #[test]
    fn dialect_mapping() {
        assert_eq!(Architecture::CrayT3e.batch_system(), "NQE");
        assert_eq!(Architecture::IbmSp2.batch_system(), "LoadLeveler");
        assert_eq!(Architecture::IbmSp2.f90_compiler(), "xlf90");
        assert_eq!(Architecture::NecSx4.f90_compiler(), "f90sx");
    }
}
