//! Property tests for the resource page codec: every page — including
//! the broker's trailing price and advertised-load fields — survives a
//! DER round-trip exactly, and pages that advertise neither broker
//! field encode byte-identically to the pre-broker format.

use proptest::prelude::*;
use unicore_ajo::VsiteAddress;
use unicore_codec::{DerCodec, Value};
use unicore_resources::{
    Architecture, PerformanceInfo, ResourceLimits, ResourcePage, SoftwareEntry, SoftwareKind,
};

fn architecture() -> impl Strategy<Value = Architecture> {
    (0usize..Architecture::ALL.len()).prop_map(|i| Architecture::ALL[i])
}

fn software_kind() -> impl Strategy<Value = SoftwareKind> {
    prop_oneof![
        Just(SoftwareKind::Compiler),
        Just(SoftwareKind::Library),
        Just(SoftwareKind::Package),
    ]
}

fn software() -> impl Strategy<Value = Vec<SoftwareEntry>> {
    proptest::collection::vec(
        (software_kind(), "[a-z0-9]{1,10}", "[0-9.]{1,6}").prop_map(|(kind, name, version)| {
            SoftwareEntry {
                kind,
                name,
                version,
            }
        }),
        0..4,
    )
}

/// Performance figures. GFlop/s ride the wire as an integer number of
/// milliGFlop/s, so generate on that grid to round-trip exactly.
fn performance() -> impl Strategy<Value = PerformanceInfo> {
    (0u64..10_000_000, 0u64..(1 << 32), 1u32..10_000).prop_map(
        |(milligflops, memory_per_node_mb, nodes)| PerformanceInfo {
            peak_gflops: milligflops as f64 / 1000.0,
            memory_per_node_mb,
            nodes,
        },
    )
}

fn limits() -> impl Strategy<Value = ResourceLimits> {
    (
        1u32..64,
        64u32..100_000,
        1u64..60,
        60u64..1_000_000,
        (0u64..(1 << 40), 0u64..(1 << 40), 0u64..(1 << 40)),
    )
        .prop_map(
            |(min_processors, max_processors, min_run_time_secs, max_run_time_secs, disks)| {
                ResourceLimits {
                    min_processors,
                    max_processors,
                    min_run_time_secs,
                    max_run_time_secs,
                    max_memory_mb: disks.0,
                    max_disk_permanent_mb: disks.1,
                    max_disk_temporary_mb: disks.2,
                }
            },
        )
}

/// A full page with arbitrary broker fields (0 means "not advertised").
fn page() -> impl Strategy<Value = ResourcePage> {
    (
        (
            "[A-Z]{2,6}",
            "[A-Z0-9]{2,6}",
            architecture(),
            "[A-Za-z0-9 .]{1,16}",
        ),
        performance(),
        limits(),
        software(),
        0u64..2_000_000,
        0u32..=100,
    )
        .prop_map(
            |(head, performance, limits, software, price, load)| ResourcePage {
                vsite: VsiteAddress::new(head.0, head.1),
                architecture: head.2,
                operating_system: head.3,
                performance,
                limits,
                software,
                price_per_node_hour_milli: price,
                advertised_load_pct: load,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn page_round_trips_through_der(p in page()) {
        let der = p.to_der();
        let back = ResourcePage::from_der(&der).expect("decodes");
        prop_assert_eq!(&back, &p);
        // Canonical: re-encoding yields identical bytes.
        prop_assert_eq!(back.to_der(), der);
    }

    #[test]
    fn broker_fields_are_trailing_optionals(p in page()) {
        // Stripping price and load must shorten (or preserve) the
        // encoding and still decode: the broker fields are strictly
        // additive over the pre-broker page format.
        let mut bare = p.clone();
        bare.price_per_node_hour_milli = 0;
        bare.advertised_load_pct = 0;
        let bare_der = bare.to_der();
        prop_assert!(bare_der.len() <= p.to_der().len());
        let back = ResourcePage::from_der(&bare_der).expect("bare page decodes");
        prop_assert_eq!(back, bare);
        // And the bare encoding carries no tagged trailer at all.
        let Value::Sequence(items) = bare.to_value() else {
            panic!("page encodes as a sequence");
        };
        prop_assert!(items.iter().all(|v| !matches!(v, Value::Tagged(..))));
    }
}
