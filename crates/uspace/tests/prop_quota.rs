//! Property tests: the quota invariant holds under arbitrary operation
//! sequences, and ownership is never bypassed.

use proptest::prelude::*;
use unicore_uspace::{SpaceError, VirtualFs};

#[derive(Debug, Clone)]
enum Op {
    Write { path: u8, len: usize, owner: u8 },
    Delete { path: u8, owner: u8 },
    Read { path: u8, owner: u8 },
    SetWorldReadable { path: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 0usize..300, 0u8..3).prop_map(|(path, len, owner)| Op::Write { path, len, owner }),
        (0u8..8, 0u8..3).prop_map(|(path, owner)| Op::Delete { path, owner }),
        (0u8..8, 0u8..3).prop_map(|(path, owner)| Op::Read { path, owner }),
        (0u8..8).prop_map(|path| Op::SetWorldReadable { path }),
    ]
}

fn path_name(p: u8) -> String {
    format!("/f{p}")
}

fn owner_name(o: u8) -> String {
    format!("user{o}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quota_accounting_is_exact(
        quota in 0u64..2_000,
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let mut fs = VirtualFs::with_quota(quota);
        // Shadow model: path -> (len, owner, world_readable).
        let mut model: std::collections::HashMap<String, (usize, String, bool)> =
            std::collections::HashMap::new();

        for op in ops {
            match op {
                Op::Write { path, len, owner } => {
                    let p = path_name(path);
                    let o = owner_name(owner);
                    let old = model.get(&p).map(|(l, _, _)| *l).unwrap_or(0);
                    let projected: u64 = model
                        .values()
                        .map(|(l, _, _)| *l as u64)
                        .sum::<u64>()
                        - old as u64
                        + len as u64;
                    let result = fs.write(&p, vec![0; len], &o);
                    if projected > quota {
                        let quota_err =
                            matches!(result, Err(SpaceError::QuotaExceeded { .. }));
                        prop_assert!(quota_err);
                    } else {
                        prop_assert!(result.is_ok());
                        model.insert(p, (len, o, false));
                    }
                }
                Op::Delete { path, owner } => {
                    let p = path_name(path);
                    let o = owner_name(owner);
                    let result = fs.delete(&p, &o);
                    match model.get(&p) {
                        Some((_, own, _)) if *own == o => {
                            prop_assert!(result.is_ok());
                            model.remove(&p);
                        }
                        Some(_) => {
                            let denied =
                                matches!(result, Err(SpaceError::PermissionDenied { .. }));
                            prop_assert!(denied);
                        }
                        None => {
                            let missing =
                                matches!(result, Err(SpaceError::FileNotFound { .. }));
                            prop_assert!(missing);
                        }
                    }
                }
                Op::Read { path, owner } => {
                    let p = path_name(path);
                    let o = owner_name(owner);
                    let result = fs.read(&p, &o);
                    match model.get(&p) {
                        Some((len, own, world)) if *own == o || *world => {
                            prop_assert_eq!(result.unwrap().data.len(), *len);
                        }
                        Some(_) => {
                            let denied =
                                matches!(result, Err(SpaceError::PermissionDenied { .. }));
                            prop_assert!(denied);
                        }
                        None => prop_assert!(result.is_err()),
                    }
                }
                Op::SetWorldReadable { path } => {
                    let p = path_name(path);
                    let result = fs.set_world_readable(&p, true);
                    if let Some(entry) = model.get_mut(&p) {
                        prop_assert!(result.is_ok());
                        entry.2 = true;
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
            }
            // Core invariants after every operation.
            let model_used: u64 = model.values().map(|(l, _, _)| *l as u64).sum();
            prop_assert_eq!(fs.used_bytes(), model_used);
            prop_assert!(fs.used_bytes() <= quota);
            prop_assert_eq!(fs.file_count(), model.len());
        }
    }
}
