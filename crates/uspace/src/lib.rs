//! # unicore-uspace
//!
//! UNICORE's data model (paper §4, §5.6): the distinction between data
//! *inside* UNICORE (per-job Uspaces) and *outside* (Xspaces at Vsites and
//! the user's workstation), with imports, exports and transfers as the only
//! crossings.
//!
//! - [`files::VirtualFs`] — an in-memory filesystem with ownership,
//!   world-readability, quotas and checksums.
//! - [`vspace::Vspace`] — one Vsite's Xspace plus its job Uspaces, with the
//!   local copy operations the NJS invokes for imports/exports and the
//!   read-out used by cross-site transfers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod files;
pub mod vspace;

pub use error::SpaceError;
pub use files::{FileEntry, VirtualFs};
pub use vspace::Vspace;
