//! Data-space errors.

use core::fmt;
use unicore_ajo::JobId;

/// Errors from Xspace/Uspace operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// No such file.
    FileNotFound {
        /// The missing path.
        path: String,
    },
    /// The owner does not match and the file is not world-readable.
    PermissionDenied {
        /// The path.
        path: String,
        /// Who tried.
        login: String,
    },
    /// A write would exceed the space's quota.
    QuotaExceeded {
        /// Bytes that would be used.
        needed: u64,
        /// The quota in bytes.
        quota: u64,
    },
    /// No Uspace exists for this job.
    NoSuchUspace(JobId),
    /// A Uspace already exists for this job.
    UspaceExists(JobId),
    /// Path is syntactically invalid (empty or contains NUL).
    BadPath(String),
    /// A partial write falls outside the declared file length.
    BadOffset {
        /// The partial's path.
        path: String,
    },
    /// Commit attempted before every byte of the partial arrived.
    IncompletePartial {
        /// The partial's path.
        path: String,
        /// Bytes covered so far.
        covered: u64,
        /// Declared total length.
        total: u64,
    },
    /// The assembled bytes do not match the expected checksum.
    ChecksumMismatch {
        /// The partial's path.
        path: String,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::FileNotFound { path } => write!(f, "file not found: {path}"),
            SpaceError::PermissionDenied { path, login } => {
                write!(f, "permission denied for {login} on {path}")
            }
            SpaceError::QuotaExceeded { needed, quota } => {
                write!(f, "quota exceeded: need {needed} bytes of {quota}")
            }
            SpaceError::NoSuchUspace(job) => write!(f, "no Uspace for job {job}"),
            SpaceError::UspaceExists(job) => write!(f, "Uspace for job {job} already exists"),
            SpaceError::BadPath(p) => write!(f, "bad path: {p:?}"),
            SpaceError::BadOffset { path } => {
                write!(f, "partial write out of range on {path}")
            }
            SpaceError::IncompletePartial {
                path,
                covered,
                total,
            } => write!(
                f,
                "partial {path} incomplete: {covered} of {total} bytes covered"
            ),
            SpaceError::ChecksumMismatch { path } => {
                write!(f, "checksum mismatch committing {path}")
            }
        }
    }
}

impl std::error::Error for SpaceError {}
