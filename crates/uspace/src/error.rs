//! Data-space errors.

use core::fmt;
use unicore_ajo::JobId;

/// Errors from Xspace/Uspace operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// No such file.
    FileNotFound {
        /// The missing path.
        path: String,
    },
    /// The owner does not match and the file is not world-readable.
    PermissionDenied {
        /// The path.
        path: String,
        /// Who tried.
        login: String,
    },
    /// A write would exceed the space's quota.
    QuotaExceeded {
        /// Bytes that would be used.
        needed: u64,
        /// The quota in bytes.
        quota: u64,
    },
    /// No Uspace exists for this job.
    NoSuchUspace(JobId),
    /// A Uspace already exists for this job.
    UspaceExists(JobId),
    /// Path is syntactically invalid (empty or contains NUL).
    BadPath(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::FileNotFound { path } => write!(f, "file not found: {path}"),
            SpaceError::PermissionDenied { path, login } => {
                write!(f, "permission denied for {login} on {path}")
            }
            SpaceError::QuotaExceeded { needed, quota } => {
                write!(f, "quota exceeded: need {needed} bytes of {quota}")
            }
            SpaceError::NoSuchUspace(job) => write!(f, "no Uspace for job {job}"),
            SpaceError::UspaceExists(job) => write!(f, "Uspace for job {job} already exists"),
            SpaceError::BadPath(p) => write!(f, "bad path: {p:?}"),
        }
    }
}

impl std::error::Error for SpaceError {}
