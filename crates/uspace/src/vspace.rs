//! The data space of one Vsite: its Xspace plus per-job Uspaces.
//!
//! "The file systems available at the Vsites of a Usite are called Xspace.
//! All data available to a UNICORE job constitute the UNICORE file space
//! (Uspace). ... Imports from Xspace to Uspace and exports from Uspace to
//! Xspace are always local operations performed at a Vsite. They are
//! implemented as a copy process available at the Vsite." (§4, §5.6)

use crate::error::SpaceError;
use crate::files::VirtualFs;
use std::collections::HashMap;
use unicore_ajo::JobId;

/// One Vsite's storage: the shared Xspace and the job Uspaces.
pub struct Vspace {
    xspace: VirtualFs,
    uspaces: HashMap<JobId, VirtualFs>,
    /// Total bytes copied by import/export (accounting for E5).
    bytes_copied: u64,
}

impl Default for Vspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Vspace {
    /// A fresh Vspace with an unlimited Xspace.
    pub fn new() -> Self {
        Vspace {
            xspace: VirtualFs::unlimited(),
            uspaces: HashMap::new(),
            bytes_copied: 0,
        }
    }

    /// Direct access to the Xspace (site-local files).
    pub fn xspace(&mut self) -> &mut VirtualFs {
        &mut self.xspace
    }

    /// Read-only access to the Xspace.
    pub fn xspace_ref(&self) -> &VirtualFs {
        &self.xspace
    }

    /// Creates the job directory (Uspace) with a byte quota.
    pub fn create_uspace(&mut self, job: JobId, quota_bytes: u64) -> Result<(), SpaceError> {
        if self.uspaces.contains_key(&job) {
            return Err(SpaceError::UspaceExists(job));
        }
        self.uspaces.insert(job, VirtualFs::with_quota(quota_bytes));
        Ok(())
    }

    /// Destroys the job directory, returning bytes freed.
    pub fn destroy_uspace(&mut self, job: JobId) -> Result<u64, SpaceError> {
        self.uspaces
            .remove(&job)
            .map(|fs| fs.used_bytes())
            .ok_or(SpaceError::NoSuchUspace(job))
    }

    /// Whether a Uspace exists for `job`.
    pub fn has_uspace(&self, job: JobId) -> bool {
        self.uspaces.contains_key(&job)
    }

    fn uspace_mut(&mut self, job: JobId) -> Result<&mut VirtualFs, SpaceError> {
        self.uspaces
            .get_mut(&job)
            .ok_or(SpaceError::NoSuchUspace(job))
    }

    /// The job's Uspace (read access).
    pub fn uspace(&self, job: JobId) -> Result<&VirtualFs, SpaceError> {
        self.uspaces.get(&job).ok_or(SpaceError::NoSuchUspace(job))
    }

    /// Import: Xspace → Uspace local copy, as `login`. Returns bytes copied.
    pub fn import_from_xspace(
        &mut self,
        job: JobId,
        xspace_path: &str,
        uspace_name: &str,
        login: &str,
    ) -> Result<u64, SpaceError> {
        let data = self.xspace.read(xspace_path, login)?.data.clone();
        let len = data.len() as u64;
        self.uspace_mut(job)?.write(uspace_name, data, login)?;
        self.bytes_copied += len;
        Ok(len)
    }

    /// Import: bytes carried in the AJO portfolio → Uspace.
    pub fn import_bytes(
        &mut self,
        job: JobId,
        uspace_name: &str,
        data: Vec<u8>,
        login: &str,
    ) -> Result<u64, SpaceError> {
        let len = data.len() as u64;
        self.uspace_mut(job)?.write(uspace_name, data, login)?;
        self.bytes_copied += len;
        Ok(len)
    }

    /// Export: Uspace → Xspace local copy. Returns bytes copied.
    pub fn export_to_xspace(
        &mut self,
        job: JobId,
        uspace_name: &str,
        xspace_path: &str,
        login: &str,
    ) -> Result<u64, SpaceError> {
        let data = {
            let fs = self.uspace(job)?;
            fs.read(uspace_name, login)?.data.clone()
        };
        let len = data.len() as u64;
        self.xspace.write(xspace_path, data, login)?;
        self.bytes_copied += len;
        Ok(len)
    }

    /// Takes a copy of a Uspace file for a cross-site transfer.
    pub fn read_for_transfer(
        &self,
        job: JobId,
        uspace_name: &str,
        login: &str,
    ) -> Result<Vec<u8>, SpaceError> {
        Ok(self.uspace(job)?.read(uspace_name, login)?.data.clone())
    }

    /// Takes a copy of a Uspace file plus its world-readability flag, for
    /// a streamed cross-site transfer that must preserve the flag.
    pub fn read_entry_for_transfer(
        &self,
        job: JobId,
        uspace_name: &str,
        login: &str,
    ) -> Result<(Vec<u8>, bool), SpaceError> {
        let entry = self.uspace(job)?.read(uspace_name, login)?;
        Ok((entry.data.clone(), entry.world_readable))
    }

    /// Writes a file into a job's Uspace (task output, received transfer).
    pub fn write_uspace_file(
        &mut self,
        job: JobId,
        name: &str,
        data: Vec<u8>,
        login: &str,
    ) -> Result<(), SpaceError> {
        self.uspace_mut(job)?.write(name, data, login)
    }

    /// Copies a file between two job Uspaces on this Vsite (dependency
    /// file flow between tasks of co-located jobs).
    pub fn copy_between_uspaces(
        &mut self,
        from_job: JobId,
        to_job: JobId,
        name: &str,
        dest_name: &str,
        login: &str,
    ) -> Result<u64, SpaceError> {
        let data = self.read_for_transfer(from_job, name, login)?;
        let len = data.len() as u64;
        self.write_uspace_file(to_job, dest_name, data, login)?;
        self.bytes_copied += len;
        Ok(len)
    }

    /// Total bytes moved by local copies (accounting).
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Number of live Uspaces.
    pub fn uspace_count(&self) -> usize {
        self.uspaces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JOB: JobId = JobId(1);
    const OTHER: JobId = JobId(2);

    fn vspace_with_job() -> Vspace {
        let mut v = Vspace::new();
        v.create_uspace(JOB, 1 << 20).unwrap();
        v
    }

    #[test]
    fn uspace_lifecycle() {
        let mut v = Vspace::new();
        assert!(!v.has_uspace(JOB));
        v.create_uspace(JOB, 100).unwrap();
        assert!(v.has_uspace(JOB));
        assert!(matches!(
            v.create_uspace(JOB, 100),
            Err(SpaceError::UspaceExists(_))
        ));
        v.write_uspace_file(JOB, "f", vec![0; 50], "alice").unwrap();
        assert_eq!(v.destroy_uspace(JOB).unwrap(), 50);
        assert!(matches!(
            v.destroy_uspace(JOB),
            Err(SpaceError::NoSuchUspace(_))
        ));
    }

    #[test]
    fn import_from_xspace_copies() {
        let mut v = vspace_with_job();
        v.xspace()
            .write("/home/alice/input.nc", vec![7; 100], "alice")
            .unwrap();
        let n = v
            .import_from_xspace(JOB, "/home/alice/input.nc", "input.nc", "alice")
            .unwrap();
        assert_eq!(n, 100);
        assert_eq!(
            v.uspace(JOB)
                .unwrap()
                .read("input.nc", "alice")
                .unwrap()
                .data,
            vec![7; 100]
        );
        // Source still present (it was a copy).
        assert!(v.xspace_ref().exists("/home/alice/input.nc"));
        assert_eq!(v.bytes_copied(), 100);
    }

    #[test]
    fn import_respects_xspace_permissions() {
        let mut v = vspace_with_job();
        v.xspace()
            .write("/home/bob/secret", vec![1], "bob")
            .unwrap();
        assert!(matches!(
            v.import_from_xspace(JOB, "/home/bob/secret", "s", "alice"),
            Err(SpaceError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn portfolio_import() {
        let mut v = vspace_with_job();
        v.import_bytes(JOB, "from_ws.dat", vec![9; 10], "alice")
            .unwrap();
        assert!(v.uspace(JOB).unwrap().exists("from_ws.dat"));
    }

    #[test]
    fn export_to_xspace() {
        let mut v = vspace_with_job();
        v.write_uspace_file(JOB, "result.dat", vec![3; 42], "alice")
            .unwrap();
        let n = v
            .export_to_xspace(JOB, "result.dat", "/archive/result.dat", "alice")
            .unwrap();
        assert_eq!(n, 42);
        assert_eq!(
            v.xspace_ref().read_raw("/archive/result.dat").unwrap().data,
            vec![3; 42]
        );
    }

    #[test]
    fn uspace_quota_enforced() {
        let mut v = Vspace::new();
        v.create_uspace(JOB, 10).unwrap();
        assert!(matches!(
            v.import_bytes(JOB, "big", vec![0; 11], "alice"),
            Err(SpaceError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn cross_uspace_copy() {
        let mut v = vspace_with_job();
        v.create_uspace(OTHER, 1 << 20).unwrap();
        v.write_uspace_file(JOB, "fields.dat", vec![5; 30], "alice")
            .unwrap();
        let n = v
            .copy_between_uspaces(JOB, OTHER, "fields.dat", "fields.dat", "alice")
            .unwrap();
        assert_eq!(n, 30);
        assert!(v.uspace(OTHER).unwrap().exists("fields.dat"));
        // Original remains.
        assert!(v.uspace(JOB).unwrap().exists("fields.dat"));
    }

    #[test]
    fn missing_uspace_errors() {
        let mut v = Vspace::new();
        assert!(matches!(
            v.import_bytes(JOB, "f", vec![], "a"),
            Err(SpaceError::NoSuchUspace(_))
        ));
        assert!(matches!(v.uspace(JOB), Err(SpaceError::NoSuchUspace(_))));
    }

    #[test]
    fn transfer_read_is_nondestructive() {
        let mut v = vspace_with_job();
        v.write_uspace_file(JOB, "t", vec![1, 2], "alice").unwrap();
        let data = v.read_for_transfer(JOB, "t", "alice").unwrap();
        assert_eq!(data, vec![1, 2]);
        assert!(v.uspace(JOB).unwrap().exists("t"));
    }
}
