//! An in-memory virtual filesystem — one per data space.

use crate::error::SpaceError;
use std::collections::BTreeMap;
use unicore_crypto::sha256;

/// A stored file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Contents.
    pub data: Vec<u8>,
    /// Owning login.
    pub owner: String,
    /// Whether any login may read it.
    pub world_readable: bool,
}

impl FileEntry {
    /// SHA-256 checksum of the contents (integrity checks on transfers).
    pub fn checksum(&self) -> [u8; 32] {
        sha256(&self.data)
    }
}

/// A file being assembled chunk by chunk. Invisible to `read`/`exists`/
/// `list` until committed, so a crash mid-transfer can never leave a torn
/// file where a reader would find it.
#[derive(Debug, Clone)]
struct PartialFile {
    data: Vec<u8>,
    /// Covered byte ranges, keyed by start, non-overlapping and merged.
    covered: BTreeMap<u64, u64>,
    covered_bytes: u64,
    owner: String,
}

impl PartialFile {
    /// Merges `[start, end)` into the coverage map, returning how many
    /// bytes are newly covered.
    fn cover(&mut self, start: u64, end: u64) -> u64 {
        let mut new_start = start;
        let mut new_end = end;
        let mut absorbed = 0u64;
        let mut to_remove = Vec::new();
        for (&s, &e) in self.covered.range(..=end) {
            if e < start {
                continue;
            }
            // Overlapping or adjacent: merge.
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            absorbed += e - s;
            to_remove.push(s);
        }
        for s in to_remove {
            self.covered.remove(&s);
        }
        self.covered.insert(new_start, new_end);
        let fresh = (new_end - new_start) - absorbed;
        self.covered_bytes += fresh;
        fresh
    }

    /// Bytes of `[start, end)` not yet covered (what a write would charge).
    fn fresh_in(&self, start: u64, end: u64) -> u64 {
        let mut overlap = 0u64;
        for (&s, &e) in self.covered.range(..end) {
            if e <= start {
                continue;
            }
            overlap += e.min(end) - s.max(start);
        }
        (end - start) - overlap
    }

    fn complete(&self) -> bool {
        self.covered_bytes == self.data.len() as u64
    }
}

/// A flat-namespace virtual filesystem with per-space quota.
///
/// Paths are plain strings ("/" is conventional, not structural); listing
/// takes a prefix. A quota of `u64::MAX` means unlimited (Xspaces).
#[derive(Debug, Clone)]
pub struct VirtualFs {
    files: BTreeMap<String, FileEntry>,
    partials: BTreeMap<String, PartialFile>,
    used: u64,
    quota: u64,
}

impl VirtualFs {
    /// A filesystem with the given byte quota.
    pub fn with_quota(quota: u64) -> Self {
        VirtualFs {
            files: BTreeMap::new(),
            partials: BTreeMap::new(),
            used: 0,
            quota,
        }
    }

    /// An unlimited filesystem (for Xspaces).
    pub fn unlimited() -> Self {
        Self::with_quota(u64::MAX)
    }

    fn check_path(path: &str) -> Result<(), SpaceError> {
        if path.is_empty() || path.contains('\0') {
            return Err(SpaceError::BadPath(path.to_owned()));
        }
        Ok(())
    }

    /// Writes (creates or replaces) a file.
    pub fn write(&mut self, path: &str, data: Vec<u8>, owner: &str) -> Result<(), SpaceError> {
        Self::check_path(path)?;
        let old = self
            .files
            .get(path)
            .map(|f| f.data.len() as u64)
            .unwrap_or(0);
        let needed = self.used - old + data.len() as u64;
        if needed > self.quota {
            return Err(SpaceError::QuotaExceeded {
                needed,
                quota: self.quota,
            });
        }
        self.used = needed;
        self.files.insert(
            path.to_owned(),
            FileEntry {
                data,
                owner: owner.to_owned(),
                world_readable: false,
            },
        );
        Ok(())
    }

    /// Opens (or resumes) a partial file of `total_len` bytes, to be
    /// filled by [`write_partial`] and made visible by [`commit_partial`].
    ///
    /// Nothing is charged against the quota yet: the data plane pays for
    /// bytes chunk by chunk as they land, not at admission. Reopening an
    /// existing partial with the same length and owner is a no-op (a
    /// resuming transfer keeps its progress); a different length discards
    /// the old partial and starts over.
    ///
    /// [`write_partial`]: VirtualFs::write_partial
    /// [`commit_partial`]: VirtualFs::commit_partial
    pub fn begin_partial(
        &mut self,
        path: &str,
        total_len: u64,
        owner: &str,
    ) -> Result<(), SpaceError> {
        Self::check_path(path)?;
        if let Some(p) = self.partials.get(path) {
            if p.data.len() as u64 == total_len && p.owner == owner {
                return Ok(());
            }
            self.abort_partial(path)?;
        }
        self.partials.insert(
            path.to_owned(),
            PartialFile {
                data: vec![0; total_len as usize],
                covered: BTreeMap::new(),
                covered_bytes: 0,
                owner: owner.to_owned(),
            },
        );
        Ok(())
    }

    /// Writes a chunk into a partial at `offset`, charging the quota for
    /// newly covered bytes only (duplicates and overlaps are free).
    /// Returns the bytes newly charged.
    pub fn write_partial(
        &mut self,
        path: &str,
        offset: u64,
        data: &[u8],
        owner: &str,
    ) -> Result<u64, SpaceError> {
        let partial = self
            .partials
            .get_mut(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        if partial.owner != owner {
            return Err(SpaceError::PermissionDenied {
                path: path.to_owned(),
                login: owner.to_owned(),
            });
        }
        let end = offset + data.len() as u64;
        if end > partial.data.len() as u64 {
            return Err(SpaceError::BadOffset {
                path: path.to_owned(),
            });
        }
        if data.is_empty() {
            return Ok(0);
        }
        // Chunk-granular quota: this write is charged for the bytes it
        // newly covers, so an over-quota transfer fails at the chunk that
        // crosses the line — not at admission, and not after filling the
        // space with invisible data.
        let fresh = partial.fresh_in(offset, end);
        if self.used + fresh > self.quota {
            return Err(SpaceError::QuotaExceeded {
                needed: self.used + fresh,
                quota: self.quota,
            });
        }
        let covered = partial.cover(offset, end);
        debug_assert_eq!(covered, fresh);
        partial.data[offset as usize..end as usize].copy_from_slice(data);
        self.used += fresh;
        Ok(fresh)
    }

    /// Commits a fully covered partial, making it visible atomically. If
    /// `expected_sum` is given, the assembled bytes must hash to it.
    pub fn commit_partial(
        &mut self,
        path: &str,
        expected_sum: Option<[u8; 32]>,
        world_readable: bool,
    ) -> Result<(), SpaceError> {
        let partial = self
            .partials
            .get(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        if !partial.complete() {
            return Err(SpaceError::IncompletePartial {
                path: path.to_owned(),
                covered: partial.covered_bytes,
                total: partial.data.len() as u64,
            });
        }
        if let Some(sum) = expected_sum {
            if sha256(&partial.data) != sum {
                return Err(SpaceError::ChecksumMismatch {
                    path: path.to_owned(),
                });
            }
        }
        let partial = self.partials.remove(path).expect("checked above");
        // Replacing a visible file reclaims its bytes; the partial's own
        // bytes were already charged chunk by chunk.
        if let Some(old) = self.files.get(path) {
            self.used -= old.data.len() as u64;
        }
        self.files.insert(
            path.to_owned(),
            FileEntry {
                data: partial.data,
                owner: partial.owner,
                world_readable,
            },
        );
        Ok(())
    }

    /// Discards a partial, refunding its charged bytes. Returns the bytes
    /// refunded.
    pub fn abort_partial(&mut self, path: &str) -> Result<u64, SpaceError> {
        let partial = self
            .partials
            .remove(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        self.used -= partial.covered_bytes;
        Ok(partial.covered_bytes)
    }

    /// Whether a partial is open at `path`.
    pub fn has_partial(&self, path: &str) -> bool {
        self.partials.contains_key(path)
    }

    /// Bytes covered so far in the partial at `path`.
    pub fn partial_covered(&self, path: &str) -> Option<u64> {
        self.partials.get(path).map(|p| p.covered_bytes)
    }

    /// Marks a file world-readable.
    pub fn set_world_readable(&mut self, path: &str, flag: bool) -> Result<(), SpaceError> {
        let entry = self
            .files
            .get_mut(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        entry.world_readable = flag;
        Ok(())
    }

    /// Reads a file as `login`, enforcing the ownership rule.
    pub fn read(&self, path: &str, login: &str) -> Result<&FileEntry, SpaceError> {
        let entry = self
            .files
            .get(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        if entry.owner != login && !entry.world_readable {
            return Err(SpaceError::PermissionDenied {
                path: path.to_owned(),
                login: login.to_owned(),
            });
        }
        Ok(entry)
    }

    /// Reads without a permission check (the space's own machinery).
    pub fn read_raw(&self, path: &str) -> Result<&FileEntry, SpaceError> {
        self.files
            .get(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })
    }

    /// Deletes a file as `login` (owner only).
    pub fn delete(&mut self, path: &str, login: &str) -> Result<(), SpaceError> {
        let entry = self
            .files
            .get(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        if entry.owner != login {
            return Err(SpaceError::PermissionDenied {
                path: path.to_owned(),
                login: login.to_owned(),
            });
        }
        let len = entry.data.len() as u64;
        self.files.remove(path);
        self.used -= len;
        Ok(())
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Paths starting with `prefix`, in order.
    pub fn list(&self, prefix: &str) -> Vec<&str> {
        self.files
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// The quota in bytes.
    pub fn quota_bytes(&self) -> u64 {
        self.quota
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut fs = VirtualFs::unlimited();
        fs.write("/home/a/in.dat", vec![1, 2, 3], "alice").unwrap();
        let f = fs.read("/home/a/in.dat", "alice").unwrap();
        assert_eq!(f.data, vec![1, 2, 3]);
        assert_eq!(f.owner, "alice");
    }

    #[test]
    fn missing_file_errors() {
        let fs = VirtualFs::unlimited();
        assert!(matches!(
            fs.read("/nope", "alice"),
            Err(SpaceError::FileNotFound { .. })
        ));
    }

    #[test]
    fn ownership_enforced() {
        let mut fs = VirtualFs::unlimited();
        fs.write("/x", vec![0], "alice").unwrap();
        assert!(matches!(
            fs.read("/x", "bob"),
            Err(SpaceError::PermissionDenied { .. })
        ));
        fs.set_world_readable("/x", true).unwrap();
        fs.read("/x", "bob").unwrap();
        // Deleting still requires ownership.
        assert!(fs.delete("/x", "bob").is_err());
        fs.delete("/x", "alice").unwrap();
        assert!(!fs.exists("/x"));
    }

    #[test]
    fn quota_enforced() {
        let mut fs = VirtualFs::with_quota(10);
        fs.write("/a", vec![0; 6], "u").unwrap();
        assert!(matches!(
            fs.write("/b", vec![0; 5], "u"),
            Err(SpaceError::QuotaExceeded { .. })
        ));
        fs.write("/b", vec![0; 4], "u").unwrap();
        assert_eq!(fs.used_bytes(), 10);
    }

    #[test]
    fn overwrite_reclaims_quota() {
        let mut fs = VirtualFs::with_quota(10);
        fs.write("/a", vec![0; 8], "u").unwrap();
        // Replacing with a smaller file frees space.
        fs.write("/a", vec![0; 2], "u").unwrap();
        assert_eq!(fs.used_bytes(), 2);
        fs.write("/b", vec![0; 8], "u").unwrap();
    }

    #[test]
    fn delete_frees_quota() {
        let mut fs = VirtualFs::with_quota(4);
        fs.write("/a", vec![0; 4], "u").unwrap();
        fs.delete("/a", "u").unwrap();
        assert_eq!(fs.used_bytes(), 0);
        fs.write("/b", vec![0; 4], "u").unwrap();
    }

    #[test]
    fn listing_by_prefix() {
        let mut fs = VirtualFs::unlimited();
        for p in ["/a/1", "/a/2", "/b/1", "/a-other"] {
            fs.write(p, vec![], "u").unwrap();
        }
        assert_eq!(fs.list("/a/"), vec!["/a/1", "/a/2"]);
        assert_eq!(fs.list("/b/"), vec!["/b/1"]);
        assert_eq!(fs.list("/z"), Vec::<&str>::new());
        assert_eq!(fs.list("").len(), 4);
    }

    #[test]
    fn bad_paths_rejected() {
        let mut fs = VirtualFs::unlimited();
        assert!(matches!(
            fs.write("", vec![], "u"),
            Err(SpaceError::BadPath(_))
        ));
        assert!(matches!(
            fs.write("a\0b", vec![], "u"),
            Err(SpaceError::BadPath(_))
        ));
    }

    #[test]
    fn partial_is_invisible_until_committed() {
        let mut fs = VirtualFs::unlimited();
        fs.begin_partial("/staged", 10, "u").unwrap();
        fs.write_partial("/staged", 0, &[1; 5], "u").unwrap();
        // A crash here (dropping the fs) can only ever lose the partial:
        // no reader path sees it.
        assert!(!fs.exists("/staged"));
        assert!(fs.read("/staged", "u").is_err());
        assert!(fs.list("").is_empty());
        assert!(fs.has_partial("/staged"));
        // Commit before full coverage is refused — never a torn file.
        assert!(matches!(
            fs.commit_partial("/staged", None, false),
            Err(SpaceError::IncompletePartial {
                covered: 5,
                total: 10,
                ..
            })
        ));
        fs.write_partial("/staged", 5, &[2; 5], "u").unwrap();
        fs.commit_partial("/staged", None, false).unwrap();
        assert_eq!(fs.read("/staged", "u").unwrap().data, {
            let mut v = vec![1; 5];
            v.extend_from_slice(&[2; 5]);
            v
        });
        assert!(!fs.has_partial("/staged"));
    }

    #[test]
    fn partial_quota_charged_per_chunk_not_admission() {
        let mut fs = VirtualFs::with_quota(8);
        // Admission of a 100-byte partial succeeds: nothing charged yet.
        fs.begin_partial("/big", 100, "u").unwrap();
        assert_eq!(fs.used_bytes(), 0);
        fs.write_partial("/big", 0, &[0; 6], "u").unwrap();
        assert_eq!(fs.used_bytes(), 6);
        // The chunk that crosses the quota line is the one refused.
        assert!(matches!(
            fs.write_partial("/big", 6, &[0; 6], "u"),
            Err(SpaceError::QuotaExceeded {
                needed: 12,
                quota: 8
            })
        ));
        // Rewriting covered bytes is free.
        fs.write_partial("/big", 2, &[9; 4], "u").unwrap();
        assert_eq!(fs.used_bytes(), 6);
        // Abort refunds exactly what was charged.
        assert_eq!(fs.abort_partial("/big").unwrap(), 6);
        assert_eq!(fs.used_bytes(), 0);
    }

    #[test]
    fn partial_checksum_gate() {
        let mut fs = VirtualFs::unlimited();
        fs.begin_partial("/f", 5, "u").unwrap();
        fs.write_partial("/f", 0, b"hello", "u").unwrap();
        assert!(matches!(
            fs.commit_partial("/f", Some([0; 32]), false),
            Err(SpaceError::ChecksumMismatch { .. })
        ));
        // The failed commit keeps the partial for retry.
        assert!(fs.has_partial("/f"));
        fs.commit_partial("/f", Some(sha256(b"hello")), false)
            .unwrap();
        assert_eq!(fs.read("/f", "u").unwrap().data, b"hello");
    }

    #[test]
    fn world_readability_survives_resume() {
        let mut fs = VirtualFs::unlimited();
        fs.begin_partial("/pub", 4, "u").unwrap();
        fs.write_partial("/pub", 0, &[1, 2], "u").unwrap();
        // Resume: reopening with the same geometry keeps progress.
        fs.begin_partial("/pub", 4, "u").unwrap();
        assert_eq!(fs.partial_covered("/pub"), Some(2));
        fs.write_partial("/pub", 2, &[3, 4], "u").unwrap();
        fs.commit_partial("/pub", None, true).unwrap();
        // The flag set at commit is intact for a foreign reader.
        assert!(fs.read("/pub", "someone-else").is_ok());
    }

    #[test]
    fn partial_overwrite_of_visible_file_reclaims_quota() {
        let mut fs = VirtualFs::with_quota(16);
        fs.write("/f", vec![0; 8], "u").unwrap();
        fs.begin_partial("/f", 8, "u").unwrap();
        fs.write_partial("/f", 0, &[1; 8], "u").unwrap();
        assert_eq!(fs.used_bytes(), 16);
        fs.commit_partial("/f", None, false).unwrap();
        // Old visible bytes reclaimed at the atomic swap.
        assert_eq!(fs.used_bytes(), 8);
        assert_eq!(fs.read("/f", "u").unwrap().data, vec![1; 8]);
    }

    #[test]
    fn partial_bounds_and_ownership() {
        let mut fs = VirtualFs::unlimited();
        fs.begin_partial("/f", 10, "alice").unwrap();
        assert!(matches!(
            fs.write_partial("/f", 8, &[0; 4], "alice"),
            Err(SpaceError::BadOffset { .. })
        ));
        assert!(matches!(
            fs.write_partial("/f", 0, &[0; 2], "bob"),
            Err(SpaceError::PermissionDenied { .. })
        ));
        assert!(matches!(
            fs.write_partial("/nope", 0, &[0; 2], "alice"),
            Err(SpaceError::FileNotFound { .. })
        ));
    }

    #[test]
    fn checksum_tracks_content() {
        let mut fs = VirtualFs::unlimited();
        fs.write("/f", b"hello".to_vec(), "u").unwrap();
        let c1 = fs.read_raw("/f").unwrap().checksum();
        fs.write("/f", b"hellp".to_vec(), "u").unwrap();
        let c2 = fs.read_raw("/f").unwrap().checksum();
        assert_ne!(c1, c2);
    }
}
