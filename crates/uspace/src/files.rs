//! An in-memory virtual filesystem — one per data space.

use crate::error::SpaceError;
use std::collections::BTreeMap;
use unicore_crypto::sha256;

/// A stored file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Contents.
    pub data: Vec<u8>,
    /// Owning login.
    pub owner: String,
    /// Whether any login may read it.
    pub world_readable: bool,
}

impl FileEntry {
    /// SHA-256 checksum of the contents (integrity checks on transfers).
    pub fn checksum(&self) -> [u8; 32] {
        sha256(&self.data)
    }
}

/// A flat-namespace virtual filesystem with per-space quota.
///
/// Paths are plain strings ("/" is conventional, not structural); listing
/// takes a prefix. A quota of `u64::MAX` means unlimited (Xspaces).
#[derive(Debug, Clone)]
pub struct VirtualFs {
    files: BTreeMap<String, FileEntry>,
    used: u64,
    quota: u64,
}

impl VirtualFs {
    /// A filesystem with the given byte quota.
    pub fn with_quota(quota: u64) -> Self {
        VirtualFs {
            files: BTreeMap::new(),
            used: 0,
            quota,
        }
    }

    /// An unlimited filesystem (for Xspaces).
    pub fn unlimited() -> Self {
        Self::with_quota(u64::MAX)
    }

    fn check_path(path: &str) -> Result<(), SpaceError> {
        if path.is_empty() || path.contains('\0') {
            return Err(SpaceError::BadPath(path.to_owned()));
        }
        Ok(())
    }

    /// Writes (creates or replaces) a file.
    pub fn write(&mut self, path: &str, data: Vec<u8>, owner: &str) -> Result<(), SpaceError> {
        Self::check_path(path)?;
        let old = self
            .files
            .get(path)
            .map(|f| f.data.len() as u64)
            .unwrap_or(0);
        let needed = self.used - old + data.len() as u64;
        if needed > self.quota {
            return Err(SpaceError::QuotaExceeded {
                needed,
                quota: self.quota,
            });
        }
        self.used = needed;
        self.files.insert(
            path.to_owned(),
            FileEntry {
                data,
                owner: owner.to_owned(),
                world_readable: false,
            },
        );
        Ok(())
    }

    /// Marks a file world-readable.
    pub fn set_world_readable(&mut self, path: &str, flag: bool) -> Result<(), SpaceError> {
        let entry = self
            .files
            .get_mut(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        entry.world_readable = flag;
        Ok(())
    }

    /// Reads a file as `login`, enforcing the ownership rule.
    pub fn read(&self, path: &str, login: &str) -> Result<&FileEntry, SpaceError> {
        let entry = self
            .files
            .get(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        if entry.owner != login && !entry.world_readable {
            return Err(SpaceError::PermissionDenied {
                path: path.to_owned(),
                login: login.to_owned(),
            });
        }
        Ok(entry)
    }

    /// Reads without a permission check (the space's own machinery).
    pub fn read_raw(&self, path: &str) -> Result<&FileEntry, SpaceError> {
        self.files
            .get(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })
    }

    /// Deletes a file as `login` (owner only).
    pub fn delete(&mut self, path: &str, login: &str) -> Result<(), SpaceError> {
        let entry = self
            .files
            .get(path)
            .ok_or_else(|| SpaceError::FileNotFound {
                path: path.to_owned(),
            })?;
        if entry.owner != login {
            return Err(SpaceError::PermissionDenied {
                path: path.to_owned(),
                login: login.to_owned(),
            });
        }
        let len = entry.data.len() as u64;
        self.files.remove(path);
        self.used -= len;
        Ok(())
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Paths starting with `prefix`, in order.
    pub fn list(&self, prefix: &str) -> Vec<&str> {
        self.files
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// The quota in bytes.
    pub fn quota_bytes(&self) -> u64 {
        self.quota
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut fs = VirtualFs::unlimited();
        fs.write("/home/a/in.dat", vec![1, 2, 3], "alice").unwrap();
        let f = fs.read("/home/a/in.dat", "alice").unwrap();
        assert_eq!(f.data, vec![1, 2, 3]);
        assert_eq!(f.owner, "alice");
    }

    #[test]
    fn missing_file_errors() {
        let fs = VirtualFs::unlimited();
        assert!(matches!(
            fs.read("/nope", "alice"),
            Err(SpaceError::FileNotFound { .. })
        ));
    }

    #[test]
    fn ownership_enforced() {
        let mut fs = VirtualFs::unlimited();
        fs.write("/x", vec![0], "alice").unwrap();
        assert!(matches!(
            fs.read("/x", "bob"),
            Err(SpaceError::PermissionDenied { .. })
        ));
        fs.set_world_readable("/x", true).unwrap();
        fs.read("/x", "bob").unwrap();
        // Deleting still requires ownership.
        assert!(fs.delete("/x", "bob").is_err());
        fs.delete("/x", "alice").unwrap();
        assert!(!fs.exists("/x"));
    }

    #[test]
    fn quota_enforced() {
        let mut fs = VirtualFs::with_quota(10);
        fs.write("/a", vec![0; 6], "u").unwrap();
        assert!(matches!(
            fs.write("/b", vec![0; 5], "u"),
            Err(SpaceError::QuotaExceeded { .. })
        ));
        fs.write("/b", vec![0; 4], "u").unwrap();
        assert_eq!(fs.used_bytes(), 10);
    }

    #[test]
    fn overwrite_reclaims_quota() {
        let mut fs = VirtualFs::with_quota(10);
        fs.write("/a", vec![0; 8], "u").unwrap();
        // Replacing with a smaller file frees space.
        fs.write("/a", vec![0; 2], "u").unwrap();
        assert_eq!(fs.used_bytes(), 2);
        fs.write("/b", vec![0; 8], "u").unwrap();
    }

    #[test]
    fn delete_frees_quota() {
        let mut fs = VirtualFs::with_quota(4);
        fs.write("/a", vec![0; 4], "u").unwrap();
        fs.delete("/a", "u").unwrap();
        assert_eq!(fs.used_bytes(), 0);
        fs.write("/b", vec![0; 4], "u").unwrap();
    }

    #[test]
    fn listing_by_prefix() {
        let mut fs = VirtualFs::unlimited();
        for p in ["/a/1", "/a/2", "/b/1", "/a-other"] {
            fs.write(p, vec![], "u").unwrap();
        }
        assert_eq!(fs.list("/a/"), vec!["/a/1", "/a/2"]);
        assert_eq!(fs.list("/b/"), vec!["/b/1"]);
        assert_eq!(fs.list("/z"), Vec::<&str>::new());
        assert_eq!(fs.list("").len(), 4);
    }

    #[test]
    fn bad_paths_rejected() {
        let mut fs = VirtualFs::unlimited();
        assert!(matches!(
            fs.write("", vec![], "u"),
            Err(SpaceError::BadPath(_))
        ));
        assert!(matches!(
            fs.write("a\0b", vec![], "u"),
            Err(SpaceError::BadPath(_))
        ));
    }

    #[test]
    fn checksum_tracks_content() {
        let mut fs = VirtualFs::unlimited();
        fs.write("/f", b"hello".to_vec(), "u").unwrap();
        let c1 = fs.read_raw("/f").unwrap().checksum();
        fs.write("/f", b"hellp".to_vec(), "u").unwrap();
        let c2 = fs.read_raw("/f").unwrap().checksum();
        assert_ne!(c1, c2);
    }
}
