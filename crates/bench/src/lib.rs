#![forbid(unsafe_code)]
//! # unicore-bench
//!
//! Shared fixtures for the experiment benchmarks (E1–E9 in DESIGN.md).
//!
//! Each bench target prints its experiment's *simulated* result table
//! first (these are the numbers recorded in EXPERIMENTS.md — deterministic
//! per seed) and then runs Criterion measurements of the *real* CPU cost
//! of the components involved.

use unicore_ajo::{
    AbstractJob, AbstractTask, ActionId, Dependency, ExecuteKind, GraphNode, ResourceRequest,
    TaskKind, UserAttributes, VsiteAddress,
};
use unicore_gateway::MappedUser;

/// The DN used by all benchmark users.
pub const BENCH_DN: &str = "C=DE, O=Bench, OU=Repro, CN=bench-user";

/// Standard user attributes for benchmark jobs.
pub fn bench_user_attrs() -> UserAttributes {
    UserAttributes::new(BENCH_DN, "users")
}

/// Standard mapped user for direct-NJS benchmarks.
pub fn bench_mapped_user() -> MappedUser {
    MappedUser {
        dn: BENCH_DN.into(),
        login: "bench".into(),
        account_group: "users".into(),
    }
}

/// A linear chain job of `n` script tasks at `usite`/`vsite`.
pub fn chain_job(usite: &str, vsite: &str, n: usize, sleep_secs: u64) -> AbstractJob {
    let mut job = AbstractJob::new(
        format!("chain{n}"),
        VsiteAddress::new(usite, vsite),
        bench_user_attrs(),
    );
    for i in 0..n {
        job.nodes.push((
            ActionId(i as u64 + 1),
            GraphNode::Task(AbstractTask {
                name: format!("t{i}"),
                resources: ResourceRequest::minimal().with_run_time(3_600),
                kind: TaskKind::Execute(ExecuteKind::Script {
                    script: format!("sleep {sleep_secs}\n"),
                }),
            }),
        ));
        if i > 0 {
            job.dependencies.push(Dependency {
                from: ActionId(i as u64),
                to: ActionId(i as u64 + 1),
                files: vec![],
            });
        }
    }
    job
}

/// A wide fan job: one root task, `width` independent successors.
pub fn fan_job(usite: &str, vsite: &str, width: usize) -> AbstractJob {
    let mut job = AbstractJob::new(
        format!("fan{width}"),
        VsiteAddress::new(usite, vsite),
        bench_user_attrs(),
    );
    job.nodes.push((
        ActionId(1),
        GraphNode::Task(AbstractTask {
            name: "root".into(),
            resources: ResourceRequest::minimal().with_run_time(600),
            kind: TaskKind::Execute(ExecuteKind::Script {
                script: "sleep 1\n".into(),
            }),
        }),
    ));
    for i in 0..width {
        let id = ActionId(i as u64 + 2);
        job.nodes.push((
            id,
            GraphNode::Task(AbstractTask {
                name: format!("leaf{i}"),
                resources: ResourceRequest::minimal().with_run_time(600),
                kind: TaskKind::Execute(ExecuteKind::Script {
                    script: "sleep 2\n".into(),
                }),
            }),
        ));
        job.dependencies.push(Dependency {
            from: ActionId(1),
            to: id,
            files: vec![],
        });
    }
    job
}

/// Formats a byte count for tables.
pub fn fmt_bytes(n: u64) -> String {
    if n >= 1 << 20 {
        format!("{:.0} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.0} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_validate() {
        chain_job("FZJ", "T3E", 10, 5).validate().unwrap();
        fan_job("FZJ", "T3E", 50).validate().unwrap();
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4096), "4 KiB");
        assert_eq!(fmt_bytes(16 << 20), "16 MiB");
    }
}
