#![forbid(unsafe_code)]
//! # unicore-bench
//!
//! Shared fixtures for the experiment benchmarks (E1–E9 in DESIGN.md).
//!
//! Each bench target prints its experiment's *simulated* result table
//! first (these are the numbers recorded in EXPERIMENTS.md — deterministic
//! per seed) and then runs Criterion measurements of the *real* CPU cost
//! of the components involved.

use unicore_ajo::{
    AbstractJob, AbstractTask, ActionId, Dependency, ExecuteKind, GraphNode, ResourceRequest,
    TaskKind, UserAttributes, VsiteAddress,
};
use unicore_gateway::MappedUser;

/// The DN used by all benchmark users.
pub const BENCH_DN: &str = "C=DE, O=Bench, OU=Repro, CN=bench-user";

/// Standard user attributes for benchmark jobs.
pub fn bench_user_attrs() -> UserAttributes {
    UserAttributes::new(BENCH_DN, "users")
}

/// Standard mapped user for direct-NJS benchmarks.
pub fn bench_mapped_user() -> MappedUser {
    MappedUser {
        dn: BENCH_DN.into(),
        login: "bench".into(),
        account_group: "users".into(),
    }
}

/// A linear chain job of `n` script tasks at `usite`/`vsite`.
pub fn chain_job(usite: &str, vsite: &str, n: usize, sleep_secs: u64) -> AbstractJob {
    let mut job = AbstractJob::new(
        format!("chain{n}"),
        VsiteAddress::new(usite, vsite),
        bench_user_attrs(),
    );
    for i in 0..n {
        job.nodes.push((
            ActionId(i as u64 + 1),
            GraphNode::Task(AbstractTask {
                name: format!("t{i}"),
                resources: ResourceRequest::minimal().with_run_time(3_600),
                kind: TaskKind::Execute(ExecuteKind::Script {
                    script: format!("sleep {sleep_secs}\n"),
                }),
            }),
        ));
        if i > 0 {
            job.dependencies.push(Dependency {
                from: ActionId(i as u64),
                to: ActionId(i as u64 + 1),
                files: vec![],
            });
        }
    }
    job
}

/// A wide fan job: one root task, `width` independent successors.
pub fn fan_job(usite: &str, vsite: &str, width: usize) -> AbstractJob {
    let mut job = AbstractJob::new(
        format!("fan{width}"),
        VsiteAddress::new(usite, vsite),
        bench_user_attrs(),
    );
    job.nodes.push((
        ActionId(1),
        GraphNode::Task(AbstractTask {
            name: "root".into(),
            resources: ResourceRequest::minimal().with_run_time(600),
            kind: TaskKind::Execute(ExecuteKind::Script {
                script: "sleep 1\n".into(),
            }),
        }),
    ));
    for i in 0..width {
        let id = ActionId(i as u64 + 2);
        job.nodes.push((
            id,
            GraphNode::Task(AbstractTask {
                name: format!("leaf{i}"),
                resources: ResourceRequest::minimal().with_run_time(600),
                kind: TaskKind::Execute(ExecuteKind::Script {
                    script: "sleep 2\n".into(),
                }),
            }),
        ));
        job.dependencies.push(Dependency {
            from: ActionId(1),
            to: id,
            files: vec![],
        });
    }
    job
}

/// A machine-readable benchmark result: a flat map of named numbers plus
/// free-form string notes, written as `BENCH_<name>.json` next to the
/// human tables. The repo vendors no serde, and experiment results are
/// flat enough that a hand-rolled emitter is the honest tool.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    name: String,
    metrics: Vec<(String, f64)>,
    notes: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchReport {
    /// A report for the experiment `name` (e.g. `"e10_telemetry"`).
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Records a numeric result. Non-finite values serialize as `null`.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.push((key.to_owned(), value));
        self
    }

    /// Records a free-form string annotation.
    pub fn note(&mut self, key: &str, value: &str) -> &mut Self {
        self.notes.push((key.to_owned(), value.to_owned()));
        self
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.name)));
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if v.is_finite() {
                out.push_str(&format!("\n    \"{}\": {v}", json_escape(k)));
            } else {
                out.push_str(&format!("\n    \"{}\": null", json_escape(k)));
            }
        }
        out.push_str("\n  },\n  \"notes\": {");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": \"{}\"",
                json_escape(k),
                json_escape(v)
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into the workspace root (so results
    /// land beside EXPERIMENTS.md regardless of the bench's CWD) and
    /// returns the path. Falls back to the CWD if the workspace root is
    /// not where the build-time layout says it is.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let file = format!("BENCH_{}.json", self.name);
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| std::path::PathBuf::from("."));
        let path = root.join(file);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Formats a byte count for tables.
pub fn fmt_bytes(n: u64) -> String {
    if n >= 1 << 20 {
        format!("{:.0} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.0} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_validate() {
        chain_job("FZJ", "T3E", 10, 5).validate().unwrap();
        fan_job("FZJ", "T3E", 50).validate().unwrap();
    }

    #[test]
    fn report_json_shape() {
        let mut r = BenchReport::new("e0_test");
        r.metric("overhead_pct", 1.25)
            .metric("bad", f64::NAN)
            .note("target", "< 5%");
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"e0_test\""));
        assert!(json.contains("\"overhead_pct\": 1.25"));
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("\"target\": \"< 5%\""));
        // Balanced braces and no trailing commas — parseable by any
        // JSON reader.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4096), "4 KiB");
        assert_eq!(fmt_bytes(16 << 20), "16 MiB");
    }
}
