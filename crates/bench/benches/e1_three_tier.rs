//! E1 — Figure 1: the three-tier submission path.
//!
//! Prints the per-tier breakdown of a standard job's life (user level →
//! server level → batch subsystem and back) in simulated time, then
//! measures the real CPU cost of each server-side stage.

use criterion::Criterion;
use std::hint::black_box;
use unicore::protocol::Request;
use unicore::server::UnicoreServer;
use unicore::{Federation, FederationConfig};
use unicore_ajo::{DetailLevel, VsiteAddress};
use unicore_bench::{bench_mapped_user, bench_user_attrs, chain_job, BENCH_DN};
use unicore_client::JobPreparationAgent;
use unicore_codec::DerCodec;
use unicore_gateway::{Gateway, UserEntry, Uudb};
use unicore_njs::{Njs, TranslationTable};
use unicore_resources::{deployment_page, Architecture, ResourceDirectory};
use unicore_sim::{format_time, HOUR, SEC};

fn make_server() -> UnicoreServer {
    let mut njs = Njs::new("FZJ");
    njs.add_vsite(
        deployment_page("FZJ", "T3E", Architecture::CrayT3e),
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    let mut uudb = Uudb::new();
    uudb.add(BENCH_DN, UserEntry::new("bench", "users"));
    UnicoreServer::new(Gateway::new("FZJ", uudb), njs)
}

fn print_tables() {
    println!("\n=== E1: three-tier submission path (Figure 1) ===\n");

    // Simulated end-to-end: a 3-task chain (30 s of work each) through
    // the full federation (WAN + gateway + NJS + batch + polling JMC).
    let mut fed = Federation::german_deployment(FederationConfig::default());
    fed.register_user(BENCH_DN, "bench");
    let job = chain_job("FZJ", "T3E", 3, 30);
    let t_submit = fed.now();
    let (_, outcome, t_done) = fed
        .submit_and_wait("FZJ", job, BENCH_DN, 5 * SEC, HOUR)
        .expect("completes");
    assert!(outcome.status.is_success());
    println!(
        "end-to-end (3×30 s chain via WAN, incl. polling): {}",
        format_time(t_done - t_submit)
    );
    println!("  pure compute: 90 s; overhead = latency + handshake + poll quantisation\n");

    // Per-tier breakdown on a local server (no WAN).
    let mut server = make_server();
    let ajo = chain_job("FZJ", "T3E", 3, 30);
    let der = ajo.to_der();
    println!("per-stage (in-process server, real CPU):");
    let t = std::time::Instant::now();
    let decoded = unicore_ajo::AbstractJob::from_der(&der).unwrap();
    println!(
        "  tier 1→2  AJO decode ({} bytes): {:?}",
        der.len(),
        t.elapsed()
    );
    let t = std::time::Instant::now();
    let resp = server.handle_request(BENCH_DN, Request::Consign { ajo: decoded }, 0);
    println!(
        "  tier 2    gateway map + NJS consign: {:?} ({resp:?})",
        t.elapsed()
    );
    let t = std::time::Instant::now();
    let mut now = 0;
    server.step(now);
    while !server.is_done(unicore_ajo::JobId(1)) {
        now = server.next_event_time().unwrap_or(now + SEC);
        server.step(now);
    }
    println!(
        "  tier 3    batch execution: {} simulated ({:?} real)",
        format_time(now),
        t.elapsed()
    );
    println!();
}

fn benches(c: &mut Criterion) {
    let jpa = JobPreparationAgent::new(bench_user_attrs(), ResourceDirectory::new());

    let mut group = c.benchmark_group("e1_stages");
    // User level: JPA job construction.
    group.bench_function("jpa_build_3_task_job", |b| {
        b.iter(|| {
            let mut builder = jpa.new_job("bench", VsiteAddress::new("FZJ", "T3E"));
            let a = builder.script_task(
                "a",
                "sleep 30\n",
                unicore_ajo::ResourceRequest::minimal().with_run_time(3_600),
            );
            let bb = builder.script_task(
                "b",
                "sleep 30\n",
                unicore_ajo::ResourceRequest::minimal().with_run_time(3_600),
            );
            builder.after(a, bb);
            black_box(builder.build().unwrap())
        })
    });
    // Server level: consign (gateway + admission + Uspace creation).
    group.bench_function("server_consign", |b| {
        let ajo = chain_job("FZJ", "T3E", 3, 30);
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let mut server = make_server();
                let t = std::time::Instant::now();
                black_box(server.handle_request(
                    BENCH_DN,
                    Request::Consign { ajo: ajo.clone() },
                    0,
                ));
                total += t.elapsed();
            }
            total
        })
    });
    // Server level: a status poll on a live job.
    group.bench_function("server_poll", |b| {
        let mut server = make_server();
        let resp = server.handle_request(
            BENCH_DN,
            Request::Consign {
                ajo: chain_job("FZJ", "T3E", 10, 30),
            },
            0,
        );
        let unicore::Response::Consigned { job } = resp else {
            panic!()
        };
        server.step(0);
        b.iter(|| {
            black_box(server.handle_request(
                BENCH_DN,
                Request::Poll {
                    job,
                    detail: DetailLevel::Tasks,
                },
                SEC,
            ))
        })
    });
    group.finish();

    // Direct NJS consign (no protocol framing) for comparison.
    let mut group = c.benchmark_group("e1_njs_only");
    group.bench_function("njs_consign_3_tasks", |b| {
        let ajo = chain_job("FZJ", "T3E", 3, 30);
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let mut njs = Njs::new("FZJ");
                njs.add_vsite(
                    deployment_page("FZJ", "T3E", Architecture::CrayT3e),
                    TranslationTable::for_architecture(Architecture::CrayT3e),
                );
                let t = std::time::Instant::now();
                black_box(njs.consign(ajo.clone(), bench_mapped_user(), 0).unwrap());
                total += t.elapsed();
            }
            total
        })
    });
    group.finish();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
