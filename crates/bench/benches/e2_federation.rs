//! E2 — Figure 2: multi-site distribution.
//!
//! A job whose job groups fan out to N Usites: simulated makespan and
//! message counts as the federation grows, plus the any-server-entry
//! property, then a Criterion measurement of the federation engine's real
//! cost per simulated fan-out.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use unicore::{Federation, FederationConfig, SiteSpec};
use unicore_ajo::{AbstractJob, ActionId, GraphNode, VsiteAddress};
use unicore_bench::{bench_user_attrs, chain_job, BENCH_DN};
use unicore_resources::Architecture;
use unicore_sim::{format_time, HOUR, SEC};

fn specs(n: usize) -> Vec<SiteSpec> {
    (0..n)
        .map(|i| SiteSpec::simple(&format!("S{i}"), "V", Architecture::Generic))
        .collect()
}

/// A root job at S0 whose sub-jobs (3 tasks × 60 s each) run at every
/// other site.
fn fanout_job(n_sites: usize) -> AbstractJob {
    let mut job = AbstractJob::new("fanout", VsiteAddress::new("S0", "V"), bench_user_attrs());
    for i in 1..n_sites {
        let mut sub = chain_job(&format!("S{i}"), "V", 3, 60);
        sub.name = format!("part@S{i}");
        job.nodes.push((ActionId(i as u64), GraphNode::SubJob(sub)));
    }
    job
}

fn run_fanout(n_sites: usize, seed: u64) -> (u64, u64, bool) {
    let mut fed = Federation::new(
        FederationConfig {
            seed,
            ..FederationConfig::default()
        },
        &specs(n_sites),
    );
    fed.register_user(BENCH_DN, "bench");
    let result = fed.submit_and_wait("S0", fanout_job(n_sites), BENCH_DN, 5 * SEC, 2 * HOUR);
    let ok = result
        .map(|(_, o, _)| o.status.is_success())
        .unwrap_or(false);
    (fed.now(), fed.messages_sent, ok)
}

fn print_tables() {
    println!("\n=== E2: multi-site federation scaling (Figure 2) ===\n");
    println!(
        "{:>8} {:>14} {:>12} {:>8}",
        "sites", "makespan", "messages", "ok"
    );
    for n in [2usize, 3, 5, 9, 13] {
        let (t, msgs, ok) = run_fanout(n, 2);
        println!("{:>8} {:>14} {:>12} {:>8}", n, format_time(t), msgs, ok);
    }
    println!("\n(sub-jobs run concurrently at all sites: makespan stays ~flat");
    println!(" while message count grows linearly — the distribution property)");

    // Any-server entry: the IDENTICAL job (root destined for S0) consigned
    // via every gateway — entry servers route it onward (Figure 2).
    println!("\nany-server entry (same S0-rooted job via each gateway):");
    for entry in 0..5 {
        let mut fed = Federation::new(FederationConfig::default(), &specs(5));
        fed.register_user(BENCH_DN, "bench");
        let via = format!("S{entry}");
        let ok = fed
            .submit_and_wait(&via, fanout_job(5), BENCH_DN, 5 * SEC, 2 * HOUR)
            .map(|(_, o, _)| o.status.is_success())
            .unwrap_or(false);
        println!("  via {via}: {}", if ok { "completed" } else { "FAILED" });
    }
    println!();
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_fanout_sim");
    group.sample_size(10);
    for n in [2usize, 5, 9] {
        group.bench_with_input(BenchmarkId::new("sites", n), &n, |b, &n| {
            b.iter(|| black_box(run_fanout(n, 3)))
        });
    }
    group.finish();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
