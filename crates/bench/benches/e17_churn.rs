//! E17 — gateway front door at connection scale.
//!
//! Thousands of connect→authn→poll→disconnect cycles over a bounded
//! identity set, driven through the [`FrontDoor`] with real crypto: the
//! first connection per identity pays the full RSA/DH handshake, every
//! later one rides the resumption ticket. The bench reports full vs
//! resumed handshake latency (p50/p99) and gates on the paper-level
//! claim that makes poll-heavy JMC traffic viable at scale: the
//! abbreviated handshake must be at least 5× faster at p50. The verdict
//! lands in `BENCH_e17_churn.json`, and a FAIL exits nonzero so CI
//! cannot miss it.

use criterion::Criterion;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unicore_bench::BenchReport;
use unicore_certs::{
    CertificateAuthority, DistinguishedName, Identity, KeyUsage, TrustStore, Validity,
};
use unicore_crypto::CryptoRng;
use unicore_gateway::{
    decode_frames, encode_frames, FrontDoor, Gateway, MuxFrame, UserEntry, Uudb,
};
use unicore_simnet::wire_pair;
use unicore_telemetry::Telemetry;
use unicore_transport::{client_handshake, Endpoint, SessionCache};

/// Distinct client identities (the bounded set the cache must hold).
const IDENTITIES: usize = 8;
/// Connect/disconnect cycles per identity through the front door.
const CYCLES: usize = 250;
/// Dedicated full-handshake samples for the p50/p99 distribution.
const FULL_SAMPLES: usize = 40;
/// Poll flows multiplexed per connection.
const FLOWS: u64 = 5;
/// The gate: resumed must be at least this much faster at p50.
const SPEEDUP_GATE: f64 = 5.0;

struct Fixture {
    door: FrontDoor,
    gateway: Gateway,
    trust: Arc<TrustStore>,
    users: Vec<Arc<Identity>>,
    caches: Vec<SessionCache>,
}

fn fixture() -> Fixture {
    let mut rng = CryptoRng::from_u64(17);
    let mut ca = CertificateAuthority::new_root(
        DistinguishedName::new("DE", "DFN", "PCA", "Root"),
        Validity::starting_at(0, 1_000_000),
        512,
        &mut rng,
    );
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone()).unwrap();
    let trust = Arc::new(trust);
    let gw_id = ca
        .issue_identity(
            DistinguishedName::new("DE", "FZJ", "ZAM", "gw"),
            KeyUsage::server(),
            Validity::starting_at(0, 500_000),
            &mut rng,
        )
        .unwrap();
    let mut uudb = Uudb::new();
    let users: Vec<Arc<Identity>> = (0..IDENTITIES)
        .map(|i| {
            let id = ca
                .issue_identity(
                    DistinguishedName::new("DE", "FZJ", "ZAM", format!("user-{i}")),
                    KeyUsage::user(),
                    Validity::starting_at(0, 500_000),
                    &mut rng,
                )
                .unwrap();
            uudb.add(
                id.cert.tbs.subject.to_string(),
                UserEntry::new(format!("u{i}"), "users"),
            );
            Arc::new(id)
        })
        .collect();
    let caches = (0..IDENTITIES).map(|_| SessionCache::new(4)).collect();
    let mut door = FrontDoor::new(gw_id, trust.clone(), IDENTITIES * 2);
    door.set_telemetry(Telemetry::collecting(17));
    Fixture {
        door,
        gateway: Gateway::new("FZJ", uudb),
        trust,
        users,
        caches,
    }
}

fn client_endpoint(fx: &Fixture, u: usize, now: u64) -> Endpoint {
    Endpoint {
        identity: fx.users[u].clone(),
        intermediates: Vec::new(),
        trust: fx.trust.clone(),
        now,
        timeout: Duration::from_secs(5),
        ticket_ttl: unicore_transport::DEFAULT_TICKET_TTL,
        telemetry: Telemetry::disabled(),
    }
}

/// One full client cycle: handshake through the door, UUDB authn, one
/// multiplexed poll sweep, disconnect. Returns (handshake wall time,
/// whether it resumed).
fn one_cycle(fx: &mut Fixture, u: usize, now: u64, seed: u64) -> (Duration, bool) {
    let (cw, sw) = wire_pair();
    let cep = client_endpoint(fx, u, now);
    let cache = &fx.caches[u];
    let door = &mut fx.door;
    let t = Instant::now();
    let (client, server) = std::thread::scope(|s| {
        let h = s.spawn(|| {
            let mut rng = CryptoRng::from_u64(seed).fork("server");
            door.accept(sw, now, &mut rng)
        });
        let mut rng = CryptoRng::from_u64(seed).fork("client");
        (
            client_handshake(cw, &cep, "FZJ", cache, &mut rng),
            h.join().unwrap(),
        )
    });
    let handshake_time = t.elapsed();
    let mut chan = client.expect("client handshake");
    let mut conn = server.expect("door accept");
    let resumed = conn.resumed();

    // Authn: certificate DN → local login via the UUDB.
    let decision = fx
        .gateway
        .authorize_dn(conn.dn(), "T3E", Some("users"), now);
    assert!(decision.is_accepted());

    // One poll sweep, FLOWS jobs multiplexed over the sealed connection.
    let sweep: Vec<MuxFrame> = (0..FLOWS)
        .map(|f| MuxFrame::new(f, format!("poll {f}").into_bytes()))
        .collect();
    let frames = encode_frames(&sweep);
    let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
    chan.send_frames(&refs).unwrap();
    let raw = conn.chan.recv_frames(Duration::from_secs(1)).unwrap();
    let polls = decode_frames(&raw).unwrap();
    let replies: Vec<MuxFrame> = polls
        .iter()
        .map(|p| MuxFrame::new(p.flow, b"Running".to_vec()))
        .collect();
    let frames = encode_frames(&replies);
    let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
    conn.chan.send_frames(&refs).unwrap();
    let raw = chan.recv_frames(Duration::from_secs(1)).unwrap();
    assert_eq!(decode_frames(&raw).unwrap().len(), FLOWS as usize);

    fx.door.disconnect(conn);
    chan.close();
    (handshake_time, resumed)
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn print_tables() -> (BenchReport, bool) {
    println!("\n=== E17: front door at connection scale (measured, real crypto) ===\n");

    // Full-handshake distribution: fresh caches every time.
    let mut full = Vec::with_capacity(FULL_SAMPLES);
    for i in 0..FULL_SAMPLES {
        let mut fx = fixture();
        let (d, resumed) = one_cycle(&mut fx, 0, 100, 1_000 + i as u64);
        assert!(!resumed);
        full.push(d);
    }
    full.sort();

    // The churn: IDENTITIES users × CYCLES reconnects through one door.
    let mut fx = fixture();
    let mut resumed_times = Vec::with_capacity(IDENTITIES * CYCLES);
    let mut fulls = 0u64;
    let mut resumes = 0u64;
    let t0 = Instant::now();
    for cycle in 0..CYCLES {
        for u in 0..IDENTITIES {
            let seed = 10_000 + (cycle * IDENTITIES + u) as u64;
            let now = 100 + cycle as u64;
            let (d, resumed) = one_cycle(&mut fx, u, now, seed);
            if resumed {
                resumes += 1;
                resumed_times.push(d);
            } else {
                fulls += 1;
            }
        }
    }
    let churn_wall = t0.elapsed();
    resumed_times.sort();
    let connections = (IDENTITIES * CYCLES) as u64;
    assert_eq!(
        fulls, IDENTITIES as u64,
        "every identity resumes after its first"
    );
    assert_eq!(resumes, connections - IDENTITIES as u64);

    let full_p50 = percentile(&full, 0.50);
    let full_p99 = percentile(&full, 0.99);
    let res_p50 = percentile(&resumed_times, 0.50);
    let res_p99 = percentile(&resumed_times, 0.99);
    let speedup = full_p50.as_secs_f64() / res_p50.as_secs_f64().max(1e-9);
    let verdict = if speedup >= SPEEDUP_GATE {
        "PASS"
    } else {
        "FAIL"
    };

    println!("{connections} connections, {IDENTITIES} identities, {CYCLES} cycles each; churn wall time {churn_wall:?}");
    println!("{:>22} {:>12} {:>12}", "handshake", "p50", "p99");
    println!(
        "{:>22} {:>12?} {:>12?}",
        "full (RSA/DH)", full_p50, full_p99
    );
    println!(
        "{:>22} {:>12?} {:>12?}",
        "resumed (ticket)", res_p50, res_p99
    );
    println!("resumed speedup at p50: {speedup:.1}x  (gate >= {SPEEDUP_GATE:.0}x: {verdict})\n");

    let mut report = BenchReport::new("e17_churn");
    report
        .metric("connections", connections as f64)
        .metric("identities", IDENTITIES as f64)
        .metric("full_handshakes", fulls as f64)
        .metric("resumed_handshakes", resumes as f64)
        .metric("full_p50_us", full_p50.as_secs_f64() * 1e6)
        .metric("full_p99_us", full_p99.as_secs_f64() * 1e6)
        .metric("resumed_p50_us", res_p50.as_secs_f64() * 1e6)
        .metric("resumed_p99_us", res_p99.as_secs_f64() * 1e6)
        .metric("speedup_p50", speedup)
        .metric("speedup_gate", SPEEDUP_GATE)
        .metric("churn_wall_ms", churn_wall.as_secs_f64() * 1e3)
        .note("verdict_resumption", verdict)
        .note(
            "workload",
            "connect -> UUDB authn -> multiplexed 5-flow poll sweep -> disconnect, \
             2000 connections over 8 identities through one FrontDoor",
        );
    (report, verdict == "PASS")
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_churn");
    group.sample_size(20);
    group.bench_function("resumed_cycle", |b| {
        let mut fx = fixture();
        let mut seed = 50_000u64;
        one_cycle(&mut fx, 0, 100, seed); // prime: full handshake + ticket
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                seed += 1;
                let t = Instant::now();
                let (_, resumed) = one_cycle(&mut fx, 0, 101, seed);
                total += t.elapsed();
                assert!(resumed);
            }
            total
        })
    });
    group.finish();
}

fn main() {
    let (mut report, pass) = print_tables();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
    for s in criterion::take_recorded() {
        let key = s.name.replace('/', ".");
        report
            .metric(&format!("{key}.min_us"), s.min * 1e6)
            .metric(&format!("{key}.p50_us"), s.p50 * 1e6)
            .metric(&format!("{key}.p99_us"), s.p99 * 1e6);
    }
    match report.write() {
        Ok(path) => println!("machine-readable results: {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
    if !pass {
        eprintln!("E17 FAIL: resumed handshake is not {SPEEDUP_GATE:.0}x faster than full at p50");
        std::process::exit(1);
    }
}
