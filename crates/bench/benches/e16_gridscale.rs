//! E16 — the observability plane at grid scale.
//!
//! A 100-Usite synthetic deployment (the six German sites plus 94
//! generated peers on hashed WAN latencies) running the E17 hierarchical
//! aggregation plane. The acceptance criteria of the experiment, each
//! emitted as a PASS/FAIL verdict in the JSON report:
//!
//! - a grid query from the deepest leaf reaches the root in O(log n)
//!   relay hops (≤ tree depth, never a fan-out);
//! - steady-state heartbeats ship deltas whose byte volume stays ≤20%
//!   of what full snapshots every round would cost;
//! - partitioning an interior site leaves the view complete — every
//!   Usite still has a row, the dark subtree marked stale;
//! - a three-seed chaos soak (drops + a healing partition) replays to
//!   byte-identical SLO alert logs.
//!
//! The criterion group times the operator-facing moves: one grid query
//! answered from the root's cache, one from the deepest leaf, and one
//! full heartbeat round across all 100 sites.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Instant;
use unicore::protocol::grid_view_of;
use unicore::{Federation, FederationConfig};
use unicore_ajo::{GridView, SiteHealth};
use unicore_bench::{BenchReport, BENCH_DN};
use unicore_sim::{SimTime, MINUTE, SEC};
use unicore_simnet::FaultPlan;

/// Grid size: two orders of magnitude past the paper's deployment.
const N: usize = 100;
/// Chaos soak seeds.
const SEEDS: [u64; 3] = [1, 7, 23];

fn build_grid(seed: u64) -> Federation {
    let mut fed = Federation::grid_deployment(
        FederationConfig {
            seed,
            ..FederationConfig::default()
        },
        N,
    );
    fed.enable_telemetry(seed);
    fed.register_user(BENCH_DN, "bench");
    fed
}

/// One grid query driven to its answer.
fn grid_view(fed: &mut Federation, usite: &str) -> GridView {
    let corr = fed.client_monitor(usite, BENCH_DN, true);
    let deadline = fed.now() + 10 * MINUTE;
    loop {
        fed.run_until(fed.now() + 5 * SEC);
        if let Some(resp) = fed.take_client_response(corr) {
            return grid_view_of(&resp).expect("grid view").clone();
        }
        assert!(fed.now() < deadline, "no grid view from {usite}");
    }
}

/// Convergence plus the hop-count and view-completeness checks.
/// Returns (hops per deep query, depth, wall time to convergence).
fn check_query_hops(report: &mut BenchReport) -> bool {
    let mut fed = build_grid(0xE16);
    let depth = fed.grid_tree().depth();
    let t = Instant::now();
    fed.run_until(6 * MINUTE);
    let converge_wall = t.elapsed();

    let deepest = fed.grid_tree().sites().last().unwrap().clone();
    let hops_before = fed.grid_query_hops;
    let view = grid_view(&mut fed, &deepest);
    let hops = fed.grid_query_hops - hops_before;
    let live = view
        .sites
        .iter()
        .filter(|r| matches!(r.health, SiteHealth::Live))
        .count();
    let ok = view.sites.len() == N && live == N && hops as usize <= depth;

    println!("query path ({N} sites, fanout 4):");
    println!("  tree depth: {depth} edges (log4 bound)");
    println!("  deep-leaf query: {hops} relay hops (must be <= depth)");
    println!("  converged view: {live}/{N} live rows");
    println!("  wall time to convergence (6 sim-min): {converge_wall:?}\n");
    report
        .metric("sites", N as f64)
        .metric("tree_depth", depth as f64)
        .metric("deep_query_hops", hops as f64)
        .metric("converged_live_rows", live as f64)
        .metric("converge_wall_ms", converge_wall.as_secs_f64() * 1e3);
    ok
}

/// Steady-state delta-vs-full byte ratio over a ten-minute idle window.
fn check_delta_ratio(report: &mut BenchReport) -> bool {
    let mut fed = build_grid(0xDE17A);
    fed.run_until(6 * MINUTE);
    let full0 = fed.grid_push_bytes_full;
    let delta0 = fed.grid_push_bytes_delta;
    fed.run_until(fed.now() + 10 * MINUTE);
    let delta_window = fed.grid_push_bytes_delta - delta0;
    let full_window = fed.grid_push_bytes_full - full0;
    // What shipping full snapshots every round would have cost: the
    // initial resync volume times the ~20 heartbeat rounds in the window.
    let rounds = 20u64;
    let full_rate_budget = full0 * rounds;
    let ratio = delta_window as f64 / full_rate_budget as f64 * 100.0;
    let ok = full_window == 0 && ratio <= 20.0;

    println!("steady-state heartbeat traffic (10 idle minutes, ~{rounds} rounds):");
    println!("  initial full-resync volume: {full0} bytes");
    println!("  window delta volume: {delta_window} bytes");
    println!("  window full volume: {full_window} bytes (resyncs — want 0)");
    println!("  delta bytes vs full-rate budget: {ratio:.2}% (target <= 20%)\n");
    report
        .metric("full_resync_bytes", full0 as f64)
        .metric("steady_delta_bytes", delta_window as f64)
        .metric("steady_full_bytes", full_window as f64)
        .metric("delta_vs_full_pct", ratio)
        .metric("delta_target_pct", 20.0);
    ok
}

/// A partitioned interior site must degrade its subtree to stale rows
/// without shrinking or stalling the root's view.
fn check_partition_completeness(report: &mut BenchReport) -> bool {
    let mut fed = build_grid(0xE16);
    fed.run_until(6 * MINUTE);
    let victim = fed.grid_tree().sites()[1].clone();
    let subtree = fed.grid_tree().subtree(&victim).len();
    fed.set_partitioned(&victim, true);
    fed.run_until(fed.now() + 3 * MINUTE);

    let root = fed.grid_tree().root().to_owned();
    let t = Instant::now();
    let view = grid_view(&mut fed, &root);
    let answer_wall = t.elapsed();
    let stale = view
        .sites
        .iter()
        .filter(|r| matches!(r.health, SiteHealth::Stale))
        .count();
    let ok = view.sites.len() == N
        && view.site(&victim).unwrap().health.is_unreachable()
        && stale == subtree - 1;

    println!("partitioned interior site ({victim}, subtree of {subtree}):");
    println!("  view rows: {}/{N}", view.sites.len());
    println!(
        "  stale rows behind the partition: {stale} (want {})",
        subtree - 1
    );
    println!("  root answered the query in {answer_wall:?} wall — no stall\n");
    report
        .metric("partition_subtree", subtree as f64)
        .metric("partition_view_rows", view.sites.len() as f64)
        .metric("partition_stale_rows", stale as f64);
    ok
}

/// Chaos soak: drops plus a healing partition of a quarter of the grid;
/// the DER-encoded alert log must replay byte-identically per seed, and
/// the unreachable-ratio SLO must both fire and clear.
fn check_alert_replay(report: &mut BenchReport) -> bool {
    fn soak(seed: u64) -> (Vec<u8>, usize) {
        let mut fed = build_grid(seed);
        // Dropping a direct child of the root takes its whole subtree
        // (~a quarter of the grid) dark — past the 25% burn-rate
        // threshold whichever site roots the tree.
        let victim = fed.grid_tree().sites()[1].clone();
        let plan = FaultPlan::new(seed ^ 0xE16)
            .drop_everywhere(0.10, 0, SimTime::MAX)
            .partition(&victim, 4 * MINUTE, 14 * MINUTE);
        fed.apply_fault_plan(&plan);
        fed.run_until(22 * MINUTE);
        (fed.alert_log_der(), fed.alert_log().len())
    }
    let mut ok = true;
    let mut events = 0usize;
    let t = Instant::now();
    for seed in SEEDS {
        let (a, fired) = soak(seed);
        let (b, _) = soak(seed);
        if a != b {
            println!("  seed {seed}: alert log DIVERGED on replay");
            ok = false;
        }
        if fired < 2 {
            println!("  seed {seed}: expected a fire and a clear, saw {fired} events");
            ok = false;
        }
        events += fired;
    }
    let wall = t.elapsed();
    println!(
        "chaos alert-log replay ({} seeds, 2 runs each):",
        SEEDS.len()
    );
    println!("  byte-identical: {}", if ok { "yes" } else { "NO" });
    println!("  alert events across seeds: {events}");
    println!("  wall time: {wall:?}\n");
    report
        .metric("soak_seeds", SEEDS.len() as f64)
        .metric("soak_alert_events", events as f64)
        .metric("soak_wall_ms", wall.as_secs_f64() * 1e3);
    ok
}

fn print_tables() -> BenchReport {
    println!("\n=== E16: grid-scale observability plane ===\n");
    let mut report = BenchReport::new("e16_gridscale");
    let hops_ok = check_query_hops(&mut report);
    let delta_ok = check_delta_ratio(&mut report);
    let part_ok = check_partition_completeness(&mut report);
    let replay_ok = check_alert_replay(&mut report);
    let verdict = if hops_ok && delta_ok && part_ok && replay_ok {
        "PASS"
    } else {
        "FAIL"
    };
    println!("overall: {verdict}  (hops {hops_ok}, delta {delta_ok}, partition {part_ok}, replay {replay_ok})");
    report
        .note("verdict", verdict)
        .note("verdict_hops", if hops_ok { "PASS" } else { "FAIL" })
        .note("verdict_delta", if delta_ok { "PASS" } else { "FAIL" })
        .note("verdict_partition", if part_ok { "PASS" } else { "FAIL" })
        .note("verdict_replay", if replay_ok { "PASS" } else { "FAIL" })
        .note(
            "workload",
            "100-Usite synthetic grid, fanout-4 aggregation tree, 30s heartbeats",
        );
    report
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_gridscale");
    group.sample_size(10);

    // One grid query answered straight from the root's pre-merged cache.
    group.bench_function("grid_query_at_root", |b| {
        let mut fed = build_grid(0xB16);
        fed.run_until(6 * MINUTE);
        let root = fed.grid_tree().root().to_owned();
        b.iter(|| black_box(grid_view(&mut fed, &root)));
    });

    // The same query from the deepest leaf — the O(log n) climb.
    group.bench_function("grid_query_at_deep_leaf", |b| {
        let mut fed = build_grid(0xB16);
        fed.run_until(6 * MINUTE);
        let leaf = fed.grid_tree().sites().last().unwrap().clone();
        b.iter(|| black_box(grid_view(&mut fed, &leaf)));
    });

    // One full heartbeat round: every site refreshes, pushes and acks.
    group.bench_function("heartbeat_round_100_sites", |b| {
        let mut fed = build_grid(0xB17);
        fed.run_until(6 * MINUTE);
        let interval = 30 * SEC;
        b.iter(|| {
            let target = fed.now() + interval;
            fed.run_until(target);
            black_box(fed.grid_push_bytes_delta)
        });
    });

    group.finish();
}

fn main() {
    let mut report = print_tables();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
    for s in criterion::take_recorded() {
        let key = s.name.replace('/', ".");
        report
            .metric(&format!("{key}.min_us"), s.min * 1e6)
            .metric(&format!("{key}.p50_us"), s.p50 * 1e6)
            .metric(&format!("{key}.p99_us"), s.p99 * 1e6);
    }
    match report.write() {
        Ok(path) => println!("machine-readable results: {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}
