//! E9 — the job spool: WAL append throughput, replay time versus log
//! size, compaction payoff, and full server recovery time.
//!
//! The journal must never become the bottleneck of the consign path
//! (one append per consign, §4.2's "consignment is acknowledged once
//! the job is safe"), and recovery after a crash must stay cheap even
//! for long-lived servers — which is what compaction buys.

use criterion::Criterion;
use std::hint::black_box;
use unicore::protocol::{Request, Response};
use unicore::server::UnicoreServer;
use unicore_ajo::{ActionId, JobId};
use unicore_bench::{chain_job, fmt_bytes, BENCH_DN};
use unicore_gateway::{Gateway, UserEntry, Uudb};
use unicore_njs::{Njs, TranslationTable};
use unicore_resources::{deployment_page, Architecture};
use unicore_store::{EventStore, MemoryBackend, OwnerRecord, StoreEvent};

/// A representative consign record: a small AJO plus one staged input.
fn consign_event(job: u64) -> StoreEvent {
    StoreEvent::JobConsigned {
        job: JobId(job),
        ajo_der: vec![0x30; 256],
        user: OwnerRecord {
            dn: BENCH_DN.into(),
            login: "bench".into(),
            account_group: "users".into(),
        },
        staged: vec![("input.dat".into(), vec![7u8; 1024])],
        idem_key: job.to_be_bytes().to_vec(),
        parent: None,
        foreign: None,
        at: job,
    }
}

fn task_event(job: u64, node: u64) -> StoreEvent {
    StoreEvent::TaskStateChanged {
        job: JobId(job),
        node: ActionId(node),
        outcome_der: vec![0x30; 128],
        files: vec![("out.bin".into(), vec![3u8; 512])],
        at: job,
    }
}

fn outcome_event(job: u64) -> StoreEvent {
    StoreEvent::OutcomeStored {
        job: JobId(job),
        outcome_der: vec![0x30; 192],
        manifest: vec![("out.bin".into(), vec![3u8; 512])],
        at: job,
    }
}

/// A log of `jobs` finished jobs (consign + 2 task records + outcome).
fn build_log(jobs: u64) -> MemoryBackend {
    let shared = MemoryBackend::new();
    let mut store = EventStore::open(Box::new(shared.clone())).unwrap();
    for j in 1..=jobs {
        store.append(&consign_event(j)).unwrap();
        store.append(&task_event(j, 1)).unwrap();
        store.append(&task_event(j, 2)).unwrap();
        store.append(&outcome_event(j)).unwrap();
    }
    shared
}

fn recovery_server(mem: &MemoryBackend) -> UnicoreServer {
    let mut njs = Njs::new("FZJ");
    njs.add_vsite(
        deployment_page("FZJ", "T3E", Architecture::CrayT3e),
        TranslationTable::for_architecture(Architecture::CrayT3e),
    );
    njs.attach_store(EventStore::open(Box::new(mem.clone())).expect("open journal"));
    let mut uudb = Uudb::new();
    uudb.add(BENCH_DN, UserEntry::new("bench", "users"));
    UnicoreServer::new(Gateway::new("FZJ", uudb), njs)
}

fn print_tables() {
    println!("\n=== E9: job spool — WAL throughput, replay, recovery ===\n");

    // Append throughput.
    let shared = MemoryBackend::new();
    let mut store = EventStore::open(Box::new(shared.clone())).unwrap();
    let n = 10_000u64;
    let t = std::time::Instant::now();
    for j in 1..=n {
        store.append(&consign_event(j)).unwrap();
    }
    let dt = t.elapsed();
    let bytes = shared.total_bytes();
    println!(
        "append throughput: {n} consign records in {dt:?} \
         ({:.0} rec/s, {}/s)",
        n as f64 / dt.as_secs_f64(),
        fmt_bytes((bytes as f64 / dt.as_secs_f64()) as u64),
    );

    // Replay time vs log size, and what compaction buys.
    println!("\nreplay time vs log size (finished jobs, 4 records each):");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "jobs", "log bytes", "replay", "compacted to", "replay'"
    );
    for jobs in [100u64, 1_000, 5_000] {
        let shared = build_log(jobs);
        let store = EventStore::open(Box::new(shared.clone())).unwrap();
        let before = store.total_bytes().unwrap();
        let t = std::time::Instant::now();
        let replay = store.replay().unwrap();
        let replay_dt = t.elapsed();
        assert_eq!(replay.events.len() as u64, jobs * 4);
        let mut store = store;
        let stats = store.compact().unwrap();
        let t = std::time::Instant::now();
        let folded = store.replay().unwrap();
        let replay2_dt = t.elapsed();
        assert_eq!(folded.events.len() as u64, jobs * 2);
        println!(
            "{jobs:>10} {:>12} {replay_dt:>12.2?} {:>14} {replay2_dt:>12.2?}",
            fmt_bytes(before),
            fmt_bytes(stats.bytes_after),
        );
    }

    // Full server recovery: journal → live job table.
    println!("\nserver recovery time (jobs consigned, then the machine dies):");
    for jobs in [10u64, 100, 500] {
        let mem = MemoryBackend::new();
        let mut server = recovery_server(&mem);
        for i in 0..jobs {
            let ajo = chain_job("FZJ", "T3E", 2, 30);
            let mut ajo = ajo;
            ajo.name = format!("job-{i}");
            let resp = server.handle_request(BENCH_DN, Request::Consign { ajo }, 0);
            assert!(matches!(resp, Response::Consigned { .. }), "{resp:?}");
        }
        drop(server);
        let mut server = recovery_server(&mem);
        let t = std::time::Instant::now();
        let report = server.recover(0).unwrap();
        let dt = t.elapsed();
        assert_eq!(report.jobs.len() as u64, jobs);
        println!("  {jobs:>5} in-flight jobs recovered in {dt:?}");
    }
    println!();
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_recovery");

    group.bench_function("wal_append_consign", |b| {
        let mut store = EventStore::open(Box::new(MemoryBackend::new())).unwrap();
        let mut j = 0u64;
        b.iter(|| {
            j += 1;
            store.append(black_box(&consign_event(j))).unwrap()
        })
    });

    group.bench_function("replay_1000_jobs", |b| {
        let shared = build_log(1_000);
        let store = EventStore::open(Box::new(shared)).unwrap();
        b.iter(|| black_box(store.replay().unwrap().events.len()))
    });

    group.bench_function("recover_100_jobs", |b| {
        let mem = MemoryBackend::new();
        let mut server = recovery_server(&mem);
        for i in 0..100 {
            let mut ajo = chain_job("FZJ", "T3E", 2, 30);
            ajo.name = format!("job-{i}");
            let resp = server.handle_request(BENCH_DN, Request::Consign { ajo }, 0);
            assert!(matches!(resp, Response::Consigned { .. }));
        }
        drop(server);
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let mut server = recovery_server(&mem);
                let t = std::time::Instant::now();
                black_box(server.recover(0).unwrap());
                total += t.elapsed();
            }
            total
        })
    });

    group.finish();
}

fn main() {
    print_tables();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
