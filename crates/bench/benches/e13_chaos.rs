//! E13 — federation under chaos: the cost of surviving faults.
//!
//! The reliability layer (sequence numbers, acks, capped backoff,
//! quarantine) exists so a faulty network delays the grid instead of
//! corrupting it. This bench quantifies the "delays" half: it drives the
//! same multi-site job through the six-site federation fault-free and
//! under each fault class of the seeded [`FaultPlan`], reporting the
//! grid-time to completion, the retry volume, and the wall-clock cost of
//! simulating each regime (min/p50/p99 from the criterion shim, copied
//! into the JSON report).
//!
//! Outcome *correctness* under the same plans is pinned by the chaos
//! soak suite (`tests/chaos.rs`); this bench only measures overhead.

use criterion::Criterion;
use std::hint::black_box;
use unicore::{Federation, FederationConfig};
use unicore_ajo::{
    AbstractJob, AbstractTask, ActionId, Dependency, ExecuteKind, GraphNode, ResourceRequest,
    TaskKind, UserAttributes, VsiteAddress,
};
use unicore_bench::{BenchReport, BENCH_DN};
use unicore_sim::{SimTime, HOUR, MINUTE, SEC};
use unicore_simnet::FaultPlan;

/// The measured workload: a three-site job (main at FZJ, prep sub-AJO at
/// RUS, post sub-AJO at DWD) with files on both edges — every fault
/// class gets wire traffic to chew on.
fn job() -> AbstractJob {
    fn script(id: u64, name: &str, script: &str) -> (ActionId, GraphNode) {
        (
            ActionId(id),
            GraphNode::Task(AbstractTask {
                name: name.into(),
                resources: ResourceRequest::minimal().with_run_time(3_600),
                kind: TaskKind::Execute(ExecuteKind::Script {
                    script: script.into(),
                }),
            }),
        )
    }
    let attrs = UserAttributes::new(BENCH_DN, "users");
    let mut prep = AbstractJob::new("prep", VsiteAddress::new("RUS", "VPP"), attrs.clone());
    prep.nodes
        .push(script(1, "pre", "sleep 10\nproduce grid.dat 2048\n"));
    let mut post = AbstractJob::new("post", VsiteAddress::new("DWD", "SX4"), attrs.clone());
    post.nodes.push(script(1, "vis", "sleep 5\n"));
    let mut main = AbstractJob::new("3site", VsiteAddress::new("FZJ", "T3E"), attrs);
    main.nodes.push((ActionId(1), GraphNode::SubJob(prep)));
    main.nodes
        .push(script(2, "main", "sleep 60\nproduce fields.dat 4096\n"));
    main.nodes.push((ActionId(3), GraphNode::SubJob(post)));
    main.dependencies.push(Dependency {
        from: ActionId(1),
        to: ActionId(2),
        files: vec!["grid.dat".into()],
    });
    main.dependencies.push(Dependency {
        from: ActionId(2),
        to: ActionId(3),
        files: vec!["fields.dat".into()],
    });
    main
}

/// One measured run: grid-time to the terminal outcome, retries spent,
/// duplicates/reorders absorbed.
fn run(seed: u64, plan: Option<&FaultPlan>) -> (SimTime, u64, (u64, u64)) {
    let mut fed = Federation::german_deployment(FederationConfig {
        seed,
        ..FederationConfig::default()
    });
    fed.register_user(BENCH_DN, "bench");
    fed.attach_stores();
    if let Some(plan) = plan {
        fed.apply_fault_plan(plan);
    }
    let (_, outcome, done_at) = fed
        .submit_and_wait("FZJ", job(), BENCH_DN, 5 * SEC, 2 * HOUR)
        .expect("job must terminate");
    assert!(outcome.status.is_success(), "{outcome:?}");
    (done_at, fed.retries, fed.seq_stats())
}

/// The fault regimes the bench sweeps. Windows are transient (they heal
/// well inside the retry budget) so every run completes successfully.
fn regimes() -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("fault_free", None),
        (
            "drop25",
            Some(FaultPlan::new(0xE13).drop_everywhere(0.25, 0, SimTime::MAX)),
        ),
        (
            "duplicate35",
            Some(FaultPlan::new(0xE13).duplicate_everywhere(0.35, 0, SimTime::MAX)),
        ),
        (
            "reorder35",
            Some(FaultPlan::new(0xE13).reorder_everywhere(0.35, 2 * SEC, 0, SimTime::MAX)),
        ),
        (
            "partition90s",
            Some(FaultPlan::new(0xE13).partition("RUS", 10 * SEC, 100 * SEC)),
        ),
        (
            "crash_restart",
            Some(FaultPlan::new(0xE13).crash_restart("FZJ", 40 * SEC, 2 * MINUTE)),
        ),
    ]
}

fn print_tables() -> BenchReport {
    println!("\n=== E13: federation under chaos ===\n");
    let mut report = BenchReport::new("e13_chaos");
    report.note(
        "workload",
        "three-site job (FZJ main, RUS prep, DWD post) on the six-site deployment, WAL attached",
    );

    let (base_done, _, _) = run(1, None);
    println!("regime         grid-time   overhead   retries   dup/reorder absorbed");
    for (name, plan) in regimes() {
        let (done_at, retries, (dups, reorders)) = run(1, plan.as_ref());
        let overhead = done_at.saturating_sub(base_done);
        println!(
            "{name:<14} {:>7.1} s  {:>+7.1} s  {retries:>7}   {dups}/{reorders}",
            done_at as f64 / SEC as f64,
            overhead as f64 / SEC as f64,
        );
        report
            .metric(&format!("{name}.grid_time_s"), done_at as f64 / SEC as f64)
            .metric(&format!("{name}.overhead_s"), overhead as f64 / SEC as f64)
            .metric(&format!("{name}.retries"), retries as f64)
            .metric(&format!("{name}.duplicates_absorbed"), dups as f64)
            .metric(&format!("{name}.reorders_absorbed"), reorders as f64);
    }
    println!();
    report
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_chaos");
    group.sample_size(10);
    for (name, plan) in regimes() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run(1, plan.as_ref())));
        });
    }
    group.finish();
}

fn main() {
    let mut report = print_tables();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
    // Wall-clock percentiles of simulating each regime, from the shim's
    // per-sample records.
    for s in criterion::take_recorded() {
        let key = s.name.replace('/', ".");
        report
            .metric(&format!("{key}.min_ms"), s.min * 1e3)
            .metric(&format!("{key}.p50_ms"), s.p50 * 1e3)
            .metric(&format!("{key}.p99_ms"), s.p99 * 1e3);
    }
    match report.write() {
        Ok(path) => println!("machine-readable results: {}", path.display()),
        Err(e) => eprintln!("could not write bench report: {e}"),
    }
}
